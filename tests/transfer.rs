//! Integration tests of the knowledge-transfer workflows (paper Sec. IV-B/C).

use gcn_rl_circuit_designer::circuit::{benchmarks::Benchmark, TechnologyNode};
use gcn_rl_circuit_designer::gcnrl::transfer::{
    load_checkpoint, pretrain_and_transfer, save_checkpoint, transfer_from_checkpoint,
};
use gcn_rl_circuit_designer::gcnrl::{AgentKind, FomConfig, SizingEnv};
use gcn_rl_circuit_designer::rl::DdpgConfig;

fn env(benchmark: Benchmark, node: &TechnologyNode) -> SizingEnv {
    let fom = FomConfig::calibrated(benchmark, node, 8, 0);
    SizingEnv::new(benchmark, node, fom)
}

fn tiny(seed: u64) -> DdpgConfig {
    DdpgConfig {
        episodes: 24,
        warmup: 8,
        batch_size: 8,
        hidden_dim: 24,
        gcn_layers: 3,
        seed,
        ..DdpgConfig::default()
    }
}

#[test]
fn technology_transfer_produces_checkpoints_reusable_from_disk() {
    let n180 = TechnologyNode::tsmc180();
    let n65 = TechnologyNode::n65();
    let (pre, fine, ckpt) = pretrain_and_transfer(
        env(Benchmark::TwoStageTia, &n180),
        env(Benchmark::TwoStageTia, &n65),
        AgentKind::Gcn,
        tiny(0),
        tiny(0),
    );
    assert!(pre.best_fom().is_finite());
    assert!(fine.best_fom().is_finite());

    let path = std::env::temp_dir().join("gcnrl_integration_ckpt.json");
    save_checkpoint(&ckpt, &path).expect("checkpoint written");
    let loaded = load_checkpoint(&path).expect("checkpoint read");
    assert_eq!(loaded, ckpt);
    let _ = std::fs::remove_file(&path);

    // The loaded checkpoint can warm-start a fresh fine-tuning run.
    let reused = transfer_from_checkpoint(
        &loaded,
        env(Benchmark::TwoStageTia, &n65),
        AgentKind::Gcn,
        tiny(1),
    );
    assert_eq!(reused.len(), 24);
}

#[test]
fn topology_transfer_works_in_both_directions() {
    let node = TechnologyNode::tsmc180();
    for (source, target) in [
        (Benchmark::TwoStageTia, Benchmark::ThreeStageTia),
        (Benchmark::ThreeStageTia, Benchmark::TwoStageTia),
    ] {
        let (_, fine, _) = pretrain_and_transfer(
            env(source, &node),
            env(target, &node),
            AgentKind::Gcn,
            tiny(2),
            tiny(2),
        );
        assert!(fine.best_fom().is_finite(), "{source} -> {target}");
        assert!(!fine.is_empty());
    }
}

#[test]
fn same_seed_transfer_is_reproducible() {
    let n180 = TechnologyNode::tsmc180();
    let n45 = TechnologyNode::n45();
    let run = || {
        pretrain_and_transfer(
            env(Benchmark::TwoStageTia, &n180),
            env(Benchmark::TwoStageTia, &n45),
            AgentKind::Gcn,
            tiny(7),
            tiny(7),
        )
        .1
        .best_curve()
    };
    assert_eq!(run(), run());
}
