//! Integration tests of the `gcnrl-exec` evaluation engine through the full
//! stack: `SizingEnv::evaluate_batch` determinism across thread counts,
//! bit-identical cache hits, LRU capacity limits, and cross-run disk
//! persistence.

use gcn_rl_circuit_designer::circuit::{benchmarks::Benchmark, TechnologyNode};
use gcn_rl_circuit_designer::exec::{BatchEvaluator, EngineConfig};
use gcn_rl_circuit_designer::gcnrl::{FomConfig, SizingEnv, StateEncoding, StepOutcome};

fn env_with_threads(threads: usize) -> SizingEnv {
    let node = TechnologyNode::tsmc180();
    let fom = FomConfig::calibrated(Benchmark::TwoStageTia, &node, 6, 0);
    SizingEnv::with_engine_config(
        Benchmark::TwoStageTia,
        &node,
        fom,
        StateEncoding::ScalarIndex,
        EngineConfig::serial().with_threads(threads),
    )
}

fn unit_population(env: &SizingEnv, n: usize) -> Vec<Vec<f64>> {
    let d = env.num_unit_parameters();
    (0..n)
        .map(|i| {
            (0..d)
                .map(|j| ((i * 17 + j * 3) % 89) as f64 / 88.0)
                .collect()
        })
        .collect()
}

#[test]
fn evaluate_batch_is_deterministic_across_thread_counts() {
    let reference_env = env_with_threads(1);
    let units = unit_population(&reference_env, 24);
    let reference: Vec<StepOutcome> = units
        .iter()
        .map(|u| reference_env.evaluate_unit(u))
        .collect();

    for threads in [1usize, 2, 4, 8] {
        let env = env_with_threads(threads);
        let batched = env.evaluate_units(&units);
        assert_eq!(
            batched, reference,
            "order/values must match serial, threads={threads}"
        );
        let batch = env.engine().last_batch();
        assert_eq!(batch.size, 24);
        assert!(batch.threads <= threads.max(1));
    }
}

#[test]
fn cache_hits_return_bit_identical_outcomes_through_the_env() {
    let env = env_with_threads(2);
    let units = unit_population(&env, 8);
    let first = env.evaluate_units(&units);
    let stats_after_first = env.exec_stats();
    let second = env.evaluate_units(&units);
    let stats_after_second = env.exec_stats();

    assert_eq!(first, second, "cached reports must be bit-identical");
    assert_eq!(stats_after_second.simulated, stats_after_first.simulated);
    assert_eq!(
        stats_after_second.cache_hits,
        stats_after_first.cache_hits + units.len() as u64
    );
    assert!(stats_after_second.hit_rate() > 0.0);
}

#[test]
fn lru_capacity_is_respected_through_the_engine() {
    let node = TechnologyNode::tsmc180();
    let engine = BatchEvaluator::for_benchmark(
        Benchmark::TwoStageTia,
        &node,
        EngineConfig::serial().with_cache_capacity(4),
    );
    let space = Benchmark::TwoStageTia.circuit().design_space(&node);
    let candidates: Vec<_> = (0..10)
        .map(|i| {
            let unit: Vec<f64> = (0..space.num_parameters())
                .map(|j| ((i * 7 + j) % 23) as f64 / 22.0)
                .collect();
            space.from_unit(&unit)
        })
        .collect();
    let _ = engine.evaluate_batch(&candidates);
    let stats = engine.stats();
    assert_eq!(stats.cache_len, 4, "cache must not exceed its capacity");
    assert_eq!(stats.evictions, 6);
}

#[test]
fn persisted_cache_eliminates_simulations_across_engine_instances() {
    let node = TechnologyNode::tsmc180();
    let path = std::env::temp_dir().join("gcnrl_exec_integration_cache.json");
    let _ = std::fs::remove_file(&path);
    let space = Benchmark::Ldo.circuit().design_space(&node);
    let candidates = vec![space.nominal()];

    let first_run = {
        let engine = BatchEvaluator::for_benchmark(
            Benchmark::Ldo,
            &node,
            EngineConfig::serial().with_persist_path(&path),
        );
        let reports = engine.evaluate_batch(&candidates);
        assert_eq!(engine.stats().simulated, 1);
        reports
        // drop writes the snapshot
    };
    assert!(path.exists(), "engine drop must persist the cache snapshot");

    let engine = BatchEvaluator::for_benchmark(
        Benchmark::Ldo,
        &node,
        EngineConfig::serial().with_persist_path(&path),
    );
    let second_run = engine.evaluate_batch(&candidates);
    assert_eq!(
        second_run, first_run,
        "restored reports must be bit-identical"
    );
    let stats = engine.stats();
    assert_eq!(
        stats.simulated, 0,
        "all candidates must come from the snapshot"
    );
    assert_eq!(stats.cache_hits, 1);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn duplicate_candidates_in_one_batch_simulate_once() {
    let env = env_with_threads(4);
    let mut units = unit_population(&env, 3);
    units.extend(unit_population(&env, 3)); // same three again
    let outcomes = env.evaluate_units(&units);
    assert_eq!(outcomes[0], outcomes[3]);
    assert_eq!(outcomes[1], outcomes[4]);
    assert_eq!(outcomes[2], outcomes[5]);
    let batch = env.engine().last_batch();
    assert_eq!(batch.simulated, 3);
    assert_eq!(batch.cache_hits, 3);
}
