//! Cross-crate integration tests: the full pipeline from netlist to optimised
//! sizing, for every benchmark circuit and both agent variants.

use gcn_rl_circuit_designer::baselines::{human_expert, random_search};
use gcn_rl_circuit_designer::circuit::{benchmarks::Benchmark, TechnologyNode};
use gcn_rl_circuit_designer::gcnrl::{AgentKind, FomConfig, GcnRlDesigner, SizingEnv};
use gcn_rl_circuit_designer::rl::DdpgConfig;

fn small_env(benchmark: Benchmark, node: &TechnologyNode) -> SizingEnv {
    let fom = FomConfig::calibrated(benchmark, node, 10, 0);
    SizingEnv::new(benchmark, node, fom)
}

fn tiny_ddpg(seed: u64) -> DdpgConfig {
    DdpgConfig {
        episodes: 40,
        warmup: 15,
        batch_size: 8,
        hidden_dim: 24,
        gcn_layers: 3,
        seed,
        ..DdpgConfig::default()
    }
}

#[test]
fn gcn_rl_runs_on_every_benchmark() {
    let node = TechnologyNode::tsmc180();
    for benchmark in Benchmark::ALL {
        let env = small_env(benchmark, &node);
        let mut designer = GcnRlDesigner::new(env, tiny_ddpg(0));
        let history = designer.run();
        assert_eq!(history.len(), 40, "{benchmark}: wrong number of episodes");
        assert!(
            history.best_fom().is_finite(),
            "{benchmark}: non-finite FoM"
        );
        let params = history.best_params.expect("a best design exists");
        assert!(
            designer.env().design_space().validate(&params),
            "{benchmark}: best design violates the design space"
        );
    }
}

#[test]
fn optimised_designs_beat_the_first_warmup_sample() {
    // The search must at least improve over its own first random sample —
    // the weakest meaningful notion of "optimisation is happening".
    let node = TechnologyNode::tsmc180();
    let env = small_env(Benchmark::TwoStageTia, &node);
    let mut designer = GcnRlDesigner::new(env, tiny_ddpg(1));
    let history = designer.run();
    assert!(history.best_fom() >= history.records[0].fom);
    assert!(history.best_curve().windows(2).all(|w| w[1] >= w[0]));
}

#[test]
fn rl_with_more_budget_is_at_least_as_good_on_average() {
    let node = TechnologyNode::tsmc180();
    let short = {
        let env = small_env(Benchmark::Ldo, &node);
        GcnRlDesigner::new(env, tiny_ddpg(2).with_budget(15, 8))
            .run()
            .best_fom()
    };
    let long = {
        let env = small_env(Benchmark::Ldo, &node);
        GcnRlDesigner::new(env, tiny_ddpg(2).with_budget(60, 20))
            .run()
            .best_fom()
    };
    assert!(
        long >= short,
        "longer budget should not hurt: {short} vs {long}"
    );
}

#[test]
fn ng_rl_and_gcn_rl_explore_differently() {
    let node = TechnologyNode::tsmc180();
    let gcn = GcnRlDesigner::with_kind(
        small_env(Benchmark::TwoStageTia, &node),
        tiny_ddpg(3),
        AgentKind::Gcn,
    )
    .run();
    let ng = GcnRlDesigner::with_kind(
        small_env(Benchmark::TwoStageTia, &node),
        tiny_ddpg(3),
        AgentKind::NonGcn,
    )
    .run();
    // Same seeds -> identical warm-up, but the policies must diverge afterwards.
    let gcn_curve = gcn.best_curve();
    let ng_curve = ng.best_curve();
    assert_eq!(gcn_curve[..10], ng_curve[..10]);
    assert_ne!(
        gcn.records.iter().map(|r| r.fom).collect::<Vec<_>>(),
        ng.records.iter().map(|r| r.fom).collect::<Vec<_>>()
    );
}

#[test]
fn baselines_and_expert_share_the_same_environment_contract() {
    let node = TechnologyNode::tsmc180();
    let env = small_env(Benchmark::ThreeStageTia, &node);
    let expert = human_expert(&env);
    let random = random_search(&env, 20, 0);
    assert_eq!(expert.len(), 1);
    assert_eq!(random.len(), 20);
    assert!(expert.best_fom().is_finite());
    assert!(random.best_fom().is_finite());
}
