//! Integration tests of the network evaluation server through the full
//! stack: N concurrent remote clients (each a `RemoteBackend` session of one
//! shared `EvalServer`) run calibration + optimisation bit-identically to
//! solo local runs, their overlapping traffic shows up as cross-client cache
//! hits in the merged per-service statistics, and the wire protocol's edge
//! cases (torn frames, oversized frames, version mismatch, mid-batch
//! disconnect) fail the way the protocol promises.

use gcn_rl_circuit_designer::baselines::random_search;
use gcn_rl_circuit_designer::circuit::{benchmarks::Benchmark, TechnologyNode};
use gcn_rl_circuit_designer::exec::{EngineConfig, EvalBackend, EvalService, ServiceConfig};
use gcn_rl_circuit_designer::gcnrl::{
    AgentKind, FomConfig, GcnRlDesigner, RunHistory, SizingEnv, StateEncoding,
};
use gcn_rl_circuit_designer::rl::DdpgConfig;
use gcn_rl_circuit_designer::serve::{
    protocol, EvalServer, ReconnectConfig, RegistryConfig, RemoteBackend, RemoteConfig,
    ServerConfig,
};

const BENCHMARK: Benchmark = Benchmark::TwoStageTia;
const CALIBRATION: usize = 8;
const BUDGET: usize = 10;

fn open_server() -> EvalServer {
    EvalServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            registry: RegistryConfig {
                engine: EngineConfig::serial(),
                ..RegistryConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback server")
}

/// Builds a calibrated environment whose calibration sweep *and*
/// optimisation traffic both ride the given backend.
fn env_over(backend: Box<dyn EvalBackend>) -> SizingEnv {
    let node = TechnologyNode::tsmc180();
    let fom =
        FomConfig::calibrated_with_backend(BENCHMARK, &node, CALIBRATION, 7, backend.as_ref());
    SizingEnv::with_backend(BENCHMARK, &node, fom, StateEncoding::ScalarIndex, backend)
}

fn remote_backend(server_addr: std::net::SocketAddr, name: &str) -> RemoteBackend {
    RemoteBackend::connect_with(
        server_addr,
        BENCHMARK,
        &TechnologyNode::tsmc180(),
        RemoteConfig {
            session: Some(name.to_owned()),
            ..RemoteConfig::default()
        },
    )
    .expect("connect remote backend")
}

/// A local reference run: a fresh single-engine service session (the
/// process-local path the remote one must reproduce bit-for-bit).
fn local_session() -> gcn_rl_circuit_designer::exec::SessionHandle {
    EvalService::for_benchmark(
        BENCHMARK,
        &TechnologyNode::tsmc180(),
        EngineConfig::serial(),
        ServiceConfig::default(),
    )
    .session()
}

#[test]
fn concurrent_remote_clients_match_solo_local_runs_and_share_the_cache() {
    const CLIENTS: usize = 3;

    // Reference: each seed on its own private local service.
    let solo: Vec<RunHistory> = (0..CLIENTS)
        .map(|seed| {
            let env = env_over(Box::new(local_session()));
            random_search(&env, BUDGET, seed as u64)
        })
        .collect();

    // The same seeds as concurrent remote sessions of one shared server.
    let server = open_server();
    let addr = server.local_addr();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|seed| {
            std::thread::spawn(move || {
                let env = env_over(Box::new(remote_backend(addr, &format!("client-{seed}"))));
                random_search(&env, BUDGET, seed as u64)
            })
        })
        .collect();
    let remote: Vec<RunHistory> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .collect();

    for (seed, (remote_run, solo_run)) in remote.iter().zip(&solo).enumerate() {
        assert_eq!(
            remote_run, solo_run,
            "seed {seed}: the wire must not change the run"
        );
    }

    // All clients calibrated with the same sweep on one shared registry
    // service, so every client after the first was served those candidates
    // from the shared cache (or deduplicated in flight) — visible in the
    // merged per-service statistics.
    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.connections_total as usize, CLIENTS);
    assert_eq!(stats.connections_active, 0);
    assert_eq!(stats.services.len(), 1, "one (benchmark, node) service");
    let engine = &stats.services[0].engine;
    assert!(
        engine.cache_hits >= ((CLIENTS - 1) * CALIBRATION) as u64,
        "cross-client calibration reuse missing from the merged stats: {engine:?}"
    );
    assert_eq!(engine.requests, engine.simulated + engine.cache_hits);

    // Every connection closed, so its per-session accounting folded into
    // the service-level aggregate (the live map must not leak entries for
    // retired sessions), fully drained.
    let service = &stats.services[0];
    assert!(
        service.sessions.is_empty(),
        "retired sessions must leave the live map: {:?}",
        service.sessions
    );
    let closed = &service.closed;
    assert_eq!(closed.sessions as usize, CLIENTS);
    assert_eq!(
        closed.submitted, closed.resolved,
        "requests left pending: {closed:?}"
    );
    assert!(
        closed.candidates >= (CLIENTS * (CALIBRATION + BUDGET)) as u64,
        "candidates unaccounted: {closed:?}"
    );
}

#[test]
fn remote_designer_trajectories_match_their_solo_local_trainings() {
    let config = DdpgConfig {
        episodes: 12,
        warmup: 4,
        batch_size: 8,
        hidden_dim: 16,
        gcn_layers: 2,
        ..DdpgConfig::default()
    }
    .with_rollout_k(3);

    fn designer_run(backend: Box<dyn EvalBackend>, config: DdpgConfig, seed: u64) -> RunHistory {
        GcnRlDesigner::with_kind(env_over(backend), config.with_seed(seed), AgentKind::Gcn).run()
    }

    let solo: Vec<RunHistory> = (0..2)
        .map(|seed| designer_run(Box::new(local_session()), config, seed))
        .collect();

    let server = open_server();
    let addr = server.local_addr();
    let remote: Vec<RunHistory> = (0..2u64)
        .map(|seed| {
            std::thread::spawn(move || {
                designer_run(
                    Box::new(remote_backend(addr, &format!("designer-{seed}"))),
                    config,
                    seed,
                )
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|w| w.join().expect("designer thread"))
        .collect();

    assert_eq!(remote[0], solo[0], "designer trajectory diverged over TCP");
    assert_eq!(remote[1], solo[1]);
    // Both concurrent designers hit one shared engine; the calibration
    // overlap is visible as cross-client cache traffic.
    server.shutdown();
    let stats = server.stats();
    assert!(
        stats.services[0].engine.cache_hits >= CALIBRATION as u64,
        "{:?}",
        stats.services[0].engine
    );
}

#[test]
fn protocol_rejects_version_mismatch_and_survives_mid_batch_disconnects() {
    use protocol::{write_frame, ClientMsg, FrameReader, Hello, ServerMsg};
    use std::io::Write;
    use std::net::TcpStream;

    let server = open_server();
    let node = TechnologyNode::tsmc180();

    // Version mismatch: rejected with an Error frame during the handshake.
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    write_frame(
        &mut stream,
        &ClientMsg::Hello(Hello {
            version: protocol::PROTOCOL_VERSION + 1,
            benchmark: BENCHMARK,
            node: node.clone(),
            session: None,
            weight: None,
        }),
    )
    .expect("send hello");
    let mut reader = FrameReader::new();
    match reader
        .read_msg::<ServerMsg>(&mut stream, protocol::DEFAULT_MAX_FRAME_BYTES)
        .expect("handshake reply")
    {
        ServerMsg::Error { message, .. } => assert!(message.contains("version"), "{message}"),
        other => panic!("expected version rejection, got {other:?}"),
    }
    drop(stream);

    // Mid-batch disconnect: a client vanishes after a partial frame; the
    // server keeps serving new clients on the same service.
    let mut torn = TcpStream::connect(server.local_addr()).expect("connect");
    write_frame(
        &mut torn,
        &ClientMsg::Hello(Hello {
            version: protocol::PROTOCOL_VERSION,
            benchmark: BENCHMARK,
            node: node.clone(),
            session: Some("torn".to_owned()),
            weight: None,
        }),
    )
    .expect("send hello");
    let mut reader = FrameReader::new();
    assert!(matches!(
        reader
            .read_msg::<ServerMsg>(&mut torn, protocol::DEFAULT_MAX_FRAME_BYTES)
            .expect("welcome"),
        ServerMsg::Welcome(_)
    ));
    torn.write_all(&64u32.to_be_bytes()).expect("prefix only");
    drop(torn);

    let healthy = remote_backend(server.local_addr(), "healthy");
    let space = BENCHMARK.circuit().design_space(&node);
    let reports = EvalBackend::evaluate_batch(&healthy, &[space.nominal()]);
    assert_eq!(reports.len(), 1);
    drop(healthy);
    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.connections_rejected, 1);
    assert_eq!(stats.connections_active, 0);
}

#[test]
fn pipelined_and_multiplexed_clients_match_solo_local_runs() {
    let node = TechnologyNode::tsmc180();
    let tia_space = BENCHMARK.circuit().design_space(&node);
    let ldo_space = Benchmark::Ldo.circuit().design_space(&node);
    let batches: Vec<Vec<_>> = (0..6)
        .map(|i| {
            (0..3)
                .map(|j| {
                    let unit: Vec<f64> = (0..tia_space.num_parameters())
                        .map(|k| ((i * 31 + j * 7 + k) % 97) as f64 / 96.0)
                        .collect();
                    tia_space.from_unit(&unit)
                })
                .collect()
        })
        .collect();
    let ldo_batch: Vec<_> = (0..4)
        .map(|i| {
            let unit: Vec<f64> = (0..ldo_space.num_parameters())
                .map(|k| ((i * 13 + k * 5) % 89) as f64 / 88.0)
                .collect();
            ldo_space.from_unit(&unit)
        })
        .collect();

    // Local references: one private session per benchmark.
    let local_tia: Vec<_> = batches
        .iter()
        .map(|b| local_session().evaluate_batch(b))
        .collect();
    let local_ldo = EvalService::for_benchmark(
        Benchmark::Ldo,
        &node,
        EngineConfig::serial(),
        ServiceConfig::default(),
    )
    .session()
    .evaluate_batch(&ldo_batch);

    // Remote: every TIA batch rides the wire concurrently (the full
    // pipeline window in flight at once), the LDO batch goes through a
    // multiplexed channel on the same socket — and not a bit may change.
    let server = open_server();
    let remote = RemoteBackend::connect_with(
        server.local_addr(),
        BENCHMARK,
        &node,
        RemoteConfig {
            session: Some("pipelined".to_owned()),
            pipeline: batches.len(),
            ..RemoteConfig::default()
        },
    )
    .expect("connect");
    let ldo = remote
        .open_channel(Benchmark::Ldo, &node, Some("side-ldo".to_owned()), 1)
        .expect("open channel");
    let in_flight: Vec<_> = batches
        .iter()
        .map(|b| remote.submit_batch(b).expect("submit"))
        .collect();
    let ldo_pending = ldo.submit_batch(&ldo_batch).expect("submit ldo");
    for (reply, reference) in in_flight.into_iter().zip(&local_tia) {
        assert_eq!(
            &reply.wait().expect("pipelined batch"),
            reference,
            "pipelining must not change a single bit"
        );
    }
    assert_eq!(
        ldo_pending.wait().expect("multiplexed batch"),
        local_ldo,
        "channel multiplexing must not change a single bit"
    );
    ldo.goodbye().expect("close channel");
    remote.goodbye().expect("clean close");
    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.connections_total, 1, "one socket carried everything");
    assert_eq!(stats.services.len(), 2, "two benchmarks, two services");
}

#[test]
fn clients_reconnect_with_backoff_across_a_server_restart() {
    let node = TechnologyNode::tsmc180();
    let space = BENCHMARK.circuit().design_space(&node);
    let batch: Vec<_> = (0..3)
        .map(|i| {
            let unit: Vec<f64> = (0..space.num_parameters())
                .map(|k| ((i * 41 + k * 11) % 83) as f64 / 82.0)
                .collect();
            space.from_unit(&unit)
        })
        .collect();
    let reference = local_session().evaluate_batch(&batch);

    let server = open_server();
    let addr = server.local_addr();
    let remote = RemoteBackend::connect_with(
        addr,
        BENCHMARK,
        &node,
        RemoteConfig {
            session: Some("survivor".to_owned()),
            reconnect: ReconnectConfig {
                max_retries: 10,
                base_delay: std::time::Duration::from_millis(20),
                max_delay: std::time::Duration::from_millis(200),
            },
            ..RemoteConfig::default()
        },
    )
    .expect("connect");
    assert_eq!(remote.try_evaluate_batch(&batch).expect("first"), reference);
    assert_eq!(remote.reconnects(), 0);

    // Kill the server and restart a fresh one on the same address: the
    // client re-handshakes behind the scenes and the next batch still
    // matches the local reference bit-for-bit.
    server.shutdown();
    let server = EvalServer::bind(
        addr,
        ServerConfig {
            registry: RegistryConfig {
                engine: EngineConfig::serial(),
                ..RegistryConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("rebind after restart");
    assert_eq!(
        remote.try_evaluate_batch(&batch).expect("after restart"),
        reference,
        "the restart must be invisible in the results"
    );
    assert!(
        remote.reconnects() >= 1,
        "the backend should have re-handshaked"
    );
    remote.goodbye().expect("clean close");
    server.shutdown();
    assert_eq!(server.stats().connections_total, 1);
}

#[test]
fn oversized_and_torn_frames_error_at_the_protocol_layer() {
    use protocol::{write_frame, ClientMsg, FrameError, FrameReader};

    // Oversized: the length prefix is rejected against the configured cap
    // before any payload allocation happens.
    let mut wire = Vec::new();
    wire.extend_from_slice(&(1u32 << 30).to_be_bytes());
    let mut reader = FrameReader::new();
    let mut cursor = std::io::Cursor::new(wire);
    assert!(matches!(
        reader.read_msg::<ClientMsg>(&mut cursor, 4096),
        Err(FrameError::Oversized { len, max: 4096 }) if len == 1 << 30
    ));

    // Torn: EOF in the middle of a frame is distinguished from a clean
    // close at a frame boundary.
    let mut full = Vec::new();
    write_frame(&mut full, &ClientMsg::Stats { id: 1, channel: 0 }).expect("write frame");
    let mut reader = FrameReader::new();
    let mut cursor = std::io::Cursor::new(full[..full.len() - 2].to_vec());
    assert!(matches!(
        reader.read_msg::<ClientMsg>(&mut cursor, 4096),
        Err(FrameError::Torn { .. })
    ));
    let mut reader = FrameReader::new();
    let mut empty = std::io::Cursor::new(Vec::new());
    assert!(matches!(
        reader.read_msg::<ClientMsg>(&mut empty, 4096),
        Err(FrameError::Closed)
    ));
}
