//! Property-based integration tests: arbitrary actions always round-trip into
//! legal, simulatable designs with finite FoM.

use gcn_rl_circuit_designer::circuit::{benchmarks::Benchmark, TechnologyNode};
use gcn_rl_circuit_designer::gcnrl::{FomConfig, SizingEnv};
use gcn_rl_circuit_designer::linalg::Matrix;
use proptest::prelude::*;

fn env_for(bench_idx: usize, node_idx: usize) -> SizingEnv {
    let benchmark = Benchmark::ALL[bench_idx % 4];
    let node = TechnologyNode::all()[node_idx % 5].clone();
    let fom = FomConfig::calibrated(benchmark, &node, 4, 0);
    SizingEnv::new(benchmark, &node, fom)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any action matrix in [-1, 1] produces a legal design and a finite FoM,
    /// for every benchmark and technology node.
    #[test]
    fn arbitrary_actions_produce_finite_fom(
        bench_idx in 0usize..4,
        node_idx in 0usize..5,
        values in prop::collection::vec(-1.0f64..1.0, 18 * 3),
    ) {
        let env = env_for(bench_idx, node_idx);
        let n = env.num_components();
        let actions = Matrix::from_fn(n, 3, |r, c| values[(r * 3 + c) % values.len()]);
        let outcome = env.evaluate_actions(&actions);
        prop_assert!(env.design_space().validate(&outcome.params));
        prop_assert!(outcome.fom.is_finite());
    }

    /// The FoM of the same design is deterministic.
    #[test]
    fn fom_is_deterministic(values in prop::collection::vec(0.0f64..1.0, 64)) {
        let env = env_for(0, 1);
        let unit: Vec<f64> = (0..env.num_unit_parameters()).map(|i| values[i % values.len()]).collect();
        let a = env.evaluate_unit(&unit);
        let b = env.evaluate_unit(&unit);
        prop_assert_eq!(a.fom, b.fom);
    }
}
