//! Integration tests of the `gcnrl-exec` evaluation service through the
//! full stack: N concurrent optimisation sessions share one engine + cache,
//! produce results bit-identical to each session running alone, and their
//! overlapping traffic (here: the identical FoM calibration sweeps) shows up
//! as cross-session cache hits in the merged engine statistics.

use gcn_rl_circuit_designer::baselines::random_search;
use gcn_rl_circuit_designer::circuit::{benchmarks::Benchmark, TechnologyNode};
use gcn_rl_circuit_designer::exec::{EngineConfig, EvalService, ServiceConfig, SessionHandle};
use gcn_rl_circuit_designer::gcnrl::{
    AgentKind, FomConfig, GcnRlDesigner, RunHistory, SizingEnv, StateEncoding,
};
use gcn_rl_circuit_designer::rl::DdpgConfig;

const BENCHMARK: Benchmark = Benchmark::TwoStageTia;
const CALIBRATION: usize = 8;
const BUDGET: usize = 10;

fn open_service() -> EvalService {
    EvalService::for_benchmark(
        BENCHMARK,
        &TechnologyNode::tsmc180(),
        EngineConfig::serial(),
        ServiceConfig::default(),
    )
}

/// Builds a calibrated environment whose calibration sweep *and*
/// optimisation traffic both ride the session queue.
fn env_over(session: &SessionHandle) -> SizingEnv {
    let node = TechnologyNode::tsmc180();
    let fom = FomConfig::calibrated_with_backend(BENCHMARK, &node, CALIBRATION, 7, session);
    SizingEnv::with_backend(
        BENCHMARK,
        &node,
        fom,
        StateEncoding::ScalarIndex,
        Box::new(session.clone()),
    )
}

fn random_search_run(session: &SessionHandle, seed: u64) -> RunHistory {
    random_search(&env_over(session), BUDGET, seed)
}

#[test]
fn concurrent_sessions_match_solo_runs_and_share_the_cache() {
    const SESSIONS: usize = 3;

    // Reference: each seed on its own fresh service + engine.
    let solo: Vec<RunHistory> = (0..SESSIONS)
        .map(|seed| {
            let service = open_service();
            random_search_run(&service.session(), seed as u64)
        })
        .collect();

    // The same seeds as concurrent sessions of one shared service.
    let service = open_service();
    let workers: Vec<_> = (0..SESSIONS)
        .map(|seed| {
            let session = service.session_named(format!("client-{seed}"));
            std::thread::spawn(move || random_search_run(&session, seed as u64))
        })
        .collect();
    let shared: Vec<RunHistory> = workers
        .into_iter()
        .map(|w| w.join().expect("session thread"))
        .collect();

    for (seed, (shared_run, solo_run)) in shared.iter().zip(&solo).enumerate() {
        assert_eq!(
            shared_run, solo_run,
            "seed {seed}: sharing the engine must not change the run"
        );
    }

    // All three sessions calibrate with the same sweep, so every session
    // after the first is served those candidates from the shared cache (or
    // deduplicated in flight within one dispatcher round).
    let stats = service.engine_stats();
    assert!(
        stats.cache_hits >= ((SESSIONS - 1) * CALIBRATION) as u64,
        "cross-session calibration reuse missing from the merged stats: {stats:?}"
    );
    assert_eq!(stats.requests, stats.simulated + stats.cache_hits);

    // Per-session accounting covers every client.
    let sessions = service.session_stats();
    assert_eq!(sessions.len(), SESSIONS);
    for s in &sessions {
        assert!(s.name.starts_with("client-"));
        assert_eq!(s.submitted, s.resolved, "{}: requests left pending", s.name);
        assert!(
            s.candidates >= (CALIBRATION + BUDGET) as u64,
            "{}: candidates unaccounted",
            s.name
        );
    }
    service.shutdown();
}

#[test]
fn concurrent_designer_sessions_match_their_solo_trainings() {
    let config = DdpgConfig {
        episodes: 12,
        warmup: 4,
        batch_size: 8,
        hidden_dim: 16,
        gcn_layers: 2,
        ..DdpgConfig::default()
    }
    .with_rollout_k(3);

    fn designer_run(session: &SessionHandle, config: DdpgConfig, seed: u64) -> RunHistory {
        GcnRlDesigner::with_kind(env_over(session), config.with_seed(seed), AgentKind::Gcn).run()
    }

    let solo: Vec<RunHistory> = (0..2)
        .map(|seed| {
            let service = open_service();
            designer_run(&service.session(), config, seed)
        })
        .collect();

    let service = open_service();
    let shared: Vec<RunHistory> = (0..2u64)
        .map(|seed| {
            let session = service.session_named(format!("designer-{seed}"));
            std::thread::spawn(move || designer_run(&session, config, seed))
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|w| w.join().expect("designer thread"))
        .collect();

    assert_eq!(shared[0], solo[0]);
    assert_eq!(shared[1], solo[1]);
    // The shared engine saw both sessions; the calibration overlap is
    // visible as cross-session cache traffic.
    let stats = service.engine_stats();
    assert!(stats.cache_hits >= CALIBRATION as u64, "{stats:?}");
}
