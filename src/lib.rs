//! Umbrella crate for the GCN-RL Circuit Designer reproduction.
//!
//! The implementation lives in the workspace crates; this facade re-exports
//! them under one roof so the examples and integration tests read naturally:
//!
//! * [`gcnrl`] — the GCN-RL designer itself (environment, agent, transfer).
//! * [`circuit`] — netlists, technology nodes, design spaces, benchmarks.
//! * [`sim`] — the analog performance simulator.
//! * [`exec`] — the parallel batched evaluation engine with content-addressed
//!   result caching that sits between the optimizers and the simulator.
//! * [`serve`] — the network evaluation server (`EvalServer`) and the remote
//!   `EvalBackend` (`RemoteBackend`) exposing the session service over TCP.
//! * [`baselines`] — random search, ES, BO, MACE and the human-expert row.
//! * [`telemetry`] — process-wide metrics, latency histograms and span
//!   tracing (`GCNRL_TRACE`), recorded into by every layer above.
//! * [`nn`] / [`rl`] / [`linalg`] — the supporting substrates.
//!
//! See the README for a quickstart and DESIGN.md for the architecture map.

pub use gcnrl;
pub use gcnrl_baselines as baselines;
pub use gcnrl_circuit as circuit;
pub use gcnrl_exec as exec;
pub use gcnrl_linalg as linalg;
pub use gcnrl_nn as nn;
pub use gcnrl_rl as rl;
pub use gcnrl_serve as serve;
pub use gcnrl_sim as sim;
pub use gcnrl_telemetry as telemetry;
