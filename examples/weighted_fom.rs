//! Design-focus flexibility (paper Table II, rows GCN-RL-1..5): putting a 10x
//! larger FoM weight on a single metric steers the optimiser towards designs
//! that excel on that metric.
//!
//! Run with: `cargo run --release --example weighted_fom`

use gcn_rl_circuit_designer::circuit::{benchmarks::Benchmark, TechnologyNode};
use gcn_rl_circuit_designer::gcnrl::{FomConfig, GcnRlDesigner, SizingEnv};
use gcn_rl_circuit_designer::rl::DdpgConfig;

fn main() {
    let node = TechnologyNode::tsmc180();
    let benchmark = Benchmark::TwoStageTia;
    let emphases = [
        ("bw_ghz", "GCN-RL-1 (bandwidth)"),
        ("gain_ohm", "GCN-RL-2 (gain)"),
        ("power_mw", "GCN-RL-3 (power)"),
        ("noise_pa_rthz", "GCN-RL-4 (noise)"),
        ("peaking_db", "GCN-RL-5 (peaking)"),
    ];

    for (metric, label) in emphases {
        let fom = FomConfig::calibrated(benchmark, &node, 60, 0).with_weight_emphasis(metric, 10.0);
        let env = SizingEnv::new(benchmark, &node, fom);
        let config = DdpgConfig::default().with_budget(100, 40);
        let history = GcnRlDesigner::new(env, config).run();
        let value = history
            .best_report
            .as_ref()
            .and_then(|r| r.get(metric))
            .unwrap_or(f64::NAN);
        println!(
            "{label:<22} best FoM = {:>7.3}   emphasised metric {metric} = {value:.4}",
            history.best_fom()
        );
    }
}
