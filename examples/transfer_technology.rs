//! Design porting across technology nodes (paper Sec. IV-B / Table IV):
//! train the GCN-RL agent on the Two-TIA at 180 nm, then fine-tune it at
//! 45 nm with a small budget and compare against training from scratch.
//!
//! Run with: `cargo run --release --example transfer_technology`

use gcn_rl_circuit_designer::circuit::{benchmarks::Benchmark, TechnologyNode};
use gcn_rl_circuit_designer::gcnrl::transfer::{pretrain_and_transfer, save_checkpoint};
use gcn_rl_circuit_designer::gcnrl::{AgentKind, FomConfig, GcnRlDesigner, SizingEnv};
use gcn_rl_circuit_designer::rl::DdpgConfig;

fn env(benchmark: Benchmark, node: &TechnologyNode) -> SizingEnv {
    let fom = FomConfig::calibrated(benchmark, node, 80, 0);
    SizingEnv::new(benchmark, node, fom)
}

fn main() {
    let benchmark = Benchmark::TwoStageTia;
    let n180 = TechnologyNode::tsmc180();
    let n45 = TechnologyNode::n45();

    let pretrain = DdpgConfig::default().with_budget(200, 60);
    // The paper fine-tunes with only 300 steps (100 warm-up); we scale down.
    let finetune = DdpgConfig::default().with_budget(90, 30);

    // Baseline: no transfer, same small budget at 45 nm.
    let scratch = GcnRlDesigner::new(env(benchmark, &n45), finetune).run();

    // Transfer: pre-train at 180 nm, inherit the actor-critic weights.
    let (pre, fine, ckpt) = pretrain_and_transfer(
        env(benchmark, &n180),
        env(benchmark, &n45),
        AgentKind::Gcn,
        pretrain,
        finetune,
    );

    let path = std::env::temp_dir().join("gcnrl_two_tia_180nm.json");
    if save_checkpoint(&ckpt, &path).is_ok() {
        println!("saved pre-trained agent checkpoint to {}", path.display());
    }

    println!("pre-training at 180nm:    best FoM = {:.3}", pre.best_fom());
    println!(
        "45nm from scratch:        best FoM = {:.3}",
        scratch.best_fom()
    );
    println!(
        "45nm with transfer:       best FoM = {:.3}",
        fine.best_fom()
    );
}
