//! Compare GCN-RL against the paper's baselines (random search, ES, BO, MACE,
//! the NG-RL ablation and the human-expert reference) on the LDO benchmark —
//! a miniature version of the paper's Table I / Figure 5.
//!
//! Run with: `cargo run --release --example compare_optimizers`

use gcn_rl_circuit_designer::baselines::{
    bayesian_optimization, evolution_strategy, human_expert, mace, random_search,
};
use gcn_rl_circuit_designer::circuit::{benchmarks::Benchmark, TechnologyNode};
use gcn_rl_circuit_designer::gcnrl::{AgentKind, FomConfig, GcnRlDesigner, SizingEnv};
use gcn_rl_circuit_designer::rl::DdpgConfig;

fn main() {
    let node = TechnologyNode::tsmc180();
    let benchmark = Benchmark::Ldo;
    let budget = 120;

    let make_env = || {
        let fom = FomConfig::calibrated(benchmark, &node, 80, 0);
        SizingEnv::new(benchmark, &node, fom)
    };
    let ddpg = DdpgConfig::default().with_budget(budget, 40);

    let results = vec![
        human_expert(&make_env()),
        random_search(&make_env(), budget, 0),
        evolution_strategy(&make_env(), budget, 0),
        bayesian_optimization(&make_env(), budget, 0),
        mace(&make_env(), budget, 0),
        GcnRlDesigner::with_kind(make_env(), ddpg, AgentKind::NonGcn).run(),
        GcnRlDesigner::with_kind(make_env(), ddpg, AgentKind::Gcn).run(),
    ];

    println!(
        "{benchmark} @ {} — best FoM after {budget} simulations",
        node.name
    );
    for history in &results {
        println!("  {:<8} {:>8.3}", history.method, history.best_fom());
    }
}
