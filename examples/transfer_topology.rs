//! Knowledge transfer between topologies (paper Sec. IV-C / Table V): an agent
//! trained on the two-stage TIA warm-starts the sizing of the three-stage TIA.
//! The GCN is what makes this possible — the non-GCN ablation (NG-RL) barely
//! improves over no transfer.
//!
//! Run with: `cargo run --release --example transfer_topology`

use gcn_rl_circuit_designer::circuit::{benchmarks::Benchmark, TechnologyNode};
use gcn_rl_circuit_designer::gcnrl::transfer::pretrain_and_transfer;
use gcn_rl_circuit_designer::gcnrl::{AgentKind, FomConfig, GcnRlDesigner, SizingEnv};
use gcn_rl_circuit_designer::rl::DdpgConfig;

fn env(benchmark: Benchmark, node: &TechnologyNode) -> SizingEnv {
    let fom = FomConfig::calibrated(benchmark, node, 80, 0);
    SizingEnv::new(benchmark, node, fom)
}

fn main() {
    let node = TechnologyNode::tsmc180();
    let source = Benchmark::TwoStageTia;
    let target = Benchmark::ThreeStageTia;

    let pretrain = DdpgConfig::default().with_budget(200, 60);
    let finetune = DdpgConfig::default().with_budget(90, 30);

    let scratch = GcnRlDesigner::new(env(target, &node), finetune).run();
    let (_, gcn_fine, _) = pretrain_and_transfer(
        env(source, &node),
        env(target, &node),
        AgentKind::Gcn,
        pretrain,
        finetune,
    );
    let (_, ng_fine, _) = pretrain_and_transfer(
        env(source, &node),
        env(target, &node),
        AgentKind::NonGcn,
        pretrain,
        finetune,
    );

    println!("{} -> {} @ {}", source, target, node.name);
    println!("  no transfer:     best FoM = {:.3}", scratch.best_fom());
    println!("  NG-RL transfer:  best FoM = {:.3}", ng_fine.best_fom());
    println!("  GCN-RL transfer: best FoM = {:.3}", gcn_fine.best_fom());
}
