//! Quickstart: size the two-stage transimpedance amplifier at 180 nm with the
//! GCN-RL designer and print the best design it finds.
//!
//! Run with: `cargo run --release --example quickstart`

use gcn_rl_circuit_designer::circuit::{benchmarks::Benchmark, TechnologyNode};
use gcn_rl_circuit_designer::gcnrl::{FomConfig, GcnRlDesigner, SizingEnv};
use gcn_rl_circuit_designer::rl::DdpgConfig;

fn main() {
    let node = TechnologyNode::tsmc180();
    let benchmark = Benchmark::TwoStageTia;

    // 1. Calibrate the figure of merit by random sampling (paper Eq. 2).
    let fom = FomConfig::calibrated(benchmark, &node, 100, 0);

    // 2. Build the sizing environment: graph, state vectors, design space.
    let env = SizingEnv::new(benchmark, &node, fom);
    println!(
        "circuit `{}`: {} components, {} parameters",
        env.circuit().name(),
        env.num_components(),
        env.num_unit_parameters()
    );

    // 3. Run the GCN-RL search (a small budget for the example; the paper
    //    uses 10 000 simulations).
    let config = DdpgConfig {
        episodes: 150,
        warmup: 50,
        ..DdpgConfig::default()
    };
    let mut designer = GcnRlDesigner::new(env, config);
    let history = designer.run();

    println!(
        "best FoM after {} simulations: {:.3}",
        history.len(),
        history.best_fom()
    );
    if let Some(report) = &history.best_report {
        println!("best design metrics:");
        for (name, value) in report.iter() {
            println!("  {name:<16} = {value:.4}");
        }
    }
    if let Some(params) = &history.best_params {
        println!("best sizing (per component): {:?}", params.to_flat());
    }
}
