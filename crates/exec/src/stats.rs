//! Execution statistics surfaced by the engine and the bench harness.

use serde::{Deserialize, Serialize};

/// Timing and cache statistics of one [`evaluate_batch`]
/// (`crate::BatchEvaluator::evaluate_batch`) call.
///
/// Serializable so per-batch timing can ride the wire `Stats` frames and
/// trace events directly; wall time is stored as seconds rather than a
/// `Duration` so the JSON shape is a flat number.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BatchReport {
    /// Candidates requested.
    pub size: usize,
    /// Candidates served from the cache (including intra-batch duplicates).
    pub cache_hits: usize,
    /// Candidates that ran in the simulator.
    pub simulated: usize,
    /// Worker threads that participated (1 = serial path).
    pub threads: usize,
    /// Wall time of the whole batch, in seconds.
    pub wall_seconds: f64,
}

impl BatchReport {
    /// Candidates per second over the batch wall time.
    pub fn throughput(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.size as f64 / self.wall_seconds
        } else {
            f64::INFINITY
        }
    }

    /// Accumulates another batch into this one: counts and wall time add,
    /// `threads` keeps the widest batch — so a merged report reads as "this
    /// much work over this much engine time".
    pub fn merge(&mut self, other: &BatchReport) {
        self.size += other.size;
        self.cache_hits += other.cache_hits;
        self.simulated += other.simulated;
        self.threads = self.threads.max(other.threads);
        self.wall_seconds += other.wall_seconds;
    }
}

/// Cumulative statistics of a [`BatchEvaluator`](crate::BatchEvaluator).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ExecStats {
    /// Total evaluation requests (single + batched).
    pub requests: u64,
    /// Requests that ran the simulator.
    pub simulated: u64,
    /// Requests served from the result cache.
    pub cache_hits: u64,
    /// Cache entries dropped under LRU pressure.
    pub evictions: u64,
    /// Batch calls made.
    pub batches: u64,
    /// Entries currently cached.
    pub cache_len: u64,
    /// Total wall-clock seconds spent inside the engine.
    pub wall_seconds: f64,
}

impl ExecStats {
    /// Fraction of requests served from the cache.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.requests as f64
        }
    }

    /// Evaluation requests per engine-wall second.
    pub fn throughput(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.requests as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// One-line human-readable summary for harness output.
    pub fn summary(&self) -> String {
        format!(
            "{} requests ({} simulated, {} cached, {:.1}% hit rate) in {:.3}s ({:.0} req/s, {} batches, {} cached entries)",
            self.requests,
            self.simulated,
            self.cache_hits,
            100.0 * self.hit_rate(),
            self.wall_seconds,
            self.throughput(),
            self.batches,
            self.cache_len,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_and_throughput() {
        let stats = ExecStats {
            requests: 10,
            simulated: 4,
            cache_hits: 6,
            wall_seconds: 2.0,
            ..ExecStats::default()
        };
        assert_eq!(stats.hit_rate(), 0.6);
        assert_eq!(stats.throughput(), 5.0);
        assert!(stats.summary().contains("60.0% hit rate"));
    }

    #[test]
    fn empty_stats_are_finite() {
        let stats = ExecStats::default();
        assert_eq!(stats.hit_rate(), 0.0);
        assert_eq!(stats.throughput(), 0.0);
    }

    #[test]
    fn batch_report_throughput() {
        let report = BatchReport {
            size: 50,
            wall_seconds: 0.5,
            ..BatchReport::default()
        };
        assert!((report.throughput() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn batch_report_merge_accumulates() {
        let mut total = BatchReport {
            size: 10,
            cache_hits: 4,
            simulated: 6,
            threads: 2,
            wall_seconds: 0.25,
        };
        total.merge(&BatchReport {
            size: 5,
            cache_hits: 5,
            simulated: 0,
            threads: 4,
            wall_seconds: 0.75,
        });
        assert_eq!(total.size, 15);
        assert_eq!(total.cache_hits, 9);
        assert_eq!(total.simulated, 6);
        assert_eq!(total.threads, 4);
        assert!((total.wall_seconds - 1.0).abs() < 1e-12);
    }

    #[test]
    fn batch_report_round_trips_through_json() {
        let report = BatchReport {
            size: 32,
            cache_hits: 12,
            simulated: 20,
            threads: 8,
            wall_seconds: 1.5,
        };
        let json = serde_json::to_string(&report).expect("serialize");
        let back: BatchReport = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, report);
    }
}
