//! The evaluation-backend abstraction: how an optimisation run reaches the
//! engine.
//!
//! Callers used to own a [`BatchEvaluator`] directly, which tied every
//! environment to a private engine instance. [`EvalBackend`] decouples the
//! two: an environment only needs *something that evaluates batches and
//! reports statistics*, which is satisfied by
//!
//! * an owned (or shared) [`BatchEvaluator`] — the classic single-client
//!   setup, and
//! * a [`SessionHandle`](crate::SessionHandle) — one client of an
//!   [`EvalService`](crate::EvalService) multiplexing many concurrent
//!   sessions onto one engine + cache.

use crate::engine::BatchEvaluator;
use crate::stats::{BatchReport, ExecStats};
use gcnrl_circuit::{benchmarks::Benchmark, ParamVector, TechnologyNode};
use gcnrl_sim::{MetricSpec, PerformanceReport};
use std::sync::Arc;

/// A route to the evaluation engine: either a privately owned
/// [`BatchEvaluator`] or a session of a shared
/// [`EvalService`](crate::EvalService).
///
/// Implementations are pure with respect to the parameter vectors — for a
/// given candidate the returned report is bit-identical regardless of
/// backend, thread count or cache state — so optimisers can swap backends
/// without changing results.
pub trait EvalBackend: Send + Sync {
    /// The benchmark this backend evaluates.
    fn benchmark(&self) -> Benchmark;

    /// The technology node the devices are evaluated in.
    fn technology(&self) -> &TechnologyNode;

    /// Metric descriptions of the underlying evaluator.
    fn metric_specs(&self) -> &[MetricSpec];

    /// Evaluates a batch of candidates, returning reports in input order.
    fn evaluate_batch(&self, params: &[ParamVector]) -> Vec<PerformanceReport>;

    /// Evaluates a batch of candidates known to cluster around the shared
    /// `base` sizing (a rollout round's unperturbed action): backends with
    /// grouped solver support factor the base once and correct candidates
    /// through rank-k updates. The default ignores the hint and forwards to
    /// [`EvalBackend::evaluate_batch`], which remote/session backends keep
    /// (the wire protocol carries no base). Grouped results match the
    /// per-candidate path to solver accuracy, not bit-exactly.
    fn evaluate_batch_with_base(
        &self,
        base: &ParamVector,
        params: &[ParamVector],
    ) -> Vec<PerformanceReport> {
        let _ = base;
        self.evaluate_batch(params)
    }

    /// Cumulative statistics of the engine serving this backend. For session
    /// backends the statistics cover the whole shared engine, so concurrent
    /// sessions see each other's cache hits here.
    fn stats(&self) -> ExecStats;

    /// Statistics of the engine's most recent batch.
    fn last_batch(&self) -> BatchReport;
}

impl EvalBackend for BatchEvaluator {
    fn benchmark(&self) -> Benchmark {
        BatchEvaluator::benchmark(self)
    }

    fn technology(&self) -> &TechnologyNode {
        BatchEvaluator::technology(self)
    }

    fn metric_specs(&self) -> &[MetricSpec] {
        BatchEvaluator::metric_specs(self)
    }

    fn evaluate_batch(&self, params: &[ParamVector]) -> Vec<PerformanceReport> {
        BatchEvaluator::evaluate_batch(self, params)
    }

    fn evaluate_batch_with_base(
        &self,
        base: &ParamVector,
        params: &[ParamVector],
    ) -> Vec<PerformanceReport> {
        BatchEvaluator::evaluate_batch_with_base(self, base, params)
    }

    fn stats(&self) -> ExecStats {
        BatchEvaluator::stats(self)
    }

    fn last_batch(&self) -> BatchReport {
        BatchEvaluator::last_batch(self)
    }
}

impl EvalBackend for Arc<BatchEvaluator> {
    fn benchmark(&self) -> Benchmark {
        BatchEvaluator::benchmark(self)
    }

    fn technology(&self) -> &TechnologyNode {
        BatchEvaluator::technology(self)
    }

    fn metric_specs(&self) -> &[MetricSpec] {
        BatchEvaluator::metric_specs(self)
    }

    fn evaluate_batch(&self, params: &[ParamVector]) -> Vec<PerformanceReport> {
        BatchEvaluator::evaluate_batch(self, params)
    }

    fn evaluate_batch_with_base(
        &self,
        base: &ParamVector,
        params: &[ParamVector],
    ) -> Vec<PerformanceReport> {
        BatchEvaluator::evaluate_batch_with_base(self, base, params)
    }

    fn stats(&self) -> ExecStats {
        BatchEvaluator::stats(self)
    }

    fn last_batch(&self) -> BatchReport {
        BatchEvaluator::last_batch(self)
    }
}
