//! Disk persistence for the result cache, enabling cross-run reuse: a sweep
//! restarted with the same benchmark/node/candidates skips every simulation
//! it already paid for.
//!
//! The primary format is an **append-only record log** ([`CacheLog`]): a
//! header line followed by one compact JSON record per cached entry.  Fresh
//! simulation results are appended at insert time, so several engines —
//! including engines in different processes of a sharded run — can share one
//! log file and contribute hits concurrently (appends interleave at line
//! granularity; a torn final line is skipped on replay).  The older
//! whole-file JSON snapshot format ([`save_cache`]/[`load_cache`]) remains
//! readable: [`CacheLog::open`] detects a legacy snapshot, replays it, and
//! rewrites the file in log format.
//!
//! Metric values are stored as `f64` bit patterns (alongside a readable
//! float), so restored reports are bit-identical to the originals even for
//! non-finite values, which plain JSON cannot represent.

use crate::cache::ResultCache;
use crate::key::CacheKey;
use gcnrl_sim::PerformanceReport;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::Mutex;

/// On-disk format version; bump when [`CacheKey`] or the report layout
/// changes so stale snapshots are ignored instead of mis-read.
pub const SNAPSHOT_VERSION: u32 = 2;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct SnapshotMetric {
    name: String,
    /// Exact `f64::to_bits` of the value (the authoritative field).
    bits: u64,
    /// Human-readable rendering; ignored on load.
    approx: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct SnapshotEntry {
    /// Hex content digest, stored for human inspection of snapshot files.
    digest: String,
    key: CacheKey,
    feasible: bool,
    metrics: Vec<SnapshotMetric>,
}

impl SnapshotEntry {
    fn from_report(key: &CacheKey, report: &PerformanceReport) -> Self {
        SnapshotEntry {
            digest: format!("{:016x}", key.digest()),
            key: key.clone(),
            feasible: report.feasible,
            metrics: report
                .iter()
                .map(|(name, value)| SnapshotMetric {
                    name: name.to_owned(),
                    bits: value.to_bits(),
                    approx: value,
                })
                .collect(),
        }
    }

    fn to_report(&self) -> PerformanceReport {
        let mut report = if self.feasible {
            PerformanceReport::new()
        } else {
            PerformanceReport::infeasible()
        };
        for metric in &self.metrics {
            report.set(&metric.name, f64::from_bits(metric.bits));
        }
        report
    }
}

#[derive(Debug, Serialize, Deserialize)]
struct Snapshot {
    version: u32,
    entries: Vec<SnapshotEntry>,
}

fn read_snapshot(path: &Path) -> io::Result<Option<Snapshot>> {
    if !path.exists() {
        return Ok(None);
    }
    let json = std::fs::read_to_string(path)?;
    let snapshot: Snapshot =
        serde_json::from_str(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if snapshot.version != SNAPSHOT_VERSION {
        return Ok(None);
    }
    Ok(Some(snapshot))
}

/// Writes every cached entry to `path` as pretty-printed JSON, **merging**
/// with any entries already in the file that the cache does not hold: several
/// engines sharing one snapshot path (e.g. the source and target environments
/// of a transfer run, dropped in either order) each contribute their
/// simulations instead of the last writer discarding the others'. An
/// unreadable existing file is overwritten rather than propagated as an
/// error, since the cache contents are the authoritative data.
///
/// # Errors
///
/// Returns any underlying filesystem error.
pub fn save_cache(cache: &ResultCache, path: &Path) -> io::Result<()> {
    let mut entries: Vec<SnapshotEntry> = cache
        .iter()
        .map(|(key, report)| SnapshotEntry::from_report(key, report))
        .collect();
    if let Ok(Some(existing)) = read_snapshot(path) {
        for entry in existing.entries {
            if !cache.contains(&entry.key) {
                entries.push(entry);
            }
        }
    }
    let snapshot = Snapshot {
        version: SNAPSHOT_VERSION,
        entries,
    };
    let json = serde_json::to_string_pretty(&snapshot)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, json)
}

/// First line of every cache log; a version bump invalidates old logs the
/// same way [`SNAPSHOT_VERSION`] invalidates old snapshots.
pub const LOG_VERSION: u32 = 1;

const LOG_FORMAT: &str = "gcnrl-cache-log";

#[derive(Debug, Serialize, Deserialize)]
struct LogHeader {
    format: String,
    version: u32,
}

/// An open append-only cache log.
///
/// Created by [`CacheLog::open`], which replays the entries already on disk
/// into the cache; afterwards every fresh simulation result is appended as
/// one self-contained line via [`CacheLog::append`].  The file is opened in
/// append mode, so engines in other processes sharing the path contribute
/// their entries live instead of overwriting each other at drop time the way
/// the legacy snapshot format did.
#[derive(Debug)]
pub struct CacheLog {
    file: File,
}

impl CacheLog {
    /// Opens (creating if needed) the log at `path` and replays its entries
    /// into `cache`, returning the log handle and how many entries were
    /// restored.
    ///
    /// Three on-disk states are handled:
    /// * a log file — replayed line by line, unparseable lines (torn
    ///   concurrent appends, truncation) are skipped;
    /// * a legacy JSON snapshot — replayed via the read-compat path and
    ///   rewritten in log format so subsequent appends are valid;
    /// * anything unreadable (corrupt header, stale version) — replaced by a
    ///   fresh empty log, since the cache contents are reproducible.
    ///
    /// Concurrency: opens within one process are serialised by a global lock
    /// (the sharded coordinator constructs many engines on one path at
    /// once), and the rewrite paths never truncate in place — a fresh log is
    /// created with `create_new` (losing the creation race just retries as a
    /// reader) and a conversion/replacement is written to a temp file and
    /// atomically renamed over the path, so a reader or appender in another
    /// process can never observe a half-written file.
    ///
    /// # Errors
    ///
    /// Returns any underlying filesystem error.
    pub fn open(path: &Path, cache: &mut ResultCache) -> io::Result<(Self, usize)> {
        static OPEN_LOCK: Mutex<()> = Mutex::new(());
        let _guard = match OPEN_LOCK.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };

        loop {
            if !path.exists() {
                if let Some(parent) = path.parent() {
                    if !parent.as_os_str().is_empty() {
                        std::fs::create_dir_all(parent)?;
                    }
                }
                // O_CREAT|O_EXCL: exactly one creator writes the header; a
                // process losing the race loops back and reads the winner's
                // file instead of truncating it.
                match OpenOptions::new().create_new(true).append(true).open(path) {
                    Ok(mut file) => {
                        let header = LogHeader {
                            format: LOG_FORMAT.to_owned(),
                            version: LOG_VERSION,
                        };
                        let mut line = serde_json::to_string(&header).expect("header");
                        line.push('\n');
                        file.write_all(line.as_bytes())?;
                        file.sync_all()?;
                        return Ok((CacheLog { file }, 0));
                    }
                    Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
                    Err(e) => return Err(e),
                }
            }

            let content = std::fs::read_to_string(path)?;
            let mut restored = 0usize;
            if let Ok(snapshot) = serde_json::from_str::<Snapshot>(&content) {
                // Legacy whole-file snapshot: replay, then convert to a log.
                if snapshot.version == SNAPSHOT_VERSION {
                    for entry in snapshot.entries {
                        cache.insert(entry.key.clone(), entry.to_report());
                        restored += 1;
                    }
                }
            } else {
                let mut lines = content.lines();
                let header_ok = lines
                    .next()
                    .and_then(|line| serde_json::from_str::<LogHeader>(line).ok())
                    .is_some_and(|h| h.format == LOG_FORMAT && h.version == LOG_VERSION);
                if header_ok {
                    for line in lines {
                        if let Ok(entry) = serde_json::from_str::<SnapshotEntry>(line) {
                            cache.insert(entry.key.clone(), entry.to_report());
                            restored += 1;
                        }
                    }
                    let file = OpenOptions::new().append(true).open(path)?;
                    return Ok((CacheLog { file }, restored));
                }
            }

            // Legacy snapshot or unreadable file: replace it with a log
            // holding the replayed entries, via temp file + atomic rename so
            // concurrent readers never see a partial file.
            let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
            {
                let mut file = File::create(&tmp)?;
                let header = LogHeader {
                    format: LOG_FORMAT.to_owned(),
                    version: LOG_VERSION,
                };
                writeln!(file, "{}", serde_json::to_string(&header).expect("header"))?;
                for (key, report) in cache.iter() {
                    let entry = SnapshotEntry::from_report(key, report);
                    writeln!(file, "{}", serde_json::to_string(&entry).expect("entry"))?;
                }
                file.sync_all()?;
            }
            std::fs::rename(&tmp, path)?;
            let file = OpenOptions::new().append(true).open(path)?;
            return Ok((CacheLog { file }, restored));
        }
    }

    /// Appends one cached entry as a single line (one `write` call, so
    /// concurrent appenders interleave at record granularity on POSIX
    /// append-mode semantics).
    ///
    /// # Errors
    ///
    /// Returns any underlying filesystem error.
    pub fn append(&mut self, key: &CacheKey, report: &PerformanceReport) -> io::Result<()> {
        let entry = SnapshotEntry::from_report(key, report);
        let mut line = serde_json::to_string(&entry).expect("entry serialises");
        line.push('\n');
        self.file.write_all(line.as_bytes())
    }

    /// Forces appended records to disk.
    ///
    /// # Errors
    ///
    /// Returns any underlying filesystem error.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }
}

/// Loads a snapshot previously written by [`save_cache`] into `cache`,
/// returning how many entries were restored. A missing file restores zero
/// entries (fresh runs are not an error); a version mismatch is skipped the
/// same way.
///
/// # Errors
///
/// Returns an error when the file exists but cannot be read or parsed.
pub fn load_cache(cache: &mut ResultCache, path: &Path) -> io::Result<usize> {
    let Some(snapshot) = read_snapshot(path)? else {
        return Ok(0);
    };
    let restored = snapshot.entries.len();
    for entry in snapshot.entries {
        let report = entry.to_report();
        cache.insert(entry.key, report);
    }
    Ok(restored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnrl_circuit::benchmarks::Benchmark;

    fn key_for(tag: u64) -> CacheKey {
        CacheKey {
            benchmark: Benchmark::Ldo,
            node: "45nm".to_owned(),
            param_bits: vec![tag, tag + 10],
        }
    }

    fn sample_cache() -> ResultCache {
        let mut cache = ResultCache::new(16);
        for tag in 0..3u64 {
            let mut report = PerformanceReport::new();
            report.set("gain_db", 20.0 + tag as f64);
            report.set("power_mw", 0.5 / (tag + 1) as f64);
            cache.insert(key_for(tag), report);
        }
        cache
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let cache = sample_cache();
        let path = std::env::temp_dir().join("gcnrl_exec_persist_test.json");
        let _ = std::fs::remove_file(&path);
        save_cache(&cache, &path).expect("save snapshot");

        let mut restored = ResultCache::new(16);
        let n = load_cache(&mut restored, &path).expect("load snapshot");
        assert_eq!(n, 3);
        for (key, report) in cache.iter() {
            assert_eq!(restored.get(key).as_ref(), Some(report));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_finite_metrics_survive_the_snapshot_bit_exactly() {
        let mut cache = ResultCache::new(4);
        let mut report = PerformanceReport::infeasible();
        report.set("peaking_db", f64::INFINITY);
        report.set("gain_db", f64::NEG_INFINITY);
        report.set("noise", f64::NAN);
        cache.insert(key_for(9), report.clone());

        let path = std::env::temp_dir().join("gcnrl_exec_persist_nonfinite.json");
        let _ = std::fs::remove_file(&path);
        save_cache(&cache, &path).expect("save snapshot");
        let mut restored = ResultCache::new(4);
        load_cache(&mut restored, &path).expect("load snapshot");
        let back = restored.get(&key_for(9)).expect("entry restored");
        assert!(!back.feasible);
        assert_eq!(back.get("peaking_db"), Some(f64::INFINITY));
        assert_eq!(back.get("gain_db"), Some(f64::NEG_INFINITY));
        assert_eq!(back.get("noise").unwrap().to_bits(), f64::NAN.to_bits());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn save_merges_with_entries_already_on_disk() {
        let path = std::env::temp_dir().join("gcnrl_exec_persist_merge.json");
        let _ = std::fs::remove_file(&path);

        // First engine persists keys 0..3.
        save_cache(&sample_cache(), &path).expect("first save");

        // A second engine that never saw those keys persists key 7; the
        // snapshot must now contain the union.
        let mut other = ResultCache::new(4);
        let mut report = PerformanceReport::new();
        report.set("psrr_db", 61.5);
        other.insert(key_for(7), report);
        save_cache(&other, &path).expect("merging save");

        let mut restored = ResultCache::new(16);
        let n = load_cache(&mut restored, &path).expect("load merged");
        assert_eq!(n, 4);
        assert!(restored.get(&key_for(7)).is_some());
        assert!(restored.get(&key_for(0)).is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cache_log_round_trips_and_replays_on_open() {
        let path = std::env::temp_dir().join("gcnrl_exec_log_roundtrip.log");
        let _ = std::fs::remove_file(&path);

        let mut first = ResultCache::new(16);
        let (mut log, restored) = CacheLog::open(&path, &mut first).expect("open fresh log");
        assert_eq!(restored, 0);
        for (key, report) in sample_cache().iter() {
            first.insert(key.clone(), report.clone());
            log.append(key, report).expect("append entry");
        }
        log.sync().expect("sync");
        drop(log);

        let mut second = ResultCache::new(16);
        let (_log, restored) = CacheLog::open(&path, &mut second).expect("replay log");
        assert_eq!(restored, 3);
        for (key, report) in sample_cache().iter() {
            assert_eq!(second.get(key).as_ref(), Some(report));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cache_log_reads_legacy_snapshots_and_converts_them() {
        let path = std::env::temp_dir().join("gcnrl_exec_log_legacy.json");
        let _ = std::fs::remove_file(&path);
        save_cache(&sample_cache(), &path).expect("write legacy snapshot");

        let mut cache = ResultCache::new(16);
        let (mut log, restored) = CacheLog::open(&path, &mut cache).expect("open legacy");
        assert_eq!(restored, 3, "legacy snapshot entries are replayed");
        // The file is now a log: appends compose with the converted entries.
        let mut report = PerformanceReport::new();
        report.set("gain_db", 99.0);
        cache.insert(key_for(42), report.clone());
        log.append(&key_for(42), &report).expect("append");
        drop(log);

        let mut reread = ResultCache::new(16);
        let (_log, restored) = CacheLog::open(&path, &mut reread).expect("reopen converted");
        assert_eq!(restored, 4);
        assert_eq!(reread.get(&key_for(42)), Some(report));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_trailing_record_is_skipped_on_replay() {
        let path = std::env::temp_dir().join("gcnrl_exec_log_torn.log");
        let _ = std::fs::remove_file(&path);
        let mut cache = ResultCache::new(16);
        let (mut log, _) = CacheLog::open(&path, &mut cache).expect("open");
        let mut report = PerformanceReport::new();
        report.set("psrr_db", 55.0);
        log.append(&key_for(1), &report).expect("append");
        drop(log);
        // Simulate a crash mid-append: a half-written record at the tail.
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(b"{\"digest\":\"00ff\",\"key\":{\"bench")
            .unwrap();
        drop(f);

        let mut reread = ResultCache::new(16);
        let (_log, restored) = CacheLog::open(&path, &mut reread).expect("replay torn log");
        assert_eq!(
            restored, 1,
            "intact records replay, the torn tail is skipped"
        );
        assert_eq!(reread.get(&key_for(1)), Some(report));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn two_appenders_on_one_log_contribute_the_union() {
        let path = std::env::temp_dir().join("gcnrl_exec_log_shared.log");
        let _ = std::fs::remove_file(&path);
        let mut cache_a = ResultCache::new(16);
        let (mut log_a, _) = CacheLog::open(&path, &mut cache_a).expect("open a");
        let mut cache_b = ResultCache::new(16);
        let (mut log_b, _) = CacheLog::open(&path, &mut cache_b).expect("open b");

        let mut ra = PerformanceReport::new();
        ra.set("gain_db", 1.0);
        let mut rb = PerformanceReport::new();
        rb.set("gain_db", 2.0);
        // Interleaved appends from two live handles (same pattern as two
        // sharded engine processes sharing one GCNRL_CACHE_PATH).
        log_a.append(&key_for(100), &ra).expect("a appends");
        log_b.append(&key_for(200), &rb).expect("b appends");
        drop(log_a);
        drop(log_b);

        let mut merged = ResultCache::new(16);
        let (_log, restored) = CacheLog::open(&path, &mut merged).expect("replay shared");
        assert_eq!(restored, 2);
        assert_eq!(merged.get(&key_for(100)), Some(ra));
        assert_eq!(merged.get(&key_for(200)), Some(rb));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_opens_on_a_fresh_path_lose_no_entries() {
        // Regression: CacheLog::open used to check-then-truncate, so engines
        // opened concurrently on one path (the sharded coordinator's setup)
        // could wipe each other's records. Every opener now either creates
        // the file exclusively or retries as a reader.
        let path = std::env::temp_dir().join("gcnrl_exec_log_concurrent.log");
        let _ = std::fs::remove_file(&path);
        let handles: Vec<_> = (0..8u64)
            .map(|tag| {
                let path = path.clone();
                std::thread::spawn(move || {
                    let mut cache = ResultCache::new(16);
                    let (mut log, _) = CacheLog::open(&path, &mut cache).expect("open");
                    let mut report = PerformanceReport::new();
                    report.set("gain_db", tag as f64);
                    log.append(&key_for(1000 + tag), &report).expect("append");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("opener thread");
        }
        let mut merged = ResultCache::new(32);
        let (_log, restored) = CacheLog::open(&path, &mut merged).expect("replay");
        assert_eq!(restored, 8, "every concurrent opener's entry survives");
        for tag in 0..8u64 {
            assert!(merged.get(&key_for(1000 + tag)).is_some(), "tag {tag}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unreadable_log_is_replaced_by_a_fresh_one() {
        let path = std::env::temp_dir().join("gcnrl_exec_log_corrupt.log");
        std::fs::write(&path, "not a log at all\n???").unwrap();
        let mut cache = ResultCache::new(4);
        let (mut log, restored) = CacheLog::open(&path, &mut cache).expect("open corrupt");
        assert_eq!(restored, 0);
        let mut report = PerformanceReport::new();
        report.set("x", 1.5);
        log.append(&key_for(3), &report)
            .expect("append to fresh log");
        drop(log);
        let mut reread = ResultCache::new(4);
        let (_log, restored) = CacheLog::open(&path, &mut reread).expect("reopen");
        assert_eq!(restored, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_restores_nothing() {
        let mut cache = ResultCache::new(4);
        let n = load_cache(&mut cache, Path::new("/nonexistent/gcnrl/cache.json")).unwrap();
        assert_eq!(n, 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn corrupt_file_is_an_error_on_load_but_overwritten_on_save() {
        let path = std::env::temp_dir().join("gcnrl_exec_corrupt_test.json");
        std::fs::write(&path, "{ not json").unwrap();
        let mut cache = ResultCache::new(4);
        assert!(load_cache(&mut cache, &path).is_err());
        save_cache(&sample_cache(), &path).expect("save over corrupt file");
        let mut restored = ResultCache::new(16);
        assert_eq!(load_cache(&mut restored, &path).unwrap(), 3);
        let _ = std::fs::remove_file(&path);
    }
}
