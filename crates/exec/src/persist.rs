//! Optional JSON disk persistence for the result cache, enabling cross-run
//! reuse: a sweep restarted with the same benchmark/node/candidates skips
//! every simulation it already paid for.
//!
//! Metric values are stored as `f64` bit patterns (alongside a readable
//! float), so restored reports are bit-identical to the originals even for
//! non-finite values, which plain JSON cannot represent.

use crate::cache::ResultCache;
use crate::key::CacheKey;
use gcnrl_sim::PerformanceReport;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// On-disk format version; bump when [`CacheKey`] or the report layout
/// changes so stale snapshots are ignored instead of mis-read.
pub const SNAPSHOT_VERSION: u32 = 2;

#[derive(Debug, Clone, Serialize, Deserialize)]
struct SnapshotMetric {
    name: String,
    /// Exact `f64::to_bits` of the value (the authoritative field).
    bits: u64,
    /// Human-readable rendering; ignored on load.
    approx: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct SnapshotEntry {
    /// Hex content digest, stored for human inspection of snapshot files.
    digest: String,
    key: CacheKey,
    feasible: bool,
    metrics: Vec<SnapshotMetric>,
}

impl SnapshotEntry {
    fn from_report(key: &CacheKey, report: &PerformanceReport) -> Self {
        SnapshotEntry {
            digest: format!("{:016x}", key.digest()),
            key: key.clone(),
            feasible: report.feasible,
            metrics: report
                .iter()
                .map(|(name, value)| SnapshotMetric {
                    name: name.to_owned(),
                    bits: value.to_bits(),
                    approx: value,
                })
                .collect(),
        }
    }

    fn to_report(&self) -> PerformanceReport {
        let mut report = if self.feasible {
            PerformanceReport::new()
        } else {
            PerformanceReport::infeasible()
        };
        for metric in &self.metrics {
            report.set(&metric.name, f64::from_bits(metric.bits));
        }
        report
    }
}

#[derive(Debug, Serialize, Deserialize)]
struct Snapshot {
    version: u32,
    entries: Vec<SnapshotEntry>,
}

fn read_snapshot(path: &Path) -> io::Result<Option<Snapshot>> {
    if !path.exists() {
        return Ok(None);
    }
    let json = std::fs::read_to_string(path)?;
    let snapshot: Snapshot =
        serde_json::from_str(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if snapshot.version != SNAPSHOT_VERSION {
        return Ok(None);
    }
    Ok(Some(snapshot))
}

/// Writes every cached entry to `path` as pretty-printed JSON, **merging**
/// with any entries already in the file that the cache does not hold: several
/// engines sharing one snapshot path (e.g. the source and target environments
/// of a transfer run, dropped in either order) each contribute their
/// simulations instead of the last writer discarding the others'. An
/// unreadable existing file is overwritten rather than propagated as an
/// error, since the cache contents are the authoritative data.
///
/// # Errors
///
/// Returns any underlying filesystem error.
pub fn save_cache(cache: &ResultCache, path: &Path) -> io::Result<()> {
    let mut entries: Vec<SnapshotEntry> = cache
        .iter()
        .map(|(key, report)| SnapshotEntry::from_report(key, report))
        .collect();
    if let Ok(Some(existing)) = read_snapshot(path) {
        for entry in existing.entries {
            if !cache.contains(&entry.key) {
                entries.push(entry);
            }
        }
    }
    let snapshot = Snapshot {
        version: SNAPSHOT_VERSION,
        entries,
    };
    let json = serde_json::to_string_pretty(&snapshot)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, json)
}

/// Loads a snapshot previously written by [`save_cache`] into `cache`,
/// returning how many entries were restored. A missing file restores zero
/// entries (fresh runs are not an error); a version mismatch is skipped the
/// same way.
///
/// # Errors
///
/// Returns an error when the file exists but cannot be read or parsed.
pub fn load_cache(cache: &mut ResultCache, path: &Path) -> io::Result<usize> {
    let Some(snapshot) = read_snapshot(path)? else {
        return Ok(0);
    };
    let restored = snapshot.entries.len();
    for entry in snapshot.entries {
        let report = entry.to_report();
        cache.insert(entry.key, report);
    }
    Ok(restored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnrl_circuit::benchmarks::Benchmark;

    fn key_for(tag: u64) -> CacheKey {
        CacheKey {
            benchmark: Benchmark::Ldo,
            node: "45nm".to_owned(),
            param_bits: vec![tag, tag + 10],
        }
    }

    fn sample_cache() -> ResultCache {
        let mut cache = ResultCache::new(16);
        for tag in 0..3u64 {
            let mut report = PerformanceReport::new();
            report.set("gain_db", 20.0 + tag as f64);
            report.set("power_mw", 0.5 / (tag + 1) as f64);
            cache.insert(key_for(tag), report);
        }
        cache
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let cache = sample_cache();
        let path = std::env::temp_dir().join("gcnrl_exec_persist_test.json");
        let _ = std::fs::remove_file(&path);
        save_cache(&cache, &path).expect("save snapshot");

        let mut restored = ResultCache::new(16);
        let n = load_cache(&mut restored, &path).expect("load snapshot");
        assert_eq!(n, 3);
        for (key, report) in cache.iter() {
            assert_eq!(restored.get(key).as_ref(), Some(report));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_finite_metrics_survive_the_snapshot_bit_exactly() {
        let mut cache = ResultCache::new(4);
        let mut report = PerformanceReport::infeasible();
        report.set("peaking_db", f64::INFINITY);
        report.set("gain_db", f64::NEG_INFINITY);
        report.set("noise", f64::NAN);
        cache.insert(key_for(9), report.clone());

        let path = std::env::temp_dir().join("gcnrl_exec_persist_nonfinite.json");
        let _ = std::fs::remove_file(&path);
        save_cache(&cache, &path).expect("save snapshot");
        let mut restored = ResultCache::new(4);
        load_cache(&mut restored, &path).expect("load snapshot");
        let back = restored.get(&key_for(9)).expect("entry restored");
        assert!(!back.feasible);
        assert_eq!(back.get("peaking_db"), Some(f64::INFINITY));
        assert_eq!(back.get("gain_db"), Some(f64::NEG_INFINITY));
        assert_eq!(back.get("noise").unwrap().to_bits(), f64::NAN.to_bits());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn save_merges_with_entries_already_on_disk() {
        let path = std::env::temp_dir().join("gcnrl_exec_persist_merge.json");
        let _ = std::fs::remove_file(&path);

        // First engine persists keys 0..3.
        save_cache(&sample_cache(), &path).expect("first save");

        // A second engine that never saw those keys persists key 7; the
        // snapshot must now contain the union.
        let mut other = ResultCache::new(4);
        let mut report = PerformanceReport::new();
        report.set("psrr_db", 61.5);
        other.insert(key_for(7), report);
        save_cache(&other, &path).expect("merging save");

        let mut restored = ResultCache::new(16);
        let n = load_cache(&mut restored, &path).expect("load merged");
        assert_eq!(n, 4);
        assert!(restored.get(&key_for(7)).is_some());
        assert!(restored.get(&key_for(0)).is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_restores_nothing() {
        let mut cache = ResultCache::new(4);
        let n = load_cache(&mut cache, Path::new("/nonexistent/gcnrl/cache.json")).unwrap();
        assert_eq!(n, 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn corrupt_file_is_an_error_on_load_but_overwritten_on_save() {
        let path = std::env::temp_dir().join("gcnrl_exec_corrupt_test.json");
        std::fs::write(&path, "{ not json").unwrap();
        let mut cache = ResultCache::new(4);
        assert!(load_cache(&mut cache, &path).is_err());
        save_cache(&sample_cache(), &path).expect("save over corrupt file");
        let mut restored = ResultCache::new(16);
        assert_eq!(load_cache(&mut restored, &path).unwrap(), 3);
        let _ = std::fs::remove_file(&path);
    }
}
