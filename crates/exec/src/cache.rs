//! Content-addressed result cache with LRU eviction.

use crate::key::CacheKey;
use gcnrl_sim::PerformanceReport;
use std::collections::{BTreeMap, HashMap};

#[derive(Debug, Clone)]
struct Entry {
    report: PerformanceReport,
    stamp: u64,
}

/// An LRU map from [`CacheKey`] to the bit-identical [`PerformanceReport`]
/// the simulator produced for it, with hit/miss/eviction counters.
///
/// Reports are pure functions of the key (the `Evaluator` contract), so a
/// cached report is indistinguishable from a fresh simulation.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    entries: HashMap<CacheKey, Entry>,
    /// Recency index: stamp → key, oldest first. Stamps are unique because
    /// `clock` is bumped on every touch.
    recency: BTreeMap<u64, CacheKey>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResultCache {
    /// Creates an empty cache holding at most `capacity` reports.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        ResultCache {
            capacity,
            entries: HashMap::new(),
            recency: BTreeMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up `key`, counting a hit or miss and refreshing recency on hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<PerformanceReport> {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.get_mut(key) {
            Some(entry) => {
                self.hits += 1;
                self.recency.remove(&entry.stamp);
                entry.stamp = clock;
                self.recency.insert(clock, key.clone());
                Some(entry.report.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Returns whether `key` is cached without touching any counter or the
    /// recency order (used by read-only introspection).
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Returns the cached report for `key` without touching the hit/miss
    /// counters or the recency order. Cache-peering probes use this so a
    /// neighbour shard reading through us does not distort the hit-rate
    /// signal the budget rebalancer keys on.
    pub fn peek(&self, key: &CacheKey) -> Option<PerformanceReport> {
        self.entries.get(key).map(|entry| entry.report.clone())
    }

    /// Inserts (or refreshes) `key → report`, evicting the least recently
    /// used entry when the cache is full.
    pub fn insert(&mut self, key: CacheKey, report: PerformanceReport) {
        self.clock += 1;
        if let Some(old) = self.entries.remove(&key) {
            self.recency.remove(&old.stamp);
        } else if self.entries.len() >= self.capacity {
            // pop_first is stable Rust ≥ 1.66; oldest stamp = LRU entry.
            if let Some((_, lru_key)) = self.recency.pop_first() {
                self.entries.remove(&lru_key);
                self.evictions += 1;
            }
        }
        self.recency.insert(self.clock, key.clone());
        self.entries.insert(
            key,
            Entry {
                report,
                stamp: self.clock,
            },
        );
    }

    /// Changes the capacity in place. Shrinking below the current occupancy
    /// evicts coldest-first (oldest recency stamp) until the cache fits,
    /// counting each drop as an eviction; growing never touches entries.
    /// A `new_capacity` of zero is clamped to one — a live service always
    /// keeps at least its most recent report.
    pub fn resize(&mut self, new_capacity: usize) {
        self.capacity = new_capacity.max(1);
        while self.entries.len() > self.capacity {
            if let Some((_, lru_key)) = self.recency.pop_first() {
                self.entries.remove(&lru_key);
                self.evictions += 1;
            } else {
                break;
            }
        }
    }

    /// Number of cached reports.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of cached reports.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that required a simulation.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries dropped by LRU pressure.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Fraction of lookups served from the cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// All `(key, report)` pairs in unspecified order (for persistence).
    pub fn iter(&self) -> impl Iterator<Item = (&CacheKey, &PerformanceReport)> {
        self.entries.iter().map(|(k, e)| (k, &e.report))
    }

    /// Drops all entries, keeping counters.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.recency.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnrl_circuit::benchmarks::Benchmark;

    fn key(tag: u64) -> CacheKey {
        CacheKey {
            benchmark: Benchmark::TwoStageTia,
            node: "180nm".to_owned(),
            param_bits: vec![tag],
        }
    }

    fn report(value: f64) -> PerformanceReport {
        let mut r = PerformanceReport::new();
        r.set("metric", value);
        r
    }

    #[test]
    fn hit_returns_the_identical_report_and_counts() {
        let mut cache = ResultCache::new(4);
        assert_eq!(cache.get(&key(1)), None);
        cache.insert(key(1), report(2.5));
        assert_eq!(cache.get(&key(1)), Some(report(2.5)));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.hit_rate(), 0.5);
    }

    #[test]
    fn eviction_respects_capacity_and_lru_order() {
        let mut cache = ResultCache::new(2);
        cache.insert(key(1), report(1.0));
        cache.insert(key(2), report(2.0));
        assert!(cache.get(&key(1)).is_some()); // key 1 is now most recent
        cache.insert(key(3), report(3.0)); // evicts key 2 (LRU)
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        assert!(cache.contains(&key(1)));
        assert!(!cache.contains(&key(2)));
        assert!(cache.contains(&key(3)));
    }

    #[test]
    fn reinsert_refreshes_instead_of_growing() {
        let mut cache = ResultCache::new(2);
        cache.insert(key(1), report(1.0));
        cache.insert(key(1), report(9.0));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&key(1)), Some(report(9.0)));
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn clear_keeps_counters() {
        let mut cache = ResultCache::new(2);
        cache.insert(key(1), report(1.0));
        let _ = cache.get(&key(1));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ResultCache::new(0);
    }

    #[test]
    fn peek_reads_without_touching_counters_or_recency() {
        let mut cache = ResultCache::new(2);
        cache.insert(key(1), report(1.0));
        cache.insert(key(2), report(2.0));
        assert_eq!(cache.peek(&key(1)), Some(report(1.0)));
        assert_eq!(cache.peek(&key(9)), None);
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        // The peek did not refresh key 1: it is still the LRU entry.
        cache.insert(key(3), report(3.0));
        assert!(!cache.contains(&key(1)));
        assert!(cache.contains(&key(2)));
    }

    #[test]
    fn resize_shrink_evicts_coldest_first() {
        let mut cache = ResultCache::new(4);
        for tag in 1..=4 {
            cache.insert(key(tag), report(tag as f64));
        }
        // Touch 1 and 2 so 3 is the coldest, then 4.
        let _ = cache.get(&key(1));
        let _ = cache.get(&key(2));
        cache.resize(2);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.capacity(), 2);
        assert_eq!(cache.evictions(), 2);
        assert!(cache.contains(&key(1)) && cache.contains(&key(2)));
        assert!(!cache.contains(&key(3)) && !cache.contains(&key(4)));
        // Counters survived the shrink.
        assert_eq!((cache.hits(), cache.misses()), (2, 0));
    }

    #[test]
    fn resize_grow_preserves_entries_and_lifts_the_cap() {
        let mut cache = ResultCache::new(2);
        cache.insert(key(1), report(1.0));
        cache.insert(key(2), report(2.0));
        cache.resize(4);
        assert_eq!(cache.capacity(), 4);
        assert_eq!(cache.len(), 2);
        cache.insert(key(3), report(3.0));
        cache.insert(key(4), report(4.0));
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.evictions(), 0);
        for tag in 1..=4 {
            assert!(cache.contains(&key(tag)));
        }
    }

    #[test]
    fn resize_to_zero_clamps_to_one() {
        let mut cache = ResultCache::new(3);
        for tag in 1..=3 {
            cache.insert(key(tag), report(tag as f64));
        }
        cache.resize(0);
        assert_eq!(cache.capacity(), 1);
        assert_eq!(cache.len(), 1);
        assert!(cache.contains(&key(3)), "the newest entry survives");
        assert_eq!(cache.evictions(), 2);
    }
}
