//! A fixed-size worker pool over `std::thread` + `std::sync::mpsc` (the
//! environment has no rayon/crossbeam, and needs none: jobs here are
//! milliseconds-long simulator calls, so a mutex-guarded shared receiver is
//! nowhere near contention).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A pool of long-lived worker threads executing boxed jobs.
///
/// Jobs are expected to handle their own panics and report failure through
/// whatever channel they carry (the engine wraps chunk evaluation in
/// `catch_unwind` and forwards the payload to the submitting thread, which
/// rethrows it). As a second line of defense the worker loop also catches
/// panics, so a misbehaving job can never kill the thread for subsequent
/// batches.
#[derive(Debug)]
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|index| {
                let receiver: Arc<Mutex<Receiver<Job>>> = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("gcnrl-exec-{index}"))
                    .spawn(move || loop {
                        let job = {
                            let guard = receiver.lock().expect("pool receiver lock");
                            guard.recv()
                        };
                        match job {
                            Ok(job) => {
                                // Swallow the panic here; the job itself is
                                // responsible for reporting failure (e.g. by
                                // dropping its result sender).
                                let _ = catch_unwind(AssertUnwindSafe(job));
                            }
                            Err(_) => return, // pool dropped
                        }
                    })
                    .expect("spawn gcnrl-exec worker")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues one job.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool sender alive until drop")
            .send(Box::new(job))
            .expect("pool workers alive until drop");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel makes every worker's recv() fail and return.
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_jobs_run_across_threads() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = channel();
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            });
        }
        drop(tx);
        for _ in 0..64 {
            rx.recv().expect("job completion");
        }
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn a_panicking_job_does_not_kill_the_pool() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = channel();
        pool.execute(|| panic!("job panic"));
        let tx2 = tx.clone();
        pool.execute(move || tx2.send(7).unwrap());
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 7);
    }

    #[test]
    fn drop_joins_cleanly_with_pending_work_done() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(3);
            for _ in 0..30 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        // Drop drains the queue before joining (workers loop until recv fails).
        assert_eq!(counter.load(Ordering::SeqCst), 30);
    }
}
