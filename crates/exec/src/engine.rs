//! The batch evaluation engine: cache in front, worker pool behind.

use crate::cache::ResultCache;
use crate::key::{CacheKey, DEFAULT_QUANTIZE_DIGITS};
use crate::persist;
use crate::pool::WorkerPool;
use crate::stats::{BatchReport, ExecStats};
use gcnrl_circuit::{benchmarks::Benchmark, ParamVector, TechnologyNode};
use gcnrl_sim::evaluators::{evaluator_for, Evaluator};
use gcnrl_sim::{MetricSpec, PerformanceReport};
use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Configuration of a [`BatchEvaluator`].
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Worker threads for batched evaluation. `1` disables the pool and runs
    /// every batch serially on the calling thread.
    pub threads: usize,
    /// Maximum number of cached reports (LRU beyond this).
    pub cache_capacity: usize,
    /// Significant decimal digits kept when quantizing parameters into cache
    /// keys (see [`crate::key::quantize`]).
    pub quantize_digits: i32,
    /// When set, the cache is backed by an append-only record log at this
    /// path: existing entries (log records, or a legacy JSON snapshot which
    /// is converted in place) are replayed at construction, and every fresh
    /// simulation result is appended as it is inserted — so concurrent
    /// engines sharing the path contribute hits to each other's next open.
    pub persist_path: Option<PathBuf>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            cache_capacity: 65_536,
            quantize_digits: DEFAULT_QUANTIZE_DIGITS,
            persist_path: None,
        }
    }
}

impl EngineConfig {
    /// A serial engine: no worker pool, cache still active.
    pub fn serial() -> Self {
        EngineConfig {
            threads: 1,
            ..Self::default()
        }
    }

    /// Reads the configuration from environment variables, falling back to
    /// the defaults: `GCNRL_THREADS` (worker threads), `GCNRL_CACHE_CAP`
    /// (cache capacity), `GCNRL_CACHE_PATH` (persistence file).
    ///
    /// # Panics
    ///
    /// Panics when a numeric variable is set but unparseable (see
    /// [`crate::env_usize`]) — a typo must not silently run with defaults.
    pub fn from_env() -> Self {
        let mut config = Self::default();
        if let Some(threads) = crate::env_usize("GCNRL_THREADS") {
            config.threads = threads.max(1);
        }
        if let Some(capacity) = crate::env_usize("GCNRL_CACHE_CAP") {
            config.cache_capacity = capacity.max(1);
        }
        if let Ok(path) = std::env::var("GCNRL_CACHE_PATH") {
            if !path.is_empty() {
                config.persist_path = Some(PathBuf::from(path));
            }
        }
        config
    }

    /// Returns a copy with a different worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Returns a copy with a different cache capacity.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity.max(1);
        self
    }

    /// Returns a copy persisting the cache to `path`.
    pub fn with_persist_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.persist_path = Some(path.into());
        self
    }
}

/// Mutable engine state behind one lock: the cache plus cumulative counters.
#[derive(Debug)]
struct EngineState {
    cache: ResultCache,
    /// Append-only persistence log; fresh simulation results are appended
    /// under this lock, right after their cache insert.
    log: Option<persist::CacheLog>,
    /// Cache hits served to duplicate candidates inside a single batch
    /// (the cache itself never sees those lookups).
    dup_hits: u64,
    batches: u64,
    wall: Duration,
    last_batch: BatchReport,
}

impl EngineState {
    /// Inserts a fresh simulation result and mirrors it to the log (a failed
    /// append downgrades to in-memory-only caching with a warning rather
    /// than failing the evaluation).
    fn insert_fresh(&mut self, key: CacheKey, report: PerformanceReport) {
        if let Some(log) = &mut self.log {
            if let Err(error) = log.append(&key, &report) {
                eprintln!("gcnrl-exec: cache log append failed, disabling persistence: {error}");
                self.log = None;
            }
        }
        self.cache.insert(key, report);
    }
}

/// The evaluation engine the optimizers talk to instead of a raw
/// [`Evaluator`]: it fans batches of candidate sizings across a worker pool
/// and serves repeated candidates from a content-addressed result cache.
///
/// All methods take `&self`; the engine is internally synchronized and
/// `Send + Sync`, so one engine can serve several optimizer threads.
pub struct BatchEvaluator {
    evaluator: Arc<dyn Evaluator>,
    config: EngineConfig,
    node_name: String,
    state: Mutex<EngineState>,
    pool: OnceLock<WorkerPool>,
}

impl std::fmt::Debug for BatchEvaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchEvaluator")
            .field("benchmark", &self.evaluator.benchmark())
            .field("node", &self.node_name)
            .field("config", &self.config)
            .finish()
    }
}

impl BatchEvaluator {
    /// Wraps an existing evaluator. When the config carries a persistence
    /// path, the append-only log at that path pre-populates the cache
    /// (legacy JSON snapshots are converted in place; unreadable files start
    /// empty) and stays open for live appends.
    pub fn new(evaluator: Box<dyn Evaluator>, config: EngineConfig) -> Self {
        let node_name = evaluator.technology().name.to_string();
        let mut cache = ResultCache::new(config.cache_capacity);
        let mut log = None;
        if let Some(path) = &config.persist_path {
            match persist::CacheLog::open(path, &mut cache) {
                Ok((opened, _restored)) => log = Some(opened),
                Err(error) => eprintln!(
                    "gcnrl-exec: cannot open cache log {}, running without persistence: {error}",
                    path.display()
                ),
            }
        }
        BatchEvaluator {
            evaluator: Arc::from(evaluator),
            config,
            node_name,
            state: Mutex::new(EngineState {
                cache,
                log,
                dup_hits: 0,
                batches: 0,
                wall: Duration::ZERO,
                last_batch: BatchReport::default(),
            }),
            pool: OnceLock::new(),
        }
    }

    /// Builds the engine for `benchmark` at `node` via
    /// [`evaluator_for`].
    pub fn for_benchmark(
        benchmark: Benchmark,
        node: &TechnologyNode,
        config: EngineConfig,
    ) -> Self {
        Self::new(evaluator_for(benchmark, node), config)
    }

    /// The benchmark this engine evaluates.
    pub fn benchmark(&self) -> Benchmark {
        self.evaluator.benchmark()
    }

    /// The technology node the devices are evaluated in.
    pub fn technology(&self) -> &TechnologyNode {
        self.evaluator.technology()
    }

    /// Metric descriptions of the underlying evaluator.
    pub fn metric_specs(&self) -> &[MetricSpec] {
        self.evaluator.metric_specs()
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The underlying simulator-facing evaluator.
    pub fn evaluator(&self) -> &dyn Evaluator {
        &*self.evaluator
    }

    fn key_for(&self, params: &ParamVector) -> CacheKey {
        CacheKey::new(
            self.benchmark(),
            &self.node_name,
            params,
            self.config.quantize_digits,
        )
    }

    /// The content-addressed cache key this engine files `params` under —
    /// the identity shard peers exchange in `CacheQuery` frames.
    pub fn cache_key(&self, params: &ParamVector) -> CacheKey {
        self.key_for(params)
    }

    /// Reads the cached report for `key` without touching hit/miss counters
    /// or LRU order (peer probes must not distort the signals admission and
    /// rebalancing key on).
    pub fn peek_cached(&self, key: &CacheKey) -> Option<PerformanceReport> {
        self.lock_state().cache.peek(key)
    }

    /// Inserts an externally produced `key → report` (a peer shard's cached
    /// result) as if it had been simulated here: it lands in the cache and
    /// the persistence log, so later lookups hit locally.
    pub fn seed_cache(&self, key: CacheKey, report: PerformanceReport) {
        self.lock_state().insert_fresh(key, report);
    }

    /// Live capacity of the result cache (diverges from
    /// `config().cache_capacity` after a [`resize_cache`](Self::resize_cache)).
    pub fn cache_capacity(&self) -> usize {
        self.lock_state().cache.capacity()
    }

    /// Resizes the result cache in place; shrinking evicts coldest-first
    /// (see [`ResultCache::resize`]). The registry's budget rebalancer calls
    /// this periodically.
    pub fn resize_cache(&self, capacity: usize) {
        self.lock_state().cache.resize(capacity);
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, EngineState> {
        // The engine never panics while holding the lock, but a poisoned
        // mutex (caller panic during a test assertion) should not cascade.
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Evaluates one candidate through the cache — a thin wrapper over
    /// [`BatchEvaluator::evaluate_batch`] with a batch of one, so the
    /// singular and batched entry points cannot drift apart (a single
    /// simulation never touches the worker pool).
    pub fn evaluate(&self, params: &ParamVector) -> PerformanceReport {
        self.evaluate_batch(std::slice::from_ref(params))
            .pop()
            .expect("batch of one yields one report")
    }

    /// Evaluates a batch of candidates, returning reports in input order.
    ///
    /// Cached candidates (including duplicates within the batch) are served
    /// without simulating; the remaining unique candidates are fanned across
    /// the worker pool when `config.threads > 1`, otherwise evaluated
    /// serially. Results are bit-identical to the serial path for any thread
    /// count because evaluators are pure functions of the parameter vector.
    ///
    /// # Panics
    ///
    /// Panics if the underlying evaluator panics on one of the candidates
    /// (the panic is observed on the calling thread, as in the serial path).
    pub fn evaluate_batch(&self, params: &[ParamVector]) -> Vec<PerformanceReport> {
        self.evaluate_batch_inner(None, params)
    }

    /// Like [`BatchEvaluator::evaluate_batch`], but tells the engine that the
    /// candidates cluster around the shared `base` sizing (the rollout
    /// shape): pending simulations are routed through
    /// [`Evaluator::evaluate_group`], so evaluators with batched solver
    /// support factor the base circuit once and correct each candidate
    /// through a rank-k update instead of refactoring per candidate.
    ///
    /// Results match [`BatchEvaluator::evaluate_batch`] to solver accuracy
    /// (~1e-9 on raw voltages) but are not bit-identical; cache, dedup and
    /// ordering semantics are unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the underlying evaluator panics on one of the candidates.
    pub fn evaluate_batch_with_base(
        &self,
        base: &ParamVector,
        params: &[ParamVector],
    ) -> Vec<PerformanceReport> {
        self.evaluate_batch_inner(Some(base), params)
    }

    fn evaluate_batch_inner(
        &self,
        base: Option<&ParamVector>,
        params: &[ParamVector],
    ) -> Vec<PerformanceReport> {
        let start = Instant::now();
        let mut results: Vec<Option<PerformanceReport>> = vec![None; params.len()];
        // Unique cache-missing candidates, each with every batch index that
        // requested it.
        let mut pending: Vec<(CacheKey, ParamVector, Vec<usize>)> = Vec::new();
        let mut pending_index: HashMap<CacheKey, usize> = HashMap::new();
        let mut batch_hits = 0usize;

        {
            let _lookup = gcnrl_telemetry::span!("exec.cache_lookup.ns");
            let mut state = self.lock_state();
            for (i, candidate) in params.iter().enumerate() {
                let key = self.key_for(candidate);
                if let Some(&slot) = pending_index.get(&key) {
                    pending[slot].2.push(i);
                    state.dup_hits += 1;
                    batch_hits += 1;
                } else if let Some(report) = state.cache.get(&key) {
                    results[i] = Some(report);
                    batch_hits += 1;
                } else {
                    pending_index.insert(key.clone(), pending.len());
                    pending.push((key, candidate.clone(), vec![i]));
                }
            }
        }

        let simulated = pending.len();
        let threads_used = self.config.threads.min(simulated.max(1));
        let fresh: Vec<(CacheKey, Vec<usize>, PerformanceReport)> = {
            let _simulate = gcnrl_telemetry::span!("exec.simulate.ns");
            if simulated > 1 && self.config.threads > 1 {
                self.evaluate_pending_parallel(base, pending)
            } else if let Some(base) = base.filter(|_| simulated > 1) {
                let mut slots = Vec::with_capacity(pending.len());
                let mut candidates = Vec::with_capacity(pending.len());
                for (key, candidate, indices) in pending {
                    slots.push((key, indices));
                    candidates.push(candidate);
                }
                let reports = self.evaluator.evaluate_group(base, &candidates);
                slots
                    .into_iter()
                    .zip(reports)
                    .map(|((key, indices), report)| (key, indices, report))
                    .collect()
            } else {
                pending
                    .into_iter()
                    .map(|(key, candidate, indices)| {
                        let report = self.evaluator.evaluate(&candidate);
                        (key, indices, report)
                    })
                    .collect()
            }
        };

        let wall = start.elapsed();
        {
            // The batch histogram is recorded by hand (rather than a span
            // guard) because the trace fields are only known here, at the end
            // of the measured region.
            static BATCH_HIST: OnceLock<Arc<gcnrl_telemetry::Histogram>> = OnceLock::new();
            BATCH_HIST
                .get_or_init(|| gcnrl_telemetry::global().histogram("exec.batch.ns"))
                .record_duration(wall);
            gcnrl_telemetry::trace_event("exec.batch.ns", start, wall, || {
                vec![
                    ("size", params.len().to_string()),
                    ("cache_hits", batch_hits.to_string()),
                    ("simulated", simulated.to_string()),
                    ("threads", threads_used.to_string()),
                ]
            });
        }
        {
            let mut state = self.lock_state();
            for (key, indices, report) in fresh {
                state.insert_fresh(key, report.clone());
                for i in indices {
                    results[i] = Some(report.clone());
                }
            }
            state.batches += 1;
            state.wall += wall;
            state.last_batch = BatchReport {
                size: params.len(),
                cache_hits: batch_hits,
                simulated,
                threads: threads_used,
                wall_seconds: wall.as_secs_f64(),
            };
        }

        results
            .into_iter()
            .map(|r| r.expect("every batch slot is filled by cache or simulation"))
            .collect()
    }

    fn evaluate_pending_parallel(
        &self,
        base: Option<&ParamVector>,
        pending: Vec<(CacheKey, ParamVector, Vec<usize>)>,
    ) -> Vec<(CacheKey, Vec<usize>, PerformanceReport)> {
        let pool = self
            .pool
            .get_or_init(|| WorkerPool::new(self.config.threads));
        let total = pending.len();

        // Dispatch contiguous chunks rather than single candidates: one
        // channel message and one boxed job per chunk keeps the dispatch
        // overhead negligible relative to the simulations. Two chunks per
        // worker gives the queue some slack for uneven chunk durations.
        let chunk_count = total.min(self.config.threads * 2).max(1);
        let chunk_size = total.div_ceil(chunk_count);

        let mut meta: Vec<Option<(CacheKey, Vec<usize>)>> = Vec::with_capacity(total);
        let mut work: Vec<(usize, ParamVector)> = Vec::with_capacity(total);
        for (slot, (key, candidate, indices)) in pending.into_iter().enumerate() {
            meta.push(Some((key, indices)));
            work.push((slot, candidate));
        }

        // Chunks send back either their results or the caught panic payload,
        // which is rethrown on this (the submitting) thread so a failing
        // candidate surfaces exactly like it would on the serial path.
        type ChunkOutcome =
            Result<Vec<(usize, PerformanceReport)>, Box<dyn std::any::Any + Send + 'static>>;
        let (tx, rx) = channel::<ChunkOutcome>();
        let mut dispatched = 0usize;
        while !work.is_empty() {
            let chunk: Vec<(usize, ParamVector)> =
                work.drain(..chunk_size.min(work.len())).collect();
            let evaluator = Arc::clone(&self.evaluator);
            let base = base.cloned();
            let tx = tx.clone();
            dispatched += 1;
            pool.execute(move || {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    match base {
                        // Grouped rollout: the whole chunk shares the base
                        // factorisation inside the evaluator.
                        Some(base) if chunk.len() > 1 => {
                            let slots: Vec<usize> = chunk.iter().map(|(s, _)| *s).collect();
                            let candidates: Vec<ParamVector> =
                                chunk.into_iter().map(|(_, c)| c).collect();
                            slots
                                .into_iter()
                                .zip(evaluator.evaluate_group(&base, &candidates))
                                .collect::<Vec<(usize, PerformanceReport)>>()
                        }
                        _ => chunk
                            .into_iter()
                            .map(|(slot, candidate)| (slot, evaluator.evaluate(&candidate)))
                            .collect::<Vec<(usize, PerformanceReport)>>(),
                    }
                }));
                // A closed receiver means the caller already panicked.
                let _ = tx.send(outcome);
            });
        }
        drop(tx);

        let mut out: Vec<Option<(CacheKey, Vec<usize>, PerformanceReport)>> =
            (0..total).map(|_| None).collect();
        for _ in 0..dispatched {
            let results = match rx.recv() {
                Ok(Ok(results)) => results,
                Ok(Err(payload)) => std::panic::resume_unwind(payload),
                Err(_) => unreachable!("chunk jobs always send an outcome"),
            };
            for (slot, report) in results {
                let (key, indices) = meta[slot].take().expect("each slot reports once");
                out[slot] = Some((key, indices, report));
            }
        }
        out.into_iter()
            .map(|entry| entry.expect("all jobs completed"))
            .collect()
    }

    /// Cumulative engine statistics.
    pub fn stats(&self) -> ExecStats {
        let state = self.lock_state();
        let cache = &state.cache;
        ExecStats {
            requests: cache.hits() + cache.misses() + state.dup_hits,
            simulated: cache.misses(),
            cache_hits: cache.hits() + state.dup_hits,
            evictions: cache.evictions(),
            batches: state.batches,
            cache_len: cache.len() as u64,
            wall_seconds: state.wall.as_secs_f64(),
        }
    }

    /// Statistics of the most recent [`evaluate_batch`](Self::evaluate_batch)
    /// call.
    pub fn last_batch(&self) -> BatchReport {
        self.lock_state().last_batch
    }

    /// Forces every appended log record to disk (no-op without persistence).
    /// Entries are appended live as simulations complete, so unlike the
    /// legacy snapshot flow there is nothing to serialise here — this is a
    /// durability barrier, not a save.
    ///
    /// # Errors
    ///
    /// Returns any underlying filesystem error.
    pub fn save_cache(&self) -> io::Result<()> {
        if let Some(log) = &mut self.lock_state().log {
            log.sync()?;
        }
        Ok(())
    }
}

impl Drop for BatchEvaluator {
    fn drop(&mut self) {
        if self.config.persist_path.is_some() {
            if let Err(error) = self.save_cache() {
                eprintln!("gcnrl-exec: failed to sync cache log on drop: {error}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(threads: usize, capacity: usize) -> BatchEvaluator {
        let node = TechnologyNode::tsmc180();
        BatchEvaluator::for_benchmark(
            Benchmark::TwoStageTia,
            &node,
            EngineConfig::serial()
                .with_threads(threads)
                .with_cache_capacity(capacity),
        )
    }

    fn candidates(n: usize) -> Vec<ParamVector> {
        let node = TechnologyNode::tsmc180();
        let circuit = Benchmark::TwoStageTia.circuit();
        let space = circuit.design_space(&node);
        (0..n)
            .map(|i| {
                let unit: Vec<f64> = (0..space.num_parameters())
                    .map(|j| ((i * 31 + j * 7) % 100) as f64 / 99.0)
                    .collect();
                space.from_unit(&unit)
            })
            .collect()
    }

    #[test]
    fn repeat_evaluation_hits_the_cache_bit_identically() {
        let engine = engine(1, 64);
        let pv = candidates(1).remove(0);
        let first = engine.evaluate(&pv);
        let second = engine.evaluate(&pv);
        assert_eq!(first, second);
        let stats = engine.stats();
        assert_eq!(stats.simulated, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.requests, 2);
    }

    #[test]
    fn batch_matches_serial_for_every_thread_count() {
        let pool_sizes = [1usize, 2, 4, 8];
        let inputs = candidates(12);
        let reference: Vec<PerformanceReport> = {
            let serial = engine(1, 256);
            inputs
                .iter()
                .map(|pv| serial.evaluator().evaluate(pv))
                .collect()
        };
        for threads in pool_sizes {
            let parallel = engine(threads, 256);
            let out = parallel.evaluate_batch(&inputs);
            assert_eq!(out, reference, "threads={threads}");
        }
    }

    #[test]
    fn duplicates_within_a_batch_simulate_once() {
        let engine = engine(4, 64);
        let mut inputs = candidates(3);
        inputs.push(inputs[0].clone());
        inputs.push(inputs[1].clone());
        let out = engine.evaluate_batch(&inputs);
        assert_eq!(out[0], out[3]);
        assert_eq!(out[1], out[4]);
        let stats = engine.stats();
        assert_eq!(stats.simulated, 3);
        assert_eq!(stats.cache_hits, 2);
        let batch = engine.last_batch();
        assert_eq!(batch.size, 5);
        assert_eq!(batch.simulated, 3);
        assert_eq!(batch.cache_hits, 2);
    }

    #[test]
    fn second_batch_is_fully_cached() {
        let engine = engine(2, 256);
        let inputs = candidates(8);
        let first = engine.evaluate_batch(&inputs);
        let second = engine.evaluate_batch(&inputs);
        assert_eq!(first, second);
        let batch = engine.last_batch();
        assert_eq!(batch.cache_hits, 8);
        assert_eq!(batch.simulated, 0);
        assert_eq!(engine.stats().hit_rate(), 0.5);
    }

    use crate::testing::LatencyEvaluator;

    #[test]
    fn pool_overlaps_latency_bound_evaluations() {
        use gcnrl_circuit::ComponentParams;
        let delay = Duration::from_millis(10);
        let engine = BatchEvaluator::new(
            Box::new(LatencyEvaluator::new(delay)),
            EngineConfig::serial().with_threads(4),
        );
        let candidates: Vec<ParamVector> = (0..8)
            .map(|i| ParamVector::new(vec![ComponentParams::Resistance(100.0 + i as f64)]))
            .collect();
        let start = Instant::now();
        let reports = engine.evaluate_batch(&candidates);
        let wall = start.elapsed();
        assert_eq!(reports.len(), 8);
        // Serial would take ≥ 80ms; 4 workers over 8 jobs need ~20ms. The
        // generous bound keeps the test robust on loaded CI machines while
        // still proving the evaluations overlapped.
        assert!(
            wall < delay * 6,
            "batch of 8 x {delay:?} jobs on 4 threads took {wall:?}; no overlap happened"
        );
    }

    #[test]
    fn live_appends_are_visible_to_engines_opened_later() {
        let node = TechnologyNode::tsmc180();
        let path = std::env::temp_dir().join("gcnrl_exec_engine_live_log.log");
        let _ = std::fs::remove_file(&path);
        let config = EngineConfig::serial().with_persist_path(&path);
        let candidate = candidates(1).remove(0);

        // Engine A stays alive the whole time: its entries reach the log at
        // insert time, not at drop time.
        let a = BatchEvaluator::for_benchmark(Benchmark::TwoStageTia, &node, config.clone());
        let first = a.evaluate(&candidate);
        assert_eq!(a.stats().simulated, 1);

        let b = BatchEvaluator::for_benchmark(Benchmark::TwoStageTia, &node, config);
        let second = b.evaluate(&candidate);
        assert_eq!(second, first, "replayed report must be bit-identical");
        assert_eq!(
            b.stats().simulated,
            0,
            "engine B must be served from engine A's live appends"
        );
        drop(a);
        drop(b);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stats_track_evictions_under_tiny_capacity() {
        let engine = engine(1, 2);
        let inputs = candidates(6);
        let _ = engine.evaluate_batch(&inputs);
        let stats = engine.stats();
        assert_eq!(stats.simulated, 6);
        assert_eq!(stats.cache_len, 2);
        assert_eq!(stats.evictions, 4);
    }

    /// An evaluator that panics with a descriptive message on one specific
    /// candidate, to test panic propagation out of the worker pool.
    struct PanickyEvaluator {
        inner: LatencyEvaluator,
    }

    impl Evaluator for PanickyEvaluator {
        fn benchmark(&self) -> Benchmark {
            self.inner.benchmark()
        }

        fn technology(&self) -> &TechnologyNode {
            self.inner.technology()
        }

        fn metric_specs(&self) -> &[MetricSpec] {
            self.inner.metric_specs()
        }

        fn evaluate(&self, params: &ParamVector) -> PerformanceReport {
            if params.to_flat()[0] == 666.0 {
                panic!("device R666 out of saturation");
            }
            self.inner.evaluate(params)
        }
    }

    #[test]
    fn worker_panics_propagate_with_their_original_message() {
        use gcnrl_circuit::ComponentParams;
        let engine = BatchEvaluator::new(
            Box::new(PanickyEvaluator {
                inner: LatencyEvaluator::new(Duration::ZERO),
            }),
            EngineConfig::serial().with_threads(4),
        );
        let candidates: Vec<ParamVector> = [100.0, 666.0, 300.0, 400.0]
            .iter()
            .map(|r| ParamVector::new(vec![ComponentParams::Resistance(*r)]))
            .collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.evaluate_batch(&candidates)
        }))
        .expect_err("the poisoned candidate must fail the batch");
        let message = caught
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| caught.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            message.contains("R666"),
            "original panic message must survive the pool; got `{message}`"
        );
    }
}
