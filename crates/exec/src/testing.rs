//! Test/benchmark support: a configurable-latency stand-in evaluator.

use gcnrl_circuit::{benchmarks::Benchmark, ParamVector, TechnologyNode};
use gcnrl_sim::evaluators::Evaluator;
use gcnrl_sim::{MetricSpec, PerformanceReport};
use std::time::Duration;

/// A stand-in for an external (process/network-bound) simulator: it sleeps
/// for a fixed latency, then reports the flat parameter sum.
///
/// This is the regime the engine targets — the paper's real bottleneck is
/// commercial SPICE invocations whose latency is not CPU-bound — and the
/// sleep makes worker-pool overlap observable even on a single core. Used by
/// the engine's own tests and the `exec` benchmark in `gcnrl-bench`.
pub struct LatencyEvaluator {
    node: TechnologyNode,
    specs: Vec<MetricSpec>,
    latency: Duration,
}

impl LatencyEvaluator {
    /// Creates an evaluator that sleeps `latency` per candidate.
    pub fn new(latency: Duration) -> Self {
        LatencyEvaluator {
            node: TechnologyNode::tsmc180(),
            specs: Vec::new(),
            latency,
        }
    }
}

impl Evaluator for LatencyEvaluator {
    fn benchmark(&self) -> Benchmark {
        Benchmark::TwoStageTia
    }

    fn technology(&self) -> &TechnologyNode {
        &self.node
    }

    fn metric_specs(&self) -> &[MetricSpec] {
        &self.specs
    }

    fn evaluate(&self, params: &ParamVector) -> PerformanceReport {
        std::thread::sleep(self.latency);
        let mut report = PerformanceReport::new();
        report.set("flat_sum", params.to_flat().iter().sum());
        report
    }
}
