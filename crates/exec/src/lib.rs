//! # gcnrl-exec — parallel batched evaluation with content-addressed caching
//!
//! Candidate evaluation dominates every optimisation run in this workspace:
//! each RL step, ES population member and BO acquisition round pays one full
//! simulator call. This crate is the execution subsystem that owns that cost
//! so the optimizers never have to think about it. It sits between the
//! optimizers (`gcnrl`, `gcnrl-baselines`) and the simulator (`gcnrl-sim`):
//!
//! ```text
//!   GcnRlDesigner / ES / BO / MACE / Random
//!                  │  ParamVector batches
//!                  ▼
//!          ┌───────────────────┐    stats    ┌───────────┐
//!          │   BatchEvaluator  │────────────▶│ ExecStats │
//!          └───────┬───────────┘             └───────────┘
//!          hit ┌───┴────┐ miss
//!              ▼        ▼
//!       ┌───────────┐ ┌───────────────┐
//!       │ResultCache│ │  WorkerPool   │  (std::thread + mpsc)
//!       │ (LRU+disk)│ │ evaluate(...) │
//!       └───────────┘ └───────┬───────┘
//!                             ▼
//!                     gcnrl-sim Evaluator (pure function)
//! ```
//!
//! The pillars:
//!
//! * [`BatchEvaluator`] — fans a batch of [`ParamVector`]s across a
//!   configurable worker pool and returns reports **in input order**. Because
//!   every `Evaluator` is a pure function of its parameter vector, the result
//!   is bit-identical for any thread count.
//! * [`ResultCache`] — a content-addressed LRU cache keyed by
//!   [`CacheKey`] = (benchmark, technology node, quantized parameter vector),
//!   with hit/miss/eviction counters and optional JSON disk persistence for
//!   cross-run reuse ([`persist`]).
//! * [`EvalService`] / [`SessionHandle`] — the request-queue front-end
//!   ([`service`]): many concurrent sessions submit batches that a single
//!   dispatcher assembles into fair, deduplicated engine rounds, resolved
//!   through per-request reply channels. [`EvalBackend`] abstracts over
//!   "owned engine" vs "service session" so clients cannot tell the
//!   difference.
//! * [`ExecStats`] — throughput, cache hit rate and wall time, surfaced by
//!   the bench harness next to each method's result.
//!
//! # Example
//!
//! ```
//! use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};
//! use gcnrl_exec::{BatchEvaluator, EngineConfig};
//!
//! let node = TechnologyNode::tsmc180();
//! let engine = BatchEvaluator::for_benchmark(
//!     Benchmark::TwoStageTia,
//!     &node,
//!     EngineConfig::default().with_threads(4),
//! );
//! let space = Benchmark::TwoStageTia.circuit().design_space(&node);
//! let batch = vec![space.nominal(); 3];
//! let reports = engine.evaluate_batch(&batch);
//! assert_eq!(reports.len(), 3);
//! // The three candidates are identical, so only one was simulated:
//! assert_eq!(engine.stats().simulated, 1);
//! ```
//!
//! [`ParamVector`]: gcnrl_circuit::ParamVector

mod backend;
mod cache;
mod engine;
pub mod key;
pub mod persist;
mod pool;
pub mod service;
mod stats;
pub mod testing;

pub use backend::EvalBackend;
pub use cache::ResultCache;
pub use engine::{BatchEvaluator, EngineConfig};
// Strict `GCNRL_*` knob parsing moved to the bottom of the crate graph
// (gcnrl-telemetry) so every layer shares it; re-exported for the existing
// `gcnrl_exec::env_usize` call sites.
pub use gcnrl_telemetry::env_usize;
pub use key::{quantize, CacheKey, DEFAULT_QUANTIZE_DIGITS};
pub use pool::WorkerPool;
pub use service::{
    panic_message, ClosedSessionStats, EvalService, PendingBatch, ServiceClosed, ServiceConfig,
    SessionHandle, SessionStats,
};
pub use stats::{BatchReport, ExecStats};
