//! Content addressing of evaluation requests.
//!
//! A [`CacheKey`] identifies one simulator invocation by *what* is being
//! simulated — `(benchmark, technology node, quantized parameter vector)` —
//! rather than by where the request came from, so the same candidate sizing
//! reached via RL actions, a flat unit vector, or a disk-persisted run all
//! address the same cache slot.

use gcnrl_circuit::{benchmarks::Benchmark, ComponentParams, ParamVector};
use serde::{Deserialize, Serialize};

/// Number of significant decimal digits kept when quantizing parameters into
/// a key. Manufacturing grids in every technology node are ≥ 1e-3 µm and all
/// passive ranges span < 6 decades, so 12 significant digits is far below the
/// resolution at which two sizings are physically distinct, while absorbing
/// last-bit float noise from different arithmetic paths.
pub const DEFAULT_QUANTIZE_DIGITS: i32 = 12;

/// Rounds `value` to `digits` significant decimal digits.
///
/// Zero and non-finite values pass through unchanged.
pub fn quantize(value: f64, digits: i32) -> f64 {
    if value == 0.0 || !value.is_finite() {
        return value;
    }
    let magnitude = value.abs().log10().floor() as i32;
    let scale = 10f64.powi(digits - 1 - magnitude);
    if !scale.is_finite() || scale == 0.0 {
        return value;
    }
    (value * scale).round() / scale
}

/// The content address of one evaluation: benchmark + technology node +
/// quantized parameter vector (stored as exact bit patterns so `Eq`/`Hash`
/// are well defined).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheKey {
    /// The benchmark circuit being simulated.
    pub benchmark: Benchmark,
    /// Name of the technology node (nodes are uniquely named).
    pub node: String,
    /// Bit patterns of the quantized flat parameter vector.
    pub param_bits: Vec<u64>,
}

impl CacheKey {
    /// Builds the key for evaluating `params` on `benchmark` at the node
    /// named `node`, quantizing to `digits` significant digits.
    pub fn new(benchmark: Benchmark, node: &str, params: &ParamVector, digits: i32) -> Self {
        let mut param_bits = Vec::with_capacity(params.len() * 3);
        for component in params.params() {
            // Tag each component kind so e.g. a resistor of 2.0 Ω and a lone
            // width of 2.0 µm can never alias.
            match component {
                ComponentParams::Mos(_) => param_bits.push(0),
                ComponentParams::Resistance(_) => param_bits.push(1),
                ComponentParams::Capacitance(_) => param_bits.push(2),
            }
            for v in component.to_vec() {
                param_bits.push(quantize(v, digits).to_bits());
            }
        }
        CacheKey {
            benchmark,
            node: node.to_owned(),
            param_bits,
        }
    }

    /// A stable 64-bit content digest (FNV-1a over the key's canonical
    /// bytes), used for log lines and persisted-entry labels.
    pub fn digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf29ce484222325;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                hash ^= u64::from(*b);
                hash = hash.wrapping_mul(0x100000001b3);
            }
        };
        eat(format!("{:?}", self.benchmark).as_bytes());
        eat(self.node.as_bytes());
        for bits in &self.param_bits {
            eat(&bits.to_le_bytes());
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnrl_circuit::TechnologyNode;

    fn nominal(benchmark: Benchmark) -> ParamVector {
        let node = TechnologyNode::tsmc180();
        benchmark.circuit().design_space(&node).nominal()
    }

    #[test]
    fn quantize_rounds_to_significant_digits() {
        assert_eq!(quantize(1.000000000000071, 12), 1.0);
        assert_eq!(quantize(123.456, 4), 123.5);
        assert_eq!(quantize(0.0, 12), 0.0);
        assert!(quantize(f64::NAN, 12).is_nan());
        // Idempotent, and collapses sub-quantum differences, even where the
        // rounded result is not exactly representable in binary.
        for v in [-5.0e-14, 0.3057, 4.7e6, -123.456789] {
            let q = quantize(v, 12);
            assert_eq!(quantize(q, 12), q, "idempotence for {v}");
            assert_eq!(
                quantize(v * (1.0 + 5.0e-15), 12),
                q,
                "noise absorption for {v}"
            );
        }
    }

    #[test]
    fn identical_requests_share_a_key_and_digest() {
        let pv = nominal(Benchmark::TwoStageTia);
        let a = CacheKey::new(Benchmark::TwoStageTia, "180nm", &pv, 12);
        let b = CacheKey::new(Benchmark::TwoStageTia, "180nm", &pv.clone(), 12);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn benchmark_node_and_params_all_separate_keys() {
        let pv = nominal(Benchmark::TwoStageTia);
        let base = CacheKey::new(Benchmark::TwoStageTia, "180nm", &pv, 12);
        let other_node = CacheKey::new(Benchmark::TwoStageTia, "65nm", &pv, 12);
        let other_bench = CacheKey::new(Benchmark::Ldo, "180nm", &pv, 12);
        assert_ne!(base, other_node);
        assert_ne!(base, other_bench);
        let other_params = nominal(Benchmark::Ldo);
        let changed = CacheKey::new(Benchmark::TwoStageTia, "180nm", &other_params, 12);
        assert_ne!(base, changed);
    }

    #[test]
    fn sub_quantum_noise_is_absorbed() {
        let pv = nominal(Benchmark::TwoStageTia);
        let flat = pv.to_flat();
        // Perturb by ~1 part in 1e14 — far below 12 significant digits.
        let a = quantize(flat[0] * (1.0 + 1e-14), 12);
        assert_eq!(a, quantize(flat[0], 12));
    }
}
