//! The evaluation service: a request-queue front-end multiplexing many
//! concurrent optimisation sessions onto one engine + cache.
//!
//! [`BatchEvaluator::evaluate_batch`] is a blocking call owned by one caller.
//! [`EvalService`] turns it into a shared facility: any number of
//! [`SessionHandle`]s submit evaluation requests from their own threads, a
//! single dispatcher thread assembles them into engine batches, and each
//! request resolves through its own reply channel ([`PendingBatch`]).
//!
//! ```text
//!   session A ──submit──┐                       ┌─▶ reply channel A
//!   session B ──submit──┤   ┌────────────────┐  ├─▶ reply channel B
//!   session C ──submit──┼──▶│ dispatcher     │──┤
//!                       │   │  fair rounds   │  └─▶ reply channel C
//!        (mpsc queue)   │   │  mega-batches  │
//!                       │   └───────┬────────┘
//!                       │           ▼
//!                       │   BatchEvaluator (cache + worker pool)
//! ```
//!
//! What the queue buys over handing every session its own engine:
//!
//! * **One cache.** All sessions share the engine's content-addressed result
//!   cache, so a candidate simulated for one session is a hit for every
//!   other — visible in the merged [`ExecStats`].
//! * **In-flight deduplication by construction.** Because every request
//!   passes through the single dispatcher, identical candidates submitted
//!   concurrently by different sessions land in the *same* engine batch and
//!   are simulated once (the engine's intra-batch dedup), a guarantee raw
//!   concurrent `evaluate_batch` calls on a shared engine cannot give.
//! * **Fair scheduling.** Each dispatch round takes requests round-robin
//!   across sessions (oldest first per session) up to a candidate cap, so a
//!   session with a deep backlog cannot starve a light one.
//! * **Graceful shutdown.** [`EvalService::shutdown`] stops accepting new
//!   requests, drains every queued request, and joins the dispatcher; it is
//!   also invoked automatically when the last service/session handle drops.
//!
//! Results are bit-identical to each session running alone against a private
//! engine (evaluators are pure functions of the parameter vector), which is
//! what lets the bench coordinator and multi-session clients share one
//! engine without changing any reported number.

use crate::engine::BatchEvaluator;
use crate::stats::ExecStats;
use gcnrl_circuit::ParamVector;
use gcnrl_sim::PerformanceReport;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Configuration of an [`EvalService`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Candidate budget of one dispatch round. The dispatcher keeps adding
    /// requests (round-robin across sessions) while the round holds fewer
    /// candidates than this, so a single oversized request still dispatches
    /// alone rather than deadlocking. Smaller values trade engine batch size
    /// for scheduling granularity (a long round delays every later request).
    pub max_round_candidates: usize,
    /// Batching hint: how long the dispatcher waits for further requests
    /// before closing a round. `None` (the default) dispatches whatever is
    /// queued the moment the dispatcher is free; a deadline trades that
    /// first-request latency for fuller rounds (better engine batches and
    /// in-flight dedup) when many sessions submit at a similar cadence. The
    /// wait ends early once the backlog reaches the candidate cap.
    pub round_deadline: Option<std::time::Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_round_candidates: 1024,
            round_deadline: None,
        }
    }
}

impl ServiceConfig {
    /// Returns a copy with a different per-round candidate budget.
    pub fn with_max_round_candidates(mut self, cap: usize) -> Self {
        self.max_round_candidates = cap.max(1);
        self
    }

    /// Returns a copy that holds each round open up to `deadline` waiting
    /// for more requests to pack (deadline-based round closing).
    pub fn with_round_deadline(mut self, deadline: std::time::Duration) -> Self {
        self.round_deadline = Some(deadline);
        self
    }
}

/// Per-session accounting, kept by the service and surfaced through
/// [`SessionHandle::session_stats`] / [`EvalService::session_stats`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionStats {
    /// Session name (auto-generated `session-N` unless given at creation).
    pub name: String,
    /// Fair-share weight: how many of this session's requests one dispatch
    /// sweep may admit relative to a weight-1 session (see
    /// [`SessionHandle::with_weight`]).
    pub weight: u64,
    /// Requests the session has submitted.
    pub submitted: u64,
    /// Requests the dispatcher has resolved.
    pub resolved: u64,
    /// Candidates evaluated on the session's behalf.
    pub candidates: u64,
    /// Dispatch rounds that batched this session together with at least one
    /// other session (the multiplexing witness).
    pub shared_rounds: u64,
}

/// Service-level aggregate of every retired session, folded in by
/// [`SessionHandle::retire`]. A long-lived service used to keep one
/// [`SessionStats`] entry per session it had *ever* hosted; closed sessions
/// now collapse into this fixed-size summary, so the per-session map holds
/// live sessions only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ClosedSessionStats {
    /// Sessions retired so far.
    pub sessions: u64,
    /// Requests those sessions submitted.
    pub submitted: u64,
    /// Requests the dispatcher resolved for them.
    pub resolved: u64,
    /// Candidates evaluated on their behalf.
    pub candidates: u64,
    /// Dispatch rounds they shared with at least one other session.
    pub shared_rounds: u64,
}

impl ClosedSessionStats {
    /// Folds one closing session into the aggregate.
    pub fn fold(&mut self, stats: &SessionStats) {
        self.sessions += 1;
        self.submitted += stats.submitted;
        self.resolved += stats.resolved;
        self.candidates += stats.candidates;
        self.shared_rounds += stats.shared_rounds;
    }

    /// Merges another aggregate (e.g. across the services of a registry).
    pub fn merge(&mut self, other: &ClosedSessionStats) {
        self.sessions += other.sessions;
        self.submitted += other.submitted;
        self.resolved += other.resolved;
        self.candidates += other.candidates;
        self.shared_rounds += other.shared_rounds;
    }
}

/// What the dispatcher sends back per request: the reports, or the message
/// of the evaluator panic that failed the request's round (each failed
/// round carries its own message — a later failure is never masked by an
/// earlier one).
type RoundOutcome = Result<Vec<PerformanceReport>, Arc<String>>;

/// One queued evaluation request.
struct Request {
    session: u64,
    params: Vec<ParamVector>,
    reply: Sender<RoundOutcome>,
    /// When the request entered the queue — the dispatcher records the
    /// submit-to-dispatch delta as `service.queue_wait.ns`.
    submitted_at: Instant,
}

/// State shared between the handles and the dispatcher thread. The
/// dispatcher holds only this (not [`ServiceShared`]), so dropping the last
/// handle can join the dispatcher without an `Arc` cycle.
struct DispatchState {
    engine: Arc<BatchEvaluator>,
    sessions: Mutex<HashMap<u64, SessionStats>>,
    /// Non-default fair-share weights only (weight > 1), kept separate from
    /// the full `sessions` stats map so the dispatcher's per-round snapshot
    /// scales with the number of *live weighted* sessions, not with every
    /// session a long-lived service has accumulated (entries are removed by
    /// [`SessionHandle::retire`] when a connection closes, or by setting the
    /// weight back to 1).
    weights: Mutex<HashMap<u64, u64>>,
    /// Aggregate of every retired session (see [`ClosedSessionStats`]).
    closed: Mutex<ClosedSessionStats>,
    /// Requests submitted but not yet resolved — the live queue depth the
    /// serve tier reads for admission control.
    pending: AtomicU64,
    /// Sliding window of the most recent per-request queue waits (ns), the
    /// load signal behind [`EvalService::queue_wait_p90`]. Bounded by
    /// [`QUEUE_WAIT_WINDOW`], so an idle burst ages out instead of skewing
    /// admission forever.
    queue_waits: Mutex<VecDeque<u64>>,
}

/// Samples kept in the per-service queue-wait sliding window.
const QUEUE_WAIT_WINDOW: usize = 512;

struct ServiceShared {
    state: Arc<DispatchState>,
    config: ServiceConfig,
    submit: Mutex<Option<Sender<Request>>>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
    next_session: AtomicU64,
}

impl ServiceShared {
    /// Stops intake, drains the queue and joins the dispatcher. Idempotent.
    fn shutdown(&self) {
        // Dropping the submit sender closes the queue; the dispatcher
        // finishes the backlog and exits.
        drop(self.submit.lock().expect("service submit lock").take());
        let handle = self
            .dispatcher
            .lock()
            .expect("service dispatcher lock")
            .take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for ServiceShared {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The session-multiplexed front-end over one [`BatchEvaluator`]. Cloning is
/// cheap (an `Arc`); the underlying dispatcher shuts down when the last
/// service or session handle drops.
#[derive(Clone)]
pub struct EvalService {
    shared: Arc<ServiceShared>,
}

impl std::fmt::Debug for EvalService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalService")
            .field("engine", &self.shared.state.engine)
            .field("config", &self.shared.config)
            .finish()
    }
}

/// The error returned when submitting to a service that has been shut down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceClosed;

impl std::fmt::Display for ServiceClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "the evaluation service has been shut down")
    }
}

impl std::error::Error for ServiceClosed {}

impl EvalService {
    /// Starts a service (and its dispatcher thread) over an existing engine.
    pub fn new(engine: BatchEvaluator, config: ServiceConfig) -> Self {
        Self::from_arc(Arc::new(engine), config)
    }

    /// Starts a service over an engine that is already shared.
    pub fn from_arc(engine: Arc<BatchEvaluator>, config: ServiceConfig) -> Self {
        let state = Arc::new(DispatchState {
            engine,
            sessions: Mutex::new(HashMap::new()),
            weights: Mutex::new(HashMap::new()),
            closed: Mutex::new(ClosedSessionStats::default()),
            pending: AtomicU64::new(0),
            queue_waits: Mutex::new(VecDeque::with_capacity(QUEUE_WAIT_WINDOW)),
        });
        let (tx, rx) = channel::<Request>();
        let dispatcher = {
            let state = Arc::clone(&state);
            let dispatch_config = config.clone();
            std::thread::Builder::new()
                .name("gcnrl-eval-service".to_owned())
                .spawn(move || dispatch_loop(&state, &rx, &dispatch_config))
                .expect("spawn gcnrl-eval-service dispatcher")
        };
        EvalService {
            shared: Arc::new(ServiceShared {
                state,
                config,
                submit: Mutex::new(Some(tx)),
                dispatcher: Mutex::new(Some(dispatcher)),
                next_session: AtomicU64::new(0),
            }),
        }
    }

    /// Builds the engine for `benchmark` at `node` and starts a service over
    /// it.
    pub fn for_benchmark(
        benchmark: gcnrl_circuit::benchmarks::Benchmark,
        node: &gcnrl_circuit::TechnologyNode,
        engine: crate::engine::EngineConfig,
        config: ServiceConfig,
    ) -> Self {
        Self::new(
            BatchEvaluator::for_benchmark(benchmark, node, engine),
            config,
        )
    }

    /// Opens a new session with an auto-generated name (`session-N`).
    pub fn session(&self) -> SessionHandle {
        self.open_session(None)
    }

    /// Opens a new session under an explicit name (shown in
    /// [`SessionStats`]).
    pub fn session_named(&self, name: impl Into<String>) -> SessionHandle {
        self.open_session(Some(name.into()))
    }

    fn open_session(&self, name: Option<String>) -> SessionHandle {
        let id = self.shared.next_session.fetch_add(1, Ordering::Relaxed);
        let name = name.unwrap_or_else(|| format!("session-{id}"));
        self.shared
            .state
            .sessions
            .lock()
            .expect("service sessions lock")
            .insert(
                id,
                SessionStats {
                    name,
                    weight: 1,
                    ..SessionStats::default()
                },
            );
        SessionHandle {
            service: self.clone(),
            id,
        }
    }

    /// The engine behind the queue.
    pub fn engine(&self) -> &BatchEvaluator {
        &self.shared.state.engine
    }

    /// Cumulative statistics of the shared engine — the merged view across
    /// every session, where cross-session cache hits show up.
    pub fn engine_stats(&self) -> ExecStats {
        self.shared.state.engine.stats()
    }

    /// Aggregate accounting of every session retired so far (live sessions
    /// appear in [`EvalService::session_stats`] instead).
    pub fn closed_session_stats(&self) -> ClosedSessionStats {
        *self
            .shared
            .state
            .closed
            .lock()
            .expect("service closed-session lock")
    }

    /// Per-session accounting of the *live* sessions, in session-creation
    /// order (retired sessions are folded into
    /// [`EvalService::closed_session_stats`]).
    pub fn session_stats(&self) -> Vec<SessionStats> {
        let sessions = self
            .shared
            .state
            .sessions
            .lock()
            .expect("service sessions lock");
        let mut ids: Vec<&u64> = sessions.keys().collect();
        ids.sort();
        ids.into_iter().map(|id| sessions[id].clone()).collect()
    }

    /// Stops accepting new requests, resolves every queued request, and
    /// joins the dispatcher thread. Idempotent; also runs when the last
    /// handle (service or session) drops.
    pub fn shutdown(&self) {
        self.shared.shutdown();
    }

    /// Requests submitted but not yet resolved, across every session. This
    /// is the queue depth a front-end reads for admission control: it counts
    /// a request from the moment [`EvalService::try_submit`] (or a blocking
    /// submit) accepts it until the dispatcher sends its reply.
    pub fn pending_requests(&self) -> u64 {
        self.shared.state.pending.load(Ordering::Relaxed)
    }

    /// The most recent per-request queue waits (submit-to-dispatch, ns), up
    /// to [`QUEUE_WAIT_WINDOW`] samples, oldest first. This is the sliding
    /// window behind [`EvalService::queue_wait_p90`]; a front-end that
    /// aggregates several services pulls the raw samples instead.
    pub fn queue_wait_samples(&self) -> Vec<u64> {
        self.shared
            .state
            .queue_waits
            .lock()
            .expect("service queue-wait lock")
            .iter()
            .copied()
            .collect()
    }

    /// p90 of the recent queue-wait window, or `None` before any request has
    /// been dispatched. Unlike the cumulative `service.queue_wait.ns`
    /// histogram, this reflects only *current* load: old congestion ages out
    /// of the window, so admission control recovers once the queue drains.
    pub fn queue_wait_p90(&self) -> Option<std::time::Duration> {
        let mut samples = self.queue_wait_samples();
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let rank = (samples.len() * 9).div_ceil(10).max(1) - 1;
        Some(std::time::Duration::from_nanos(samples[rank]))
    }

    /// Whether the service still accepts submissions.
    pub fn is_open(&self) -> bool {
        self.shared
            .submit
            .lock()
            .expect("service submit lock")
            .is_some()
    }

    fn submit_request(
        &self,
        session: u64,
        params: Vec<ParamVector>,
    ) -> Result<PendingBatch, ServiceClosed> {
        let size = params.len();
        let (reply_tx, reply_rx) = channel();
        let bump_submitted = |delta: i64| {
            if let Some(stats) = self
                .shared
                .state
                .sessions
                .lock()
                .expect("service sessions lock")
                .get_mut(&session)
            {
                stats.submitted = stats.submitted.wrapping_add_signed(delta);
            }
        };
        {
            let guard = self.shared.submit.lock().expect("service submit lock");
            let Some(sender) = guard.as_ref() else {
                return Err(ServiceClosed);
            };
            // Count the submission before the dispatcher can possibly
            // resolve it, so `submitted >= resolved` (and a non-negative
            // pending count) holds for any concurrent reader; roll back if
            // the send fails.
            bump_submitted(1);
            self.shared.state.pending.fetch_add(1, Ordering::Relaxed);
            if sender
                .send(Request {
                    session,
                    params,
                    reply: reply_tx,
                    submitted_at: Instant::now(),
                })
                .is_err()
            {
                bump_submitted(-1);
                self.shared.state.pending.fetch_sub(1, Ordering::Relaxed);
                return Err(ServiceClosed);
            }
        }
        Ok(PendingBatch {
            reply: reply_rx,
            size,
        })
    }
}

/// One client of an [`EvalService`]: a cheap cloneable handle that submits
/// evaluation requests onto the shared queue. Clones share the session
/// identity (and its statistics).
///
/// `SessionHandle` implements [`EvalBackend`](crate::EvalBackend), so a
/// `SizingEnv` or any other engine client can run over a session exactly as
/// it would over a private engine — same results, shared cache.
#[derive(Clone)]
pub struct SessionHandle {
    service: EvalService,
    id: u64,
}

impl std::fmt::Debug for SessionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionHandle")
            .field("id", &self.id)
            .field("name", &self.session_stats().name)
            .finish()
    }
}

impl SessionHandle {
    /// The service this session belongs to.
    pub fn service(&self) -> &EvalService {
        &self.service
    }

    /// Sets this session's fair-share weight (clamped to at least 1) and
    /// returns the handle. One dispatch sweep admits up to `weight` of this
    /// session's requests where a weight-1 session contributes one, so a
    /// weight-2 session receives roughly twice the round share under
    /// contention. Weights only change scheduling — results are bit-identical
    /// at any weight. Clones share the session, so the weight applies to all
    /// of them.
    pub fn with_weight(self, weight: u64) -> Self {
        let weight = weight.max(1);
        if let Some(stats) = self
            .service
            .shared
            .state
            .sessions
            .lock()
            .expect("service sessions lock")
            .get_mut(&self.id)
        {
            stats.weight = weight;
        }
        // The dispatcher reads weights from this dedicated map; only
        // non-default entries are stored so its per-round snapshot stays
        // tiny regardless of how many sessions the service has seen.
        {
            let mut weights = self
                .service
                .shared
                .state
                .weights
                .lock()
                .expect("service weights lock");
            if weight > 1 {
                weights.insert(self.id, weight);
            } else {
                weights.remove(&self.id);
            }
        }
        self
    }

    /// Submits a batch without blocking; resolve it with
    /// [`PendingBatch::wait`]. Several pending batches may be in flight at
    /// once (they resolve in submission order — the dispatcher never
    /// reorders requests of one session).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceClosed`] after [`EvalService::shutdown`].
    pub fn try_submit(&self, params: Vec<ParamVector>) -> Result<PendingBatch, ServiceClosed> {
        self.service.submit_request(self.id, params)
    }

    /// Submits a batch without blocking.
    ///
    /// # Panics
    ///
    /// Panics if the service has been shut down (use
    /// [`SessionHandle::try_submit`] to handle that case).
    pub fn submit(&self, params: Vec<ParamVector>) -> PendingBatch {
        self.try_submit(params)
            .expect("submit on a shut-down evaluation service")
    }

    /// Submits a batch and blocks until it resolves, returning reports in
    /// input order — the session-side equivalent of
    /// [`BatchEvaluator::evaluate_batch`].
    ///
    /// # Panics
    ///
    /// Panics if the service was shut down, or if the evaluator panicked on
    /// one of the candidates (mirroring the direct-engine contract).
    pub fn evaluate_batch(&self, params: &[ParamVector]) -> Vec<PerformanceReport> {
        if params.is_empty() {
            return Vec::new();
        }
        self.submit(params.to_vec()).wait()
    }

    /// Retires this session once it will submit no more: its fair-share
    /// weight entry is removed and its [`SessionStats`] entry is folded into
    /// the service-level [`ClosedSessionStats`] aggregate, so neither the
    /// dispatcher's weight snapshot nor the per-session stats map grows with
    /// every session a long-lived service has ever hosted. A retired session
    /// that submits anyway still works (scheduled at the default weight) but
    /// is no longer accounted per-session. The network server calls this
    /// when a connection closes.
    pub fn retire(&self) {
        let state = &self.service.shared.state;
        state
            .weights
            .lock()
            .expect("service weights lock")
            .remove(&self.id);
        let folded = state
            .sessions
            .lock()
            .expect("service sessions lock")
            .remove(&self.id);
        if let Some(stats) = folded {
            state
                .closed
                .lock()
                .expect("service closed-session lock")
                .fold(&stats);
        }
    }

    /// This session's accounting (requests, candidates, shared rounds).
    pub fn session_stats(&self) -> SessionStats {
        self.service
            .shared
            .state
            .sessions
            .lock()
            .expect("service sessions lock")
            .get(&self.id)
            .cloned()
            .unwrap_or_default()
    }
}

impl crate::EvalBackend for SessionHandle {
    fn benchmark(&self) -> gcnrl_circuit::benchmarks::Benchmark {
        self.service.engine().benchmark()
    }

    fn technology(&self) -> &gcnrl_circuit::TechnologyNode {
        self.service.shared.state.engine.technology()
    }

    fn metric_specs(&self) -> &[gcnrl_sim::MetricSpec] {
        self.service.shared.state.engine.metric_specs()
    }

    fn evaluate_batch(&self, params: &[ParamVector]) -> Vec<PerformanceReport> {
        SessionHandle::evaluate_batch(self, params)
    }

    fn stats(&self) -> ExecStats {
        self.service.engine_stats()
    }

    fn last_batch(&self) -> crate::BatchReport {
        self.service.engine().last_batch()
    }
}

/// A submitted-but-unresolved evaluation request (a poor man's future over
/// an mpsc reply channel).
pub struct PendingBatch {
    reply: Receiver<RoundOutcome>,
    size: usize,
}

impl PendingBatch {
    /// Number of candidates in the request.
    pub fn len(&self) -> usize {
        self.size
    }

    /// Whether the request was empty.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Blocks until the dispatcher resolves the request, returning reports
    /// in input order.
    ///
    /// # Panics
    ///
    /// Panics if the request was dropped because the evaluator panicked
    /// (the original panic message is included).
    pub fn wait(self) -> Vec<PerformanceReport> {
        match self.try_wait() {
            Ok(reports) => reports,
            Err(message) => panic!("evaluation service request failed: {message}"),
        }
    }

    /// Blocks until the dispatcher resolves the request, returning the
    /// failure as a value instead of panicking — the network server uses
    /// this to turn an evaluator panic into an `Error` frame for the one
    /// affected client while the reactor keeps serving everyone else.
    ///
    /// # Errors
    ///
    /// The panic message of the evaluator, or a note that the service
    /// dropped the request.
    pub fn try_wait(self) -> Result<Vec<PerformanceReport>, String> {
        match self.reply.recv() {
            Ok(Ok(reports)) => Ok(reports),
            Ok(Err(message)) => Err(message.as_ref().clone()),
            Err(_) => Err("the evaluation service dropped a pending request".to_owned()),
        }
    }
}

/// Takes one fair dispatch round out of the backlog: sweep the queue in
/// arrival order taking at most `weight` requests per session per sweep
/// (1 for unweighted sessions — see [`SessionHandle::with_weight`]),
/// repeating until the candidate cap is reached or the backlog is empty.
/// The first request of a round is always admitted, so an oversized request
/// cannot wedge the queue.
fn next_round(
    backlog: &mut VecDeque<Request>,
    cap: usize,
    weights: &HashMap<u64, u64>,
) -> Vec<Request> {
    let mut round: Vec<Request> = Vec::new();
    let mut candidates = 0usize;
    loop {
        let mut taken_this_sweep: HashMap<u64, u64> = HashMap::new();
        let mut kept: VecDeque<Request> = VecDeque::with_capacity(backlog.len());
        let mut progressed = false;
        for request in backlog.drain(..) {
            let share = weights.get(&request.session).copied().unwrap_or(1).max(1);
            let taken = taken_this_sweep.entry(request.session).or_insert(0);
            if candidates < cap && *taken < share {
                *taken += 1;
                candidates += request.params.len();
                round.push(request);
                progressed = true;
            } else {
                kept.push_back(request);
            }
        }
        *backlog = kept;
        if !progressed || backlog.is_empty() || candidates >= cap {
            return round;
        }
    }
}

fn dispatch_loop(state: &DispatchState, queue: &Receiver<Request>, config: &ServiceConfig) {
    let cap = config.max_round_candidates.max(1);
    let mut backlog: VecDeque<Request> = VecDeque::new();
    let mut open = true;
    while open || !backlog.is_empty() {
        if backlog.is_empty() {
            // Nothing queued: block for the next request (or shutdown).
            match queue.recv() {
                Ok(request) => backlog.push_back(request),
                Err(_) => {
                    open = false;
                    continue;
                }
            }
        }
        // Round assembly — from "at least one request is queued" to "the
        // round is closed" — is timed as `service.round_assemble.ns`: it
        // covers the deadline window, the non-blocking drain and the fair
        // sweep, i.e. the scheduling latency the service adds on top of the
        // engine.
        let round = {
            let _assemble = gcnrl_telemetry::span!("service.round_assemble.ns");
            // Deadline-based round closing: hold the round open up to the
            // configured window so concurrent sessions pack fuller rounds,
            // ending early once the backlog already fills the candidate cap.
            if let (Some(window), true) = (config.round_deadline, open) {
                let close = Instant::now() + window;
                while backlog.iter().map(|r| r.params.len()).sum::<usize>() < cap {
                    let now = Instant::now();
                    let Some(remaining) =
                        close.checked_duration_since(now).filter(|d| !d.is_zero())
                    else {
                        break;
                    };
                    match queue.recv_timeout(remaining) {
                        Ok(request) => backlog.push_back(request),
                        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => break,
                        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                            open = false;
                            break;
                        }
                    }
                }
            }
            // Pull in everything else that is already waiting, without
            // blocking: concurrent sessions coalesce into one engine batch
            // here.
            loop {
                match queue.try_recv() {
                    Ok(request) => backlog.push_back(request),
                    Err(std::sync::mpsc::TryRecvError::Empty) => break,
                    Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                        open = false;
                        break;
                    }
                }
            }

            // Snapshot only the non-default weights (usually empty), so the
            // cost does not scale with the total number of sessions ever
            // opened.
            let weights: HashMap<u64, u64> =
                state.weights.lock().expect("service weights lock").clone();
            next_round(&mut backlog, cap, &weights)
        };
        if round.is_empty() {
            continue;
        }
        {
            // Requests still queued after the fair sweep = the depth the
            // *next* round starts from; the gauge tracks the live value, the
            // histogram its distribution across rounds.
            static QUEUE_DEPTH: OnceLock<Arc<gcnrl_telemetry::Histogram>> = OnceLock::new();
            static BACKLOG: OnceLock<Arc<gcnrl_telemetry::Gauge>> = OnceLock::new();
            QUEUE_DEPTH
                .get_or_init(|| gcnrl_telemetry::global().histogram("service.queue_depth"))
                .record(backlog.len() as u64);
            BACKLOG
                .get_or_init(|| gcnrl_telemetry::global().gauge("service.backlog"))
                .set(backlog.len() as i64);
        }
        run_round(state, round);
    }
}

/// Extracts the human-readable message out of a caught panic payload (the
/// common `&str` / `String` cases, with a generic fallback). Shared by the
/// dispatcher's round failure path and the network server's per-request
/// error reporting, so the same panic reads the same at every layer.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "evaluator panicked".to_owned())
}

fn run_round(state: &DispatchState, round: Vec<Request>) {
    // Round occupancy and per-request queueing delay. These are value
    // histograms (not durations) except queue_wait, which measures
    // submit-to-dispatch latency per request.
    {
        static QUEUE_WAIT: OnceLock<Arc<gcnrl_telemetry::Histogram>> = OnceLock::new();
        static ROUND_SESSIONS: OnceLock<Arc<gcnrl_telemetry::Histogram>> = OnceLock::new();
        static ROUND_CANDIDATES: OnceLock<Arc<gcnrl_telemetry::Histogram>> = OnceLock::new();
        let queue_wait =
            QUEUE_WAIT.get_or_init(|| gcnrl_telemetry::global().histogram("service.queue_wait.ns"));
        let mut window = state.queue_waits.lock().expect("service queue-wait lock");
        for request in &round {
            let waited = request.submitted_at.elapsed();
            queue_wait.record_duration(waited);
            if window.len() >= QUEUE_WAIT_WINDOW {
                window.pop_front();
            }
            window.push_back(waited.as_nanos().min(u128::from(u64::MAX)) as u64);
        }
        drop(window);
        let mut sessions: Vec<u64> = round.iter().map(|r| r.session).collect();
        sessions.sort_unstable();
        sessions.dedup();
        ROUND_SESSIONS
            .get_or_init(|| gcnrl_telemetry::global().histogram("service.round.sessions"))
            .record(sessions.len() as u64);
        ROUND_CANDIDATES
            .get_or_init(|| gcnrl_telemetry::global().histogram("service.round.candidates"))
            .record(round.iter().map(|r| r.params.len() as u64).sum());
    }
    let mut mega: Vec<ParamVector> = Vec::with_capacity(round.iter().map(|r| r.params.len()).sum());
    for request in &round {
        mega.extend(request.params.iter().cloned());
    }
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        state.engine.evaluate_batch(&mega)
    }));
    let reports = match outcome {
        Ok(reports) => reports,
        Err(payload) => {
            // Fail every waiter of this round with the panic's own message
            // and keep serving later requests.
            let message = Arc::new(panic_message(payload.as_ref()));
            for request in round {
                let _ = request.reply.send(Err(Arc::clone(&message)));
                state.pending.fetch_sub(1, Ordering::Relaxed);
            }
            return;
        }
    };

    let shared_round = round.len() > 1
        && round
            .iter()
            .any(|request| request.session != round[0].session);
    let mut offset = 0usize;
    let mut sessions = state.sessions.lock().expect("service sessions lock");
    for request in round {
        let slice = reports[offset..offset + request.params.len()].to_vec();
        offset += request.params.len();
        if let Some(stats) = sessions.get_mut(&request.session) {
            stats.resolved += 1;
            stats.candidates += slice.len() as u64;
            if shared_round {
                stats.shared_rounds += 1;
            }
        }
        // A dropped waiter (abandoned session) is not an error.
        let _ = request.reply.send(Ok(slice));
        state.pending.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::testing::LatencyEvaluator;
    use crate::EvalBackend;
    use gcnrl_circuit::{benchmarks::Benchmark, ComponentParams, TechnologyNode};
    use std::time::Duration;

    fn latency_service(delay_ms: u64, cap: usize) -> EvalService {
        EvalService::new(
            BatchEvaluator::new(
                Box::new(LatencyEvaluator::new(Duration::from_millis(delay_ms))),
                EngineConfig::serial(),
            ),
            ServiceConfig::default().with_max_round_candidates(cap),
        )
    }

    fn pv(r: f64) -> ParamVector {
        ParamVector::new(vec![ComponentParams::Resistance(r)])
    }

    #[test]
    fn session_results_match_the_direct_engine_path() {
        let node = TechnologyNode::tsmc180();
        let engine_config = EngineConfig::serial();
        let direct =
            BatchEvaluator::for_benchmark(Benchmark::TwoStageTia, &node, engine_config.clone());
        let space = Benchmark::TwoStageTia.circuit().design_space(&node);
        let candidates: Vec<ParamVector> = (0..6)
            .map(|i| {
                let unit: Vec<f64> = (0..space.num_parameters())
                    .map(|j| ((i * 19 + j * 5) % 83) as f64 / 82.0)
                    .collect();
                space.from_unit(&unit)
            })
            .collect();
        let reference = direct.evaluate_batch(&candidates);

        let service = EvalService::for_benchmark(
            Benchmark::TwoStageTia,
            &node,
            engine_config,
            ServiceConfig::default(),
        );
        let session = service.session();
        assert_eq!(session.evaluate_batch(&candidates), reference);
        assert_eq!(EvalBackend::benchmark(&session), Benchmark::TwoStageTia);
        let stats = session.session_stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.resolved, 1);
        assert_eq!(stats.candidates, 6);
    }

    #[test]
    fn concurrent_identical_submissions_are_deduplicated_in_flight() {
        // 30ms latency: the first round occupies the dispatcher long enough
        // for both sessions' identical batches to queue up and coalesce into
        // one engine batch, where the duplicate candidates simulate once.
        let service = latency_service(30, 1024);
        let a = service.session_named("a");
        let b = service.session_named("b");
        let warmup = a.submit(vec![pv(1.0)]);
        std::thread::sleep(Duration::from_millis(5));
        let batch = vec![pv(10.0), pv(20.0), pv(30.0)];
        let pending_a = a.submit(batch.clone());
        let pending_b = b.submit(batch.clone());
        let _ = warmup.wait();
        let ra = pending_a.wait();
        let rb = pending_b.wait();
        assert_eq!(ra, rb);
        let stats = service.engine_stats();
        // 1 warm-up + 3 unique candidates simulated; the duplicated trio is
        // served as in-batch duplicates or cache hits, never re-simulated.
        assert_eq!(stats.simulated, 4);
        assert_eq!(stats.cache_hits, 3);
        let sa = a.session_stats();
        let sb = b.session_stats();
        assert_eq!(sa.candidates, 4);
        assert_eq!(sb.candidates, 3);
        assert!(sa.shared_rounds >= 1, "the trio round was multiplexed");
        assert!(sb.shared_rounds >= 1);
    }

    #[test]
    fn fair_rounds_do_not_let_a_deep_backlog_starve_a_light_session() {
        // Session A queues five two-candidate requests behind a slow first
        // round; session B queues one. The round cap (4 candidates) forces
        // one request per session per round, so B resolves in the first fair
        // round alongside A's oldest request instead of behind A's backlog.
        let service = latency_service(20, 4);
        let a = service.session_named("deep");
        let b = service.session_named("light");
        let first = a.submit(vec![pv(0.0)]);
        std::thread::sleep(Duration::from_millis(5));
        let deep: Vec<PendingBatch> = (0..5)
            .map(|i| a.submit(vec![pv(10.0 + i as f64), pv(20.0 + i as f64)]))
            .collect();
        let light = b.submit(vec![pv(99.0)]);
        let _ = first.wait();

        let order = Arc::new(Mutex::new(Vec::<String>::new()));
        let mut waiters = Vec::new();
        for (i, pending) in deep.into_iter().enumerate() {
            let order = Arc::clone(&order);
            waiters.push(std::thread::spawn(move || {
                let _ = pending.wait();
                order.lock().unwrap().push(format!("deep-{i}"));
            }));
        }
        {
            let order = Arc::clone(&order);
            waiters.push(std::thread::spawn(move || {
                let _ = light.wait();
                order.lock().unwrap().push("light".to_owned());
            }));
        }
        for waiter in waiters {
            waiter.join().expect("waiter thread");
        }
        let order = order.lock().unwrap().clone();
        let position = |label: &str| order.iter().position(|o| o == label).unwrap();
        // B rides the first fair round (possibly alongside deep-0/deep-1,
        // whose completions race with it inside that round); deep-2..4 can
        // only resolve in strictly later rounds.
        assert!(
            position("light") < position("deep-2"),
            "light session starved behind the deep backlog: {order:?}"
        );
        assert!(position("light") < position("deep-3"));
        assert!(position("light") < position("deep-4"));
    }

    #[test]
    fn weighted_sessions_take_a_larger_share_of_each_round() {
        // Two sessions with equal backlogs; the weight-3 one may place three
        // requests per sweep against the light session's one, so under a
        // 4-candidate round cap each fair round carries 3 heavy + 1 light.
        let heavy_requests =
            |round: &[Request], session: u64| round.iter().filter(|r| r.session == session).count();
        let mk = |session: u64, r: f64| {
            let (reply, _rx) = channel();
            Request {
                session,
                params: vec![pv(r)],
                reply,
                submitted_at: Instant::now(),
            }
        };
        let mut backlog: VecDeque<Request> = VecDeque::new();
        for i in 0..4 {
            backlog.push_back(mk(0, i as f64));
            backlog.push_back(mk(1, 100.0 + i as f64));
        }
        let weights: HashMap<u64, u64> = [(0, 3), (1, 1)].into_iter().collect();
        let round = next_round(&mut backlog, 4, &weights);
        assert_eq!(heavy_requests(&round, 0), 3);
        assert_eq!(heavy_requests(&round, 1), 1);
        // Unweighted sessions default to one request per sweep.
        let mut backlog: VecDeque<Request> = VecDeque::new();
        for i in 0..4 {
            backlog.push_back(mk(0, i as f64));
            backlog.push_back(mk(1, 100.0 + i as f64));
        }
        let round = next_round(&mut backlog, 4, &HashMap::new());
        assert_eq!(heavy_requests(&round, 0), 2);
        assert_eq!(heavy_requests(&round, 1), 2);
    }

    #[test]
    fn with_weight_is_recorded_and_results_are_unchanged() {
        let service = latency_service(0, 1024);
        let weighted = service.session_named("bulk").with_weight(4);
        let plain = service.session_named("light");
        assert_eq!(weighted.session_stats().weight, 4);
        assert_eq!(plain.session_stats().weight, 1);
        // Weight 0 clamps to 1.
        let clamped = service.session().with_weight(0);
        assert_eq!(clamped.session_stats().weight, 1);
        let batch = vec![pv(1.0), pv(2.0)];
        assert_eq!(
            weighted.evaluate_batch(&batch),
            plain.evaluate_batch(&batch)
        );
    }

    #[test]
    fn retiring_a_session_folds_its_stats_into_the_closed_aggregate() {
        let service = latency_service(0, 1024);
        let session = service.session_named("transient").with_weight(5);
        assert_eq!(session.evaluate_batch(&[pv(1.0)]).len(), 1);
        assert_eq!(
            service.shared.state.weights.lock().unwrap().len(),
            1,
            "weighted session must have a live weight entry"
        );
        assert_eq!(service.session_stats().len(), 1);
        assert_eq!(
            service.closed_session_stats(),
            ClosedSessionStats::default()
        );

        session.retire();
        assert!(
            service.shared.state.weights.lock().unwrap().is_empty(),
            "retire must prune the dispatcher's weight entry"
        );
        // The per-session entry is gone; its numbers live on in the
        // service-level aggregate.
        assert!(service.session_stats().is_empty());
        let closed = service.closed_session_stats();
        assert_eq!(closed.sessions, 1);
        assert_eq!(closed.submitted, 1);
        assert_eq!(closed.resolved, 1);
        assert_eq!(closed.candidates, 1);
        // A retired session that submits anyway still works (default share,
        // no per-session accounting).
        assert_eq!(session.evaluate_batch(&[pv(2.0)]).len(), 1);
        assert_eq!(service.closed_session_stats().candidates, 1);
        // Retire is idempotent: a second call folds nothing new.
        session.retire();
        assert_eq!(service.closed_session_stats().sessions, 1);
    }

    #[test]
    fn round_deadline_packs_concurrent_submissions_into_one_round() {
        let service = EvalService::new(
            BatchEvaluator::new(
                Box::new(LatencyEvaluator::new(Duration::ZERO)),
                EngineConfig::serial(),
            ),
            ServiceConfig::default().with_round_deadline(Duration::from_millis(150)),
        );
        let a = service.session_named("a");
        let b = service.session_named("b");
        // Without the deadline the dispatcher would run a's request alone the
        // moment it arrives; the window holds the round open long enough for
        // b's request (submitted well inside it) to join the same round.
        let pending_a = a.submit(vec![pv(1.0)]);
        std::thread::sleep(Duration::from_millis(20));
        let pending_b = b.submit(vec![pv(2.0)]);
        let _ = pending_a.wait();
        let _ = pending_b.wait();
        assert!(a.session_stats().shared_rounds >= 1, "round closed early");
        assert!(b.session_stats().shared_rounds >= 1);
        service.shutdown();
    }

    #[test]
    fn round_deadline_closes_early_once_the_cap_is_reached() {
        // A full backlog must not sit out the whole window: the cap (1
        // candidate) is reached immediately, so the round dispatches fast
        // even though the deadline is far away.
        let service = EvalService::new(
            BatchEvaluator::new(
                Box::new(LatencyEvaluator::new(Duration::ZERO)),
                EngineConfig::serial(),
            ),
            ServiceConfig::default()
                .with_max_round_candidates(1)
                .with_round_deadline(Duration::from_secs(30)),
        );
        let session = service.session();
        let start = std::time::Instant::now();
        assert_eq!(session.evaluate_batch(&[pv(1.0)]).len(), 1);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "deadline ignored the candidate cap"
        );
        service.shutdown();
    }

    #[test]
    fn shutdown_resolves_every_queued_request_and_rejects_new_ones() {
        let service = latency_service(10, 1024);
        let session = service.session();
        let pending: Vec<PendingBatch> =
            (0..3).map(|i| session.submit(vec![pv(i as f64)])).collect();
        service.shutdown();
        assert!(!service.is_open());
        for (i, p) in pending.into_iter().enumerate() {
            let reports = p.wait();
            assert_eq!(reports.len(), 1, "queued request {i} must resolve");
        }
        assert!(session.try_submit(vec![pv(7.0)]).is_err());
        assert_eq!(service.engine_stats().simulated, 3);
        // Shutdown is idempotent.
        service.shutdown();
    }

    #[test]
    fn evaluator_panics_fail_the_waiting_request_with_the_original_message() {
        struct Poisoned(LatencyEvaluator);
        impl gcnrl_sim::evaluators::Evaluator for Poisoned {
            fn benchmark(&self) -> Benchmark {
                self.0.benchmark()
            }
            fn technology(&self) -> &TechnologyNode {
                self.0.technology()
            }
            fn metric_specs(&self) -> &[gcnrl_sim::MetricSpec] {
                self.0.metric_specs()
            }
            fn evaluate(&self, params: &ParamVector) -> PerformanceReport {
                let flat = params.to_flat()[0];
                if flat == 666.0 || flat == 667.0 {
                    panic!("device R{flat:.0} out of saturation");
                }
                self.0.evaluate(params)
            }
        }
        let service = EvalService::new(
            BatchEvaluator::new(
                Box::new(Poisoned(LatencyEvaluator::new(Duration::ZERO))),
                EngineConfig::serial(),
            ),
            ServiceConfig::default(),
        );
        let session = service.session();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            session.evaluate_batch(&[pv(666.0)])
        }))
        .expect_err("the poisoned candidate must fail the request");
        let message = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            message.contains("R666"),
            "original panic must reach the waiter; got `{message}`"
        );
        // The service keeps serving healthy requests afterwards...
        assert_eq!(session.evaluate_batch(&[pv(1.0)]).len(), 1);
        // ...and a later failure reports its own message, not the first one.
        let second = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            session.evaluate_batch(&[pv(667.0)])
        }))
        .expect_err("the second poisoned candidate must fail too");
        let message = second.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            message.contains("R667"),
            "later failures must carry their own message; got `{message}`"
        );
    }

    #[test]
    fn empty_batches_resolve_without_touching_the_queue() {
        let service = latency_service(50, 1024);
        let session = service.session();
        assert!(session.evaluate_batch(&[]).is_empty());
        assert_eq!(session.session_stats().submitted, 0);
    }

    #[test]
    fn queue_wait_window_tracks_recent_dispatch_latency() {
        let service = latency_service(0, 1024);
        assert_eq!(
            service.queue_wait_p90(),
            None,
            "no samples before the first dispatch"
        );
        let session = service.session();
        session.evaluate_batch(&[pv(1.0)]);
        session.evaluate_batch(&[pv(2.0)]);
        let samples = service.queue_wait_samples();
        assert_eq!(samples.len(), 2);
        let p90 = service.queue_wait_p90().expect("samples recorded");
        assert_eq!(p90.as_nanos() as u64, *samples.iter().max().expect("max"));
        // The window is bounded: it slides rather than growing forever.
        for i in 0..(QUEUE_WAIT_WINDOW + 8) {
            session.evaluate_batch(&[pv(10.0 + i as f64)]);
        }
        assert_eq!(service.queue_wait_samples().len(), QUEUE_WAIT_WINDOW);
    }

    #[test]
    fn dropping_the_last_handle_shuts_the_dispatcher_down() {
        let service = latency_service(1, 1024);
        let session = service.session();
        drop(service);
        // The session keeps the service alive and usable...
        assert_eq!(session.evaluate_batch(&[pv(1.0)]).len(), 1);
        // ...and dropping it tears the dispatcher down (nothing to assert
        // beyond "this returns rather than hanging").
        drop(session);
    }
}
