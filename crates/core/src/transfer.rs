//! Knowledge transfer between technology nodes and topologies (paper Sec. III-E).
//!
//! Transfer works by saving the trained actor–critic weights as an
//! [`AgentCheckpoint`] and loading them into the designer for a new
//! environment.  Because the default state encoding uses a scalar component
//! index, the state dimension is the same for every circuit, so the same
//! checkpoint can warm-start a different technology node *or* a different
//! topology.

pub use crate::agent::AgentCheckpoint;
use crate::agent::AgentKind;
use crate::designer::GcnRlDesigner;
use crate::env::SizingEnv;
use crate::history::RunHistory;
use gcnrl_rl::DdpgConfig;
use std::path::Path;

/// Serialises a checkpoint to pretty-printed JSON on disk.
///
/// # Errors
///
/// Returns an I/O error if the file cannot be written, or a serialisation
/// error wrapped in `std::io::Error`.
pub fn save_checkpoint(ckpt: &AgentCheckpoint, path: &Path) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(ckpt)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(path, json)
}

/// Loads a checkpoint previously written by [`save_checkpoint`].
///
/// # Errors
///
/// Returns an I/O error if the file cannot be read or parsed.
pub fn load_checkpoint(path: &Path) -> std::io::Result<AgentCheckpoint> {
    let json = std::fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Trains an agent on `source_env`, then fine-tunes it on `target_env` with a
/// (typically much smaller) budget.  Returns the pre-training history, the
/// fine-tuning history and the checkpoint that was transferred.
///
/// This is the paper's experimental protocol for both Table IV (technology
/// transfer) and Table V (topology transfer); the caller picks the two
/// environments.
pub fn pretrain_and_transfer(
    source_env: SizingEnv,
    target_env: SizingEnv,
    kind: AgentKind,
    pretrain_config: DdpgConfig,
    finetune_config: DdpgConfig,
) -> (RunHistory, RunHistory, AgentCheckpoint) {
    let mut source = GcnRlDesigner::with_kind(source_env, pretrain_config, kind);
    let pretrain_history = source.run();
    let ckpt = source.agent().checkpoint();

    let mut target = GcnRlDesigner::with_kind(target_env, finetune_config, kind);
    target.agent_mut().load_checkpoint(&ckpt);
    let finetune_history = target.run();
    (pretrain_history, finetune_history, ckpt)
}

/// Fine-tunes from an existing checkpoint on `target_env` (used when the
/// pre-trained agent is loaded from disk).
pub fn transfer_from_checkpoint(
    ckpt: &AgentCheckpoint,
    target_env: SizingEnv,
    kind: AgentKind,
    finetune_config: DdpgConfig,
) -> RunHistory {
    let mut target = GcnRlDesigner::with_kind(target_env, finetune_config, kind);
    target.agent_mut().load_checkpoint(ckpt);
    target.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fom::FomConfig;
    use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};

    fn tiny() -> DdpgConfig {
        DdpgConfig {
            episodes: 16,
            warmup: 6,
            batch_size: 4,
            hidden_dim: 16,
            gcn_layers: 2,
            ..DdpgConfig::default()
        }
    }

    fn env(benchmark: Benchmark, node: &TechnologyNode) -> SizingEnv {
        let fom = FomConfig::calibrated(benchmark, node, 6, 0);
        SizingEnv::new(benchmark, node, fom)
    }

    #[test]
    fn checkpoint_round_trips_through_disk() {
        let node = TechnologyNode::tsmc180();
        let designer = GcnRlDesigner::new(env(Benchmark::TwoStageTia, &node), tiny());
        let ckpt = designer.agent().checkpoint();
        let dir = std::env::temp_dir().join("gcnrl_ckpt_test.json");
        save_checkpoint(&ckpt, &dir).expect("write checkpoint");
        let loaded = load_checkpoint(&dir).expect("read checkpoint");
        assert_eq!(loaded, ckpt);
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn technology_transfer_runs_end_to_end() {
        let n180 = TechnologyNode::tsmc180();
        let n45 = TechnologyNode::n45();
        let (pre, fine, ckpt) = pretrain_and_transfer(
            env(Benchmark::TwoStageTia, &n180),
            env(Benchmark::TwoStageTia, &n45),
            AgentKind::Gcn,
            tiny(),
            tiny(),
        );
        assert_eq!(pre.len(), 16);
        assert_eq!(fine.len(), 16);
        assert_eq!(ckpt.kind, AgentKind::Gcn);
    }

    #[test]
    fn topology_transfer_is_possible_with_scalar_states() {
        // Two-TIA and Three-TIA have different sizes; the scalar-index state
        // encoding keeps the agent architecture compatible.
        let node = TechnologyNode::tsmc180();
        let (_, fine, ckpt) = pretrain_and_transfer(
            env(Benchmark::TwoStageTia, &node),
            env(Benchmark::ThreeStageTia, &node),
            AgentKind::Gcn,
            tiny(),
            tiny(),
        );
        assert_eq!(fine.len(), 16);
        // And the checkpoint can be reused again directly.
        let again = transfer_from_checkpoint(
            &ckpt,
            env(Benchmark::ThreeStageTia, &node),
            AgentKind::Gcn,
            tiny(),
        );
        assert_eq!(again.len(), 16);
    }
}
