//! The optimisation loop (paper Algorithm 1).

use crate::agent::{AgentKind, GcnAgent};
use crate::env::SizingEnv;
use crate::history::RunHistory;
use gcnrl_linalg::Matrix;
use gcnrl_rl::{DdpgConfig, EmaBaseline, ExplorationNoise, ReplayBuffer};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The GCN-RL Circuit Designer: DDPG over the circuit graph.
///
/// # Examples
///
/// ```no_run
/// use gcnrl::{FomConfig, GcnRlDesigner, SizingEnv};
/// use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};
/// use gcnrl_rl::DdpgConfig;
///
/// let node = TechnologyNode::tsmc180();
/// let fom = FomConfig::calibrated(Benchmark::Ldo, &node, 100, 0);
/// let env = SizingEnv::new(Benchmark::Ldo, &node, fom);
/// let history = GcnRlDesigner::new(env, DdpgConfig::fast()).run();
/// assert!(history.best_fom().is_finite());
/// ```
pub struct GcnRlDesigner {
    env: SizingEnv,
    agent: GcnAgent,
    config: DdpgConfig,
    kind: AgentKind,
}

impl GcnRlDesigner {
    /// Creates a designer with a freshly initialised GCN agent.
    pub fn new(env: SizingEnv, config: DdpgConfig) -> Self {
        Self::with_kind(env, config, AgentKind::Gcn)
    }

    /// Creates a designer with the chosen agent variant (GCN-RL or the NG-RL
    /// ablation).
    pub fn with_kind(env: SizingEnv, config: DdpgConfig, kind: AgentKind) -> Self {
        let types = env.component_types();
        let agent = GcnAgent::new(
            kind,
            env.states().cols(),
            config.hidden_dim,
            config.gcn_layers,
            &types,
            config.actor_lr,
            config.critic_lr,
            config.seed,
        );
        GcnRlDesigner {
            env,
            agent,
            config,
            kind,
        }
    }

    /// The environment being optimised.
    pub fn env(&self) -> &SizingEnv {
        &self.env
    }

    /// The agent (e.g. to extract a checkpoint after training).
    pub fn agent(&self) -> &GcnAgent {
        &self.agent
    }

    /// Mutable access to the agent (e.g. to load a pre-trained checkpoint
    /// before running — the paper's knowledge-transfer setting).
    pub fn agent_mut(&mut self) -> &mut GcnAgent {
        &mut self.agent
    }

    /// The method name used in reports.
    pub fn method_name(&self) -> &'static str {
        match self.kind {
            AgentKind::Gcn => "GCN-RL",
            AgentKind::NonGcn => "NG-RL",
        }
    }

    /// Runs the full search (Algorithm 1) and returns the history.
    ///
    /// Exploration is a speculative batched rollout pipeline: every policy
    /// step proposes `config.rollout_k` correlated noisy action matrices
    /// (propose), scores them as **one** engine batch so the worker pool and
    /// result cache see the whole round at once (evaluate), then ingests all
    /// `k` transitions into the replay buffer and steps the actor/critic once
    /// against the best-of-`k` reward baseline (learn).  `episodes` counts
    /// simulations, so a `k = 4` run makes a quarter as many network updates
    /// at the same simulation budget — each round costs one parallel engine
    /// batch plus one network step, which is what makes the wall clock
    /// shrink with `k`.  With `rollout_k = 1` the pipeline is bit-identical
    /// to the classic serial trainer (pinned by the `serial_equivalence`
    /// regression test).
    ///
    /// When `config.rollout_k_max > rollout_k`, the round width additionally
    /// grows from `rollout_k` toward `rollout_k_max` as the exploration
    /// noise decays (see [`DdpgConfig::rollout_width_at`]): early training
    /// keeps narrow rounds (frequent updates while the policy is moving),
    /// late training widens the speculative batches when candidates cluster
    /// and the cache absorbs most of the extra evaluations. The simulation
    /// budget is unchanged — `episodes` still counts simulations.
    pub fn run(&mut self) -> RunHistory {
        self.run_observed(&mut |_| {})
    }

    /// Like [`GcnRlDesigner::run`], additionally invoking `observer` with the
    /// history after the warm-up phase and after every exploration round.
    /// Benchmarks use this to measure time-to-quality without the history
    /// itself carrying timestamps (which would break bit-exact comparisons).
    pub fn run_observed(&mut self, observer: &mut dyn FnMut(&RunHistory)) -> RunHistory {
        let mut history = RunHistory::new(self.method_name());
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut noise = ExplorationNoise::new(
            self.config.noise_sigma,
            self.config.noise_decay,
            self.config.seed ^ 0x5eed,
        );
        let mut baseline = EmaBaseline::new(self.config.baseline_decay);
        let mut replay: ReplayBuffer<Matrix> = ReplayBuffer::new(self.config.replay_capacity);

        let states = self.env.states().clone();
        let adjacency = self.env.adjacency().clone();

        // (1) Warm-up: the random action matrices are independent of the
        // policy (no network update happens before `warmup`), so they are
        // drawn up front and evaluated as one batch through the execution
        // engine — in parallel when it has worker threads. The RNG draw
        // order, replay contents and history are identical to the serial
        // episode-by-episode loop because evaluation is pure.
        let warmup = self.config.warmup.min(self.config.episodes);
        let warmup_actions: Vec<Matrix> = (0..warmup)
            .map(|_| self.env.random_actions(&mut rng))
            .collect();
        let warmup_rollouts = self.env.rollout_actions(warmup_actions);
        for r in warmup_rollouts.iter() {
            history.record(r.reward, &r.outcome.params, &r.outcome.report);
            baseline.update(r.reward);
        }
        replay.ingest(&warmup_rollouts);
        observer(&history);

        // (2) Exploration rounds: propose → evaluate → learn.
        let rho = self.config.rollout_rho.clamp(0.0, 1.0);
        let mut episode = warmup;
        while episode < self.config.episodes {
            // Adaptive widening: early rounds stay at `rollout_k` (every
            // network update still sees high-entropy feedback); as the noise
            // decays toward exploitation the width grows toward
            // `rollout_k_max`, trading update count for batch throughput
            // exactly when the candidates cluster and cache/dedup absorb
            // most of the extra cost. `rollout_k_max = 0` (default) keeps
            // the width fixed, which the serial-equivalence test pins.
            let width = self
                .config
                .rollout_width_at(noise.decay_progress())
                .min(self.config.episodes - episode);

            // Propose: one policy action, `width` correlated perturbations.
            let (base, proposals): (Matrix, Vec<Matrix>) = {
                let _propose = gcnrl_telemetry::span!("train.propose.ns", width = width);
                let base = self.agent.act(&states, &adjacency);
                let entries = base.rows() * base.cols();
                let proposals = noise
                    .sample_correlated(width, entries, rho)
                    .into_iter()
                    .map(|perturbation| {
                        let mut actions = base.clone();
                        for (v, n) in actions.as_mut_slice().iter_mut().zip(perturbation) {
                            *v = (*v + n).clamp(-1.0, 1.0);
                        }
                        actions
                    })
                    .collect();
                (base, proposals)
            };
            noise.decay_step();

            // Evaluate: the whole round is one engine batch (parallel fan-out
            // plus cache dedup of near-quantized repeat candidates). With
            // grouped rollouts the unperturbed policy action anchors a shared
            // base factorisation inside the solver.
            let rollouts = {
                let _evaluate = gcnrl_telemetry::span!("train.evaluate.ns", width = width);
                if self.config.grouped_rollouts {
                    self.env.rollout_actions_with_base(&base, proposals)
                } else {
                    self.env.rollout_actions(proposals)
                }
            };

            // Learn: every candidate enters the history and the replay
            // buffer wholesale; the EMA baseline advances on the best-of-`k`
            // reward and the actor/critic step once per round (for `k = 1`
            // both are exactly the serial trainer's update).  One update per
            // *round* rather than per simulation is what makes the wall
            // clock shrink with `k`: a round costs one parallel engine batch
            // plus one network step.
            let _learn = gcnrl_telemetry::span!("train.learn.ns", width = width);
            for r in rollouts.iter() {
                history.record(r.reward, &r.outcome.params, &r.outcome.report);
            }
            replay.ingest(&rollouts);
            let best = rollouts.best().expect("non-empty rollout round");
            baseline.update(best.reward);

            let step_seed = self.config.seed ^ (history.len() as u64 - 1);
            // Uniform sampling is the default (and the serial-equivalence
            // pin); the prioritized path replays high-priority rollouts
            // (rank-weighted) recorded by the pipeline.
            let sampled = if self.config.prioritized_replay {
                replay.sample_prioritized(self.config.batch_size, step_seed)
            } else {
                replay.sample(self.config.batch_size, step_seed)
            };
            let batch: Vec<(Matrix, f64)> =
                sampled.into_iter().map(|(a, r)| (a.clone(), r)).collect();
            self.agent
                .critic_update(&states, &adjacency, &batch, baseline.value());
            self.agent.actor_update(&states, &adjacency);
            drop(_learn);
            episode += width;
            observer(&history);
        }
        history
    }

    /// Runs the greedy policy once (no exploration) and returns its outcome.
    pub fn evaluate_policy(&self) -> crate::env::StepOutcome {
        let actions = self.agent.act(self.env.states(), self.env.adjacency());
        self.env.evaluate_actions(&actions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fom::FomConfig;
    use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};

    fn tiny_config() -> DdpgConfig {
        DdpgConfig {
            episodes: 30,
            warmup: 10,
            batch_size: 8,
            hidden_dim: 16,
            gcn_layers: 2,
            ..DdpgConfig::default()
        }
    }

    #[test]
    fn designer_runs_and_records_every_episode() {
        let node = TechnologyNode::tsmc180();
        let fom = FomConfig::calibrated(Benchmark::TwoStageTia, &node, 8, 0);
        let env = SizingEnv::new(Benchmark::TwoStageTia, &node, fom);
        let mut designer = GcnRlDesigner::new(env, tiny_config());
        let history = designer.run();
        assert_eq!(history.len(), 30);
        assert!(history.best_fom().is_finite());
        assert_eq!(history.method, "GCN-RL");
        assert!(history.best_params.is_some());
        // The policy can be evaluated greedily after training.
        let outcome = designer.evaluate_policy();
        assert!(outcome.fom.is_finite());
    }

    #[test]
    fn ng_rl_variant_is_labelled_and_runs() {
        let node = TechnologyNode::tsmc180();
        let fom = FomConfig::calibrated(Benchmark::Ldo, &node, 8, 0);
        let env = SizingEnv::new(Benchmark::Ldo, &node, fom);
        let mut designer = GcnRlDesigner::with_kind(env, tiny_config(), AgentKind::NonGcn);
        let history = designer.run();
        assert_eq!(history.method, "NG-RL");
        assert_eq!(history.len(), 30);
    }

    #[test]
    fn batched_rollouts_spend_the_same_simulation_budget() {
        let node = TechnologyNode::tsmc180();
        let fom = FomConfig::calibrated(Benchmark::TwoStageTia, &node, 8, 0);
        for k in [4usize, 7] {
            let env = SizingEnv::new(Benchmark::TwoStageTia, &node, fom.clone());
            let cfg = tiny_config().with_rollout_k(k);
            let mut designer = GcnRlDesigner::new(env, cfg);
            let history = designer.run();
            // 30 episodes = 30 simulations regardless of the rollout width
            // (the last round is truncated when k does not divide the budget).
            assert_eq!(history.len(), 30, "k={k}");
            assert!(history.best_fom().is_finite());
            assert!(history.best_curve().windows(2).all(|w| w[1] >= w[0]));
        }
    }

    #[test]
    fn batched_run_is_deterministic_per_seed() {
        let node = TechnologyNode::tsmc180();
        let fom = FomConfig::calibrated(Benchmark::TwoStageTia, &node, 8, 0);
        let run = |seed| {
            let env = SizingEnv::new(Benchmark::TwoStageTia, &node, fom.clone());
            let cfg = tiny_config().with_seed(seed).with_rollout_k(4);
            GcnRlDesigner::new(env, cfg).run()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3).best_curve(), run(4).best_curve());
    }

    #[test]
    fn adaptive_rollout_widens_rounds_as_noise_decays_on_the_same_budget() {
        let node = TechnologyNode::tsmc180();
        let fom = FomConfig::calibrated(Benchmark::TwoStageTia, &node, 8, 0);
        let env = SizingEnv::new(Benchmark::TwoStageTia, &node, fom);
        // Fast decay (0.5/round) so the widening is visible in a short run:
        // widths go 2, then 2 + floor(4 * (1 - 0.5^r)) per round.
        let cfg = DdpgConfig {
            noise_decay: 0.5,
            ..tiny_config()
        }
        .with_budget(40, 4)
        .with_rollout_k(2)
        .with_adaptive_rollout(6);
        let mut designer = GcnRlDesigner::new(env, cfg);
        let mut lengths = Vec::new();
        let history = designer.run_observed(&mut |h| lengths.push(h.len()));
        let widths: Vec<usize> = lengths.windows(2).map(|w| w[1] - w[0]).collect();
        // Budget is exact: 4 warm-up + exploration rounds summing to 36.
        assert_eq!(history.len(), 40);
        assert_eq!(lengths[0], 4);
        assert_eq!(widths.iter().sum::<usize>(), 36);
        // The first exploration round runs at rollout_k, later rounds widen
        // monotonically toward the ceiling.
        assert_eq!(widths[0], 2);
        assert!(widths.windows(2).all(|w| w[1] >= w[0]), "widths {widths:?}");
        assert!(
            *widths.iter().max().unwrap() >= 5,
            "rounds never widened: {widths:?}"
        );
    }

    #[test]
    fn observer_sees_warmup_plus_one_call_per_round() {
        let node = TechnologyNode::tsmc180();
        let fom = FomConfig::calibrated(Benchmark::TwoStageTia, &node, 8, 0);
        let env = SizingEnv::new(Benchmark::TwoStageTia, &node, fom);
        let cfg = tiny_config().with_rollout_k(5);
        let mut designer = GcnRlDesigner::new(env, cfg);
        let mut lengths = Vec::new();
        let history = designer.run_observed(&mut |h| lengths.push(h.len()));
        // Warm-up (10 sims) then 20 exploration sims in rounds of 5.
        assert_eq!(lengths, vec![10, 15, 20, 25, 30]);
        assert_eq!(history.len(), 30);
    }

    #[test]
    fn prioritized_replay_runs_deterministically_and_differs_from_uniform() {
        let node = TechnologyNode::tsmc180();
        let fom = FomConfig::calibrated(Benchmark::TwoStageTia, &node, 8, 0);
        let run = |prioritized: bool| {
            let env = SizingEnv::new(Benchmark::TwoStageTia, &node, fom.clone());
            let mut cfg = tiny_config().with_rollout_k(3);
            if prioritized {
                cfg = cfg.with_prioritized_replay();
            }
            GcnRlDesigner::new(env, cfg).run()
        };
        let prioritized = run(true);
        assert_eq!(prioritized.len(), 30);
        assert!(prioritized.best_fom().is_finite());
        assert_eq!(prioritized, run(true), "prioritized runs must be seeded");
        // The sampling scheme changes the mini-batches, hence the policy
        // trajectory (identical trajectories would mean the flag is dead).
        assert_ne!(prioritized.best_curve(), run(false).best_curve());
    }

    #[test]
    fn same_seed_reproduces_the_same_run() {
        let node = TechnologyNode::tsmc180();
        let fom = FomConfig::calibrated(Benchmark::TwoStageTia, &node, 8, 0);
        let run = |seed| {
            let env = SizingEnv::new(Benchmark::TwoStageTia, &node, fom.clone());
            let cfg = DdpgConfig {
                seed,
                ..tiny_config()
            };
            GcnRlDesigner::new(env, cfg).run().best_curve()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
