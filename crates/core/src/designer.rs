//! The optimisation loop (paper Algorithm 1).

use crate::agent::{AgentKind, GcnAgent};
use crate::env::SizingEnv;
use crate::history::RunHistory;
use gcnrl_linalg::Matrix;
use gcnrl_rl::{DdpgConfig, EmaBaseline, ExplorationNoise, ReplayBuffer};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The GCN-RL Circuit Designer: DDPG over the circuit graph.
///
/// # Examples
///
/// ```no_run
/// use gcnrl::{FomConfig, GcnRlDesigner, SizingEnv};
/// use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};
/// use gcnrl_rl::DdpgConfig;
///
/// let node = TechnologyNode::tsmc180();
/// let fom = FomConfig::calibrated(Benchmark::Ldo, &node, 100, 0);
/// let env = SizingEnv::new(Benchmark::Ldo, &node, fom);
/// let history = GcnRlDesigner::new(env, DdpgConfig::fast()).run();
/// assert!(history.best_fom().is_finite());
/// ```
pub struct GcnRlDesigner {
    env: SizingEnv,
    agent: GcnAgent,
    config: DdpgConfig,
    kind: AgentKind,
}

impl GcnRlDesigner {
    /// Creates a designer with a freshly initialised GCN agent.
    pub fn new(env: SizingEnv, config: DdpgConfig) -> Self {
        Self::with_kind(env, config, AgentKind::Gcn)
    }

    /// Creates a designer with the chosen agent variant (GCN-RL or the NG-RL
    /// ablation).
    pub fn with_kind(env: SizingEnv, config: DdpgConfig, kind: AgentKind) -> Self {
        let types = env.component_types();
        let agent = GcnAgent::new(
            kind,
            env.states().cols(),
            config.hidden_dim,
            config.gcn_layers,
            &types,
            config.actor_lr,
            config.critic_lr,
            config.seed,
        );
        GcnRlDesigner {
            env,
            agent,
            config,
            kind,
        }
    }

    /// The environment being optimised.
    pub fn env(&self) -> &SizingEnv {
        &self.env
    }

    /// The agent (e.g. to extract a checkpoint after training).
    pub fn agent(&self) -> &GcnAgent {
        &self.agent
    }

    /// Mutable access to the agent (e.g. to load a pre-trained checkpoint
    /// before running — the paper's knowledge-transfer setting).
    pub fn agent_mut(&mut self) -> &mut GcnAgent {
        &mut self.agent
    }

    /// The method name used in reports.
    pub fn method_name(&self) -> &'static str {
        match self.kind {
            AgentKind::Gcn => "GCN-RL",
            AgentKind::NonGcn => "NG-RL",
        }
    }

    /// Runs the full search (Algorithm 1) and returns the history.
    pub fn run(&mut self) -> RunHistory {
        let mut history = RunHistory::new(self.method_name());
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut noise = ExplorationNoise::new(
            self.config.noise_sigma,
            self.config.noise_decay,
            self.config.seed ^ 0x5eed,
        );
        let mut baseline = EmaBaseline::new(self.config.baseline_decay);
        let mut replay: ReplayBuffer<Matrix> = ReplayBuffer::new(self.config.replay_capacity);

        let states = self.env.states().clone();
        let adjacency = self.env.adjacency().clone();

        // (1) Warm-up: the random action matrices are independent of the
        // policy (no network update happens before `warmup`), so they are
        // drawn up front and evaluated as one batch through the execution
        // engine — in parallel when it has worker threads. The RNG draw
        // order, replay contents and history are identical to the serial
        // episode-by-episode loop because evaluation is pure.
        let warmup = self.config.warmup.min(self.config.episodes);
        let warmup_actions: Vec<Matrix> = (0..warmup)
            .map(|_| self.env.random_actions(&mut rng))
            .collect();
        let warmup_outcomes = self.env.evaluate_actions_batch(&warmup_actions);
        for (actions, outcome) in warmup_actions.into_iter().zip(warmup_outcomes) {
            history.record(outcome.fom, &outcome.params, &outcome.report);
            replay.push(actions, outcome.fom);
            baseline.update(outcome.fom);
        }

        // (2) Exploration episodes: each action depends on the networks
        // updated from the previous step, so this phase is inherently serial
        // (it still benefits from the engine's result cache).
        for episode in warmup..self.config.episodes {
            let mut actions = self.agent.act(&states, &adjacency);
            for v in actions.as_mut_slice() {
                *v = (*v + noise.sample()).clamp(-1.0, 1.0);
            }
            noise.decay_step();

            let outcome = self.env.evaluate_actions(&actions);
            history.record(outcome.fom, &outcome.params, &outcome.report);

            replay.push(actions, outcome.fom);
            baseline.update(outcome.fom);
            let batch: Vec<(Matrix, f64)> = replay
                .sample(self.config.batch_size, self.config.seed ^ episode as u64)
                .into_iter()
                .map(|(a, r)| (a.clone(), r))
                .collect();
            self.agent
                .critic_update(&states, &adjacency, &batch, baseline.value());
            self.agent.actor_update(&states, &adjacency);
        }
        history
    }

    /// Runs the greedy policy once (no exploration) and returns its outcome.
    pub fn evaluate_policy(&self) -> crate::env::StepOutcome {
        let actions = self.agent.act(self.env.states(), self.env.adjacency());
        self.env.evaluate_actions(&actions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fom::FomConfig;
    use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};

    fn tiny_config() -> DdpgConfig {
        DdpgConfig {
            episodes: 30,
            warmup: 10,
            batch_size: 8,
            hidden_dim: 16,
            gcn_layers: 2,
            ..DdpgConfig::default()
        }
    }

    #[test]
    fn designer_runs_and_records_every_episode() {
        let node = TechnologyNode::tsmc180();
        let fom = FomConfig::calibrated(Benchmark::TwoStageTia, &node, 8, 0);
        let env = SizingEnv::new(Benchmark::TwoStageTia, &node, fom);
        let mut designer = GcnRlDesigner::new(env, tiny_config());
        let history = designer.run();
        assert_eq!(history.len(), 30);
        assert!(history.best_fom().is_finite());
        assert_eq!(history.method, "GCN-RL");
        assert!(history.best_params.is_some());
        // The policy can be evaluated greedily after training.
        let outcome = designer.evaluate_policy();
        assert!(outcome.fom.is_finite());
    }

    #[test]
    fn ng_rl_variant_is_labelled_and_runs() {
        let node = TechnologyNode::tsmc180();
        let fom = FomConfig::calibrated(Benchmark::Ldo, &node, 8, 0);
        let env = SizingEnv::new(Benchmark::Ldo, &node, fom);
        let mut designer = GcnRlDesigner::with_kind(env, tiny_config(), AgentKind::NonGcn);
        let history = designer.run();
        assert_eq!(history.method, "NG-RL");
        assert_eq!(history.len(), 30);
    }

    #[test]
    fn same_seed_reproduces_the_same_run() {
        let node = TechnologyNode::tsmc180();
        let fom = FomConfig::calibrated(Benchmark::TwoStageTia, &node, 8, 0);
        let run = |seed| {
            let env = SizingEnv::new(Benchmark::TwoStageTia, &node, fom.clone());
            let cfg = DdpgConfig {
                seed,
                ..tiny_config()
            };
            GcnRlDesigner::new(env, cfg).run().best_curve()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
