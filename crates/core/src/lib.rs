//! # GCN-RL Circuit Designer
//!
//! A Rust reproduction of *"GCN-RL Circuit Designer: Transferable Transistor
//! Sizing with Graph Neural Networks and Reinforcement Learning"* (Wang et
//! al., DAC 2020).
//!
//! The library sizes the devices of a fixed analog topology by running a
//! DDPG actor–critic agent whose networks are graph convolutional networks
//! over the circuit topology graph.  Because the agent's knowledge lives in
//! the GCN weights rather than in a fixed-dimensional black-box model, it can
//! be transferred across technology nodes and even across topologies.
//!
//! * [`FomConfig`] — the figure of merit (paper Eq. 2): a weighted sum of
//!   normalised performance metrics with optional bounds and specs.
//! * [`SizingEnv`] — the environment: state encoding (Sec. III-C), action
//!   denormalisation and refinement, simulation, and reward computation.
//! * [`GcnAgent`] — the GCN actor–critic (Fig. 3) with the non-GCN ablation.
//! * [`GcnRlDesigner`] — the optimisation loop (Algorithm 1).
//! * [`transfer`] — saving/loading agent checkpoints and fine-tuning them on
//!   other technology nodes or topologies.
//!
//! # Examples
//!
//! ```no_run
//! use gcnrl::{FomConfig, GcnRlDesigner, SizingEnv};
//! use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};
//! use gcnrl_rl::DdpgConfig;
//!
//! let node = TechnologyNode::tsmc180();
//! let fom = FomConfig::calibrated(Benchmark::TwoStageTia, &node, 200, 0);
//! let env = SizingEnv::new(Benchmark::TwoStageTia, &node, fom);
//! let mut designer = GcnRlDesigner::new(env, DdpgConfig::fast());
//! let history = designer.run();
//! println!("best FoM = {:.3}", history.best_fom());
//! ```

mod agent;
mod designer;
mod env;
mod fom;
mod history;
mod state;

pub mod transfer;

/// The evaluation engine every simulation request is routed through
/// (re-exported so callers can configure threads/cache — or open sessions on
/// a shared [`EvalService`] — without a direct `gcnrl-exec` dependency).
pub use gcnrl_exec::{
    BatchEvaluator, EngineConfig, EvalBackend, EvalService, ExecStats, ServiceConfig,
    SessionHandle, SessionStats,
};

pub use agent::{AgentKind, GcnAgent};
pub use designer::GcnRlDesigner;
pub use env::{SizingEnv, StepOutcome};
pub use fom::{FomConfig, MetricFom, SpecConstraint};
pub use history::{RunHistory, StepRecord};
pub use state::{state_matrix, StateEncoding};
