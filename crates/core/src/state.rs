//! Per-component state vectors (paper Sec. III-C).
//!
//! For a circuit with `n` components the state of component `k` is
//! `s_k = (k, t, h)` where `k` is the component index (one-hot, or a scalar
//! when transferring between topologies of different sizes), `t` is the
//! one-hot component type (NMOS / PMOS / R / C), and `h` is the technology
//! model feature vector (`Vsat, Vth0, Vfb, µ0, Uc`; zeros for passives).
//! Every column is normalised to zero mean / unit variance across components.

use gcnrl_circuit::{Circuit, ComponentKind, MosPolarity, TechnologyNode};
use gcnrl_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// How the component index is embedded in the state vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StateEncoding {
    /// One-hot index of length `n` (the paper's default for single-circuit
    /// optimisation).  The state dimension then depends on the circuit size.
    OneHotIndex,
    /// A single scalar index (the paper's modification for knowledge transfer
    /// between topologies, which keeps the state dimension fixed).
    ScalarIndex,
}

impl StateEncoding {
    /// Dimension of the state vector this encoding produces for a circuit
    /// with `num_components` components.
    pub fn state_dim(self, num_components: usize) -> usize {
        let index_dims = match self {
            StateEncoding::OneHotIndex => num_components,
            StateEncoding::ScalarIndex => 1,
        };
        index_dims + ComponentKind::ALL.len() + 5
    }
}

/// Builds the `n x d` state matrix of a circuit under a technology node.
///
/// Rows follow component-id order; columns are normalised to zero mean and
/// unit variance across components (constant columns are left at zero).
pub fn state_matrix(circuit: &Circuit, node: &TechnologyNode, encoding: StateEncoding) -> Matrix {
    let n = circuit.num_components();
    let d = encoding.state_dim(n);
    let mut m = Matrix::zeros(n, d);

    for (i, comp) in circuit.components().iter().enumerate() {
        let mut col = match encoding {
            StateEncoding::OneHotIndex => {
                m[(i, i)] = 1.0;
                n
            }
            StateEncoding::ScalarIndex => {
                m[(i, 0)] = i as f64;
                1
            }
        };
        m[(i, col + comp.kind.type_index())] = 1.0;
        col += ComponentKind::ALL.len();
        let features = match comp.kind {
            ComponentKind::Nmos => node.mos(MosPolarity::Nmos).state_features(),
            ComponentKind::Pmos => node.mos(MosPolarity::Pmos).state_features(),
            ComponentKind::Resistor | ComponentKind::Capacitor => [0.0; 5],
        };
        for (j, f) in features.iter().enumerate() {
            m[(i, col + j)] = *f;
        }
    }

    normalize_columns(&m)
}

/// Normalises each column to zero mean and unit variance across rows.
fn normalize_columns(m: &Matrix) -> Matrix {
    let (rows, cols) = m.shape();
    let mut out = m.clone();
    for c in 0..cols {
        let mean: f64 = (0..rows).map(|r| m[(r, c)]).sum::<f64>() / rows as f64;
        let var: f64 = (0..rows).map(|r| (m[(r, c)] - mean).powi(2)).sum::<f64>() / rows as f64;
        let std = var.sqrt();
        for r in 0..rows {
            out[(r, c)] = if std > 1e-12 {
                (m[(r, c)] - mean) / std
            } else {
                0.0
            };
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnrl_circuit::benchmarks;

    #[test]
    fn dimensions_follow_encoding() {
        let c = benchmarks::two_stage_tia();
        let node = TechnologyNode::tsmc180();
        let one_hot = state_matrix(&c, &node, StateEncoding::OneHotIndex);
        assert_eq!(one_hot.shape(), (9, 9 + 4 + 5));
        let scalar = state_matrix(&c, &node, StateEncoding::ScalarIndex);
        assert_eq!(scalar.shape(), (9, 1 + 4 + 5));
        assert_eq!(StateEncoding::ScalarIndex.state_dim(17), 10);
    }

    #[test]
    fn scalar_encoding_dimension_is_topology_independent() {
        let node = TechnologyNode::tsmc180();
        let a = state_matrix(
            &benchmarks::two_stage_tia(),
            &node,
            StateEncoding::ScalarIndex,
        );
        let b = state_matrix(
            &benchmarks::three_stage_tia(),
            &node,
            StateEncoding::ScalarIndex,
        );
        assert_eq!(a.cols(), b.cols());
        assert_ne!(a.rows(), b.rows());
    }

    #[test]
    fn columns_are_normalised() {
        let c = benchmarks::low_dropout_regulator();
        let node = TechnologyNode::n65();
        let m = state_matrix(&c, &node, StateEncoding::ScalarIndex);
        for col in 0..m.cols() {
            let vals: Vec<f64> = (0..m.rows()).map(|r| m[(r, col)]).collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            assert!(mean.abs() < 1e-9, "column {col} mean {mean}");
            let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
            assert!(var < 1.0 + 1e-9);
        }
    }

    #[test]
    fn different_nodes_produce_different_states() {
        let c = benchmarks::two_stage_tia();
        let a = state_matrix(&c, &TechnologyNode::tsmc180(), StateEncoding::ScalarIndex);
        let b = state_matrix(&c, &TechnologyNode::n45(), StateEncoding::ScalarIndex);
        assert_ne!(a, b);
    }
}
