//! The sizing environment: state, actions, refinement, simulation, reward.

use crate::fom::FomConfig;
use crate::state::{state_matrix, StateEncoding};
use gcnrl_circuit::{
    benchmarks::Benchmark, Circuit, DesignSpace, ParamVector, Refiner, TechnologyNode,
};
use gcnrl_exec::{BatchEvaluator, EngineConfig, EvalBackend, ExecStats};
use gcnrl_linalg::Matrix;
use gcnrl_rl::RolloutBatch;
use gcnrl_sim::evaluators::{evaluator_for, Evaluator};
use gcnrl_sim::PerformanceReport;
use rand::Rng;

/// The result of evaluating one candidate design.
#[derive(Debug, Clone, PartialEq)]
pub struct StepOutcome {
    /// The refined, legal sizing that was simulated.
    pub params: ParamVector,
    /// The simulated performance metrics.
    pub report: PerformanceReport,
    /// The figure of merit (the RL reward).
    pub fom: f64,
}

/// One optimisation environment: a benchmark circuit in a technology node
/// with a FoM definition (paper Fig. 2, steps 1-2 and 4-6).
///
/// All simulation goes through an [`EvalBackend`] from `gcnrl-exec` — a
/// privately owned [`BatchEvaluator`] (the classic setup) or a
/// [`SessionHandle`](gcnrl_exec::SessionHandle) of a shared
/// [`EvalService`](gcnrl_exec::EvalService), where many environments
/// multiplex onto one engine + cache. Either way, repeated candidates are
/// served from the content-addressed cache and
/// [`SizingEnv::evaluate_batch`] fans candidates across the engine's worker
/// pool; results are bit-identical for every backend.
pub struct SizingEnv {
    benchmark: Benchmark,
    circuit: Circuit,
    node: TechnologyNode,
    space: DesignSpace,
    refiner: Refiner,
    engine: Box<dyn EvalBackend>,
    fom: FomConfig,
    encoding: StateEncoding,
    adjacency: Matrix,
    states: Matrix,
}

impl SizingEnv {
    /// Creates the environment with the default (transfer-friendly) scalar
    /// index state encoding. The evaluation engine is configured from the
    /// environment ([`EngineConfig::from_env`]: `GCNRL_THREADS`,
    /// `GCNRL_CACHE_CAP`, `GCNRL_CACHE_PATH`).
    pub fn new(benchmark: Benchmark, node: &TechnologyNode, fom: FomConfig) -> Self {
        Self::with_encoding(benchmark, node, fom, StateEncoding::ScalarIndex)
    }

    /// Creates the environment with an explicit state encoding.
    pub fn with_encoding(
        benchmark: Benchmark,
        node: &TechnologyNode,
        fom: FomConfig,
        encoding: StateEncoding,
    ) -> Self {
        Self::with_engine_config(benchmark, node, fom, encoding, EngineConfig::from_env())
    }

    /// Creates the environment with an explicit evaluation-engine
    /// configuration (thread count, cache capacity, persistence).
    pub fn with_engine_config(
        benchmark: Benchmark,
        node: &TechnologyNode,
        fom: FomConfig,
        encoding: StateEncoding,
        engine_config: EngineConfig,
    ) -> Self {
        Self::with_custom_evaluator(
            benchmark,
            node,
            fom,
            encoding,
            engine_config,
            evaluator_for(benchmark, node),
        )
    }

    /// Creates the environment around a caller-supplied evaluator (e.g. an
    /// instrumented or latency-injecting wrapper in benchmarks). The
    /// evaluator should model the same benchmark/technology pair it is
    /// registered under, since both end up in the engine's cache keys.
    pub fn with_custom_evaluator(
        benchmark: Benchmark,
        node: &TechnologyNode,
        fom: FomConfig,
        encoding: StateEncoding,
        engine_config: EngineConfig,
        evaluator: Box<dyn Evaluator>,
    ) -> Self {
        Self::with_backend(
            benchmark,
            node,
            fom,
            encoding,
            Box::new(BatchEvaluator::new(evaluator, engine_config)),
        )
    }

    /// Creates the environment over an existing evaluation backend: an owned
    /// engine, or a [`SessionHandle`](gcnrl_exec::SessionHandle) so this
    /// environment shares an [`EvalService`](gcnrl_exec::EvalService)'s
    /// engine + cache with other concurrent sessions. The backend must model
    /// the same benchmark/technology pair as the environment.
    pub fn with_backend(
        benchmark: Benchmark,
        node: &TechnologyNode,
        fom: FomConfig,
        encoding: StateEncoding,
        backend: Box<dyn EvalBackend>,
    ) -> Self {
        assert_eq!(
            backend.benchmark(),
            benchmark,
            "evaluation backend models a different benchmark"
        );
        let circuit = benchmark.circuit();
        let space = circuit.design_space(node);
        let refiner = Refiner::new(&circuit);
        let adjacency = circuit.topology_graph().normalized_adjacency();
        let states = state_matrix(&circuit, node, encoding);
        SizingEnv {
            benchmark,
            circuit,
            node: node.clone(),
            space,
            refiner,
            engine: backend,
            fom,
            encoding,
            adjacency,
            states,
        }
    }

    /// The benchmark being sized.
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// The circuit netlist.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The technology node.
    pub fn technology(&self) -> &TechnologyNode {
        &self.node
    }

    /// The design space.
    pub fn design_space(&self) -> &DesignSpace {
        &self.space
    }

    /// The FoM configuration.
    pub fn fom_config(&self) -> &FomConfig {
        &self.fom
    }

    /// The state encoding in use.
    pub fn encoding(&self) -> StateEncoding {
        self.encoding
    }

    /// Number of components (graph vertices / action rows).
    pub fn num_components(&self) -> usize {
        self.circuit.num_components()
    }

    /// Per-component one-hot type indices (0..=3), used by the per-type
    /// encoder/decoder layers of the agent.
    pub fn component_types(&self) -> Vec<usize> {
        self.circuit
            .components()
            .iter()
            .map(|c| c.kind.type_index())
            .collect()
    }

    /// The `n x d` state matrix (constant within one environment).
    pub fn states(&self) -> &Matrix {
        &self.states
    }

    /// The normalised adjacency `D̃^-1/2 (A+I) D̃^-1/2` of the topology graph.
    pub fn adjacency(&self) -> &Matrix {
        &self.adjacency
    }

    /// Width of the per-component action vector (3: W, L, M; passives use the
    /// first entry only).
    pub fn action_dim(&self) -> usize {
        3
    }

    /// Converts an `n x 3` action matrix (entries in `[-1, 1]`) into a legal
    /// sizing: denormalisation, matching-group refinement, grid rounding.
    pub fn actions_to_params(&self, actions: &Matrix) -> ParamVector {
        assert_eq!(
            actions.rows(),
            self.num_components(),
            "one action row per component"
        );
        let per_component: Vec<Vec<f64>> = (0..actions.rows())
            .map(|r| actions.row(r).to_vec())
            .collect();
        let raw = self.space.denormalize(&per_component);
        self.refiner.refine(&self.space, &raw)
    }

    /// Evaluates an `n x 3` action matrix: refine, simulate, score.
    ///
    /// Thin wrapper over [`SizingEnv::evaluate_actions_batch`] with a batch
    /// of one; every singular entry point shares the batched code path.
    pub fn evaluate_actions(&self, actions: &Matrix) -> StepOutcome {
        self.evaluate_actions_batch(std::slice::from_ref(actions))
            .pop()
            .expect("batch of one yields one outcome")
    }

    /// Evaluates an already-legal sizing (cache-aware; thin wrapper over
    /// [`SizingEnv::evaluate_batch`] with a batch of one).
    pub fn evaluate_params(&self, params: ParamVector) -> StepOutcome {
        self.evaluate_batch(vec![params])
            .pop()
            .expect("batch of one yields one outcome")
    }

    /// Evaluates a batch of already-legal sizings through the evaluation
    /// engine, in parallel when the engine has more than one worker thread.
    ///
    /// Outcomes are returned in input order, and every outcome is
    /// bit-identical to what the corresponding [`SizingEnv::evaluate_params`]
    /// call would produce (evaluators are pure, so thread count and cache
    /// state are unobservable in the results).
    pub fn evaluate_batch(&self, params: Vec<ParamVector>) -> Vec<StepOutcome> {
        let reports = self.engine.evaluate_batch(&params);
        params
            .into_iter()
            .zip(reports)
            .map(|(params, report)| {
                let fom = self.fom.fom(&report);
                StepOutcome {
                    params,
                    report,
                    fom,
                }
            })
            .collect()
    }

    /// Evaluates a batch of `n x 3` action matrices (refine + batched
    /// simulate + score).
    pub fn evaluate_actions_batch(&self, actions: &[Matrix]) -> Vec<StepOutcome> {
        let params = actions.iter().map(|a| self.actions_to_params(a)).collect();
        self.evaluate_batch(params)
    }

    /// [`SizingEnv::evaluate_actions_batch`] with a grouping hint: the
    /// actions are perturbations of the shared `base` action (one rollout
    /// round), so grouped-solver backends factor the base sizing once and
    /// correct each candidate through rank-k updates. Outcomes match the
    /// unhinted path to solver accuracy, not bit-exactly.
    pub fn evaluate_actions_batch_with_base(
        &self,
        base: &Matrix,
        actions: &[Matrix],
    ) -> Vec<StepOutcome> {
        let base_params = self.actions_to_params(base);
        let params: Vec<ParamVector> = actions.iter().map(|a| self.actions_to_params(a)).collect();
        let reports = self.engine.evaluate_batch_with_base(&base_params, &params);
        params
            .into_iter()
            .zip(reports)
            .map(|(params, report)| {
                let fom = self.fom.fom(&report);
                StepOutcome {
                    params,
                    report,
                    fom,
                }
            })
            .collect()
    }

    /// Evaluates a flat unit vector in `[0, 1]^num_parameters`; this is the
    /// interface the black-box baselines use (thin wrapper over
    /// [`SizingEnv::evaluate_units`] with a batch of one).
    pub fn evaluate_unit(&self, unit: &[f64]) -> StepOutcome {
        self.evaluate_units(std::slice::from_ref(&unit.to_vec()))
            .pop()
            .expect("batch of one yields one outcome")
    }

    /// Evaluates a batch of flat unit vectors through the evaluation engine
    /// (the batched counterpart of [`SizingEnv::evaluate_unit`]).
    pub fn evaluate_units(&self, units: &[Vec<f64>]) -> Vec<StepOutcome> {
        let params = units
            .iter()
            .map(|unit| {
                let raw = self.space.from_unit(unit);
                self.refiner.refine(&self.space, &raw)
            })
            .collect();
        self.evaluate_batch(params)
    }

    /// Evaluates a batch of action matrices and packages them as a
    /// [`RolloutBatch`] (reward = FoM, priority defaulting to the reward):
    /// the unit the batched exploration pipeline and the replay buffer
    /// consume.
    pub fn rollout_actions(&self, actions: Vec<Matrix>) -> RolloutBatch<Matrix, StepOutcome> {
        let outcomes = self.evaluate_actions_batch(&actions);
        actions
            .into_iter()
            .zip(outcomes)
            .map(|(action, outcome)| {
                let fom = outcome.fom;
                (action, outcome, fom)
            })
            .collect()
    }

    /// [`SizingEnv::rollout_actions`] with a grouping hint (see
    /// [`SizingEnv::evaluate_actions_batch_with_base`]): `base` is the
    /// round's unperturbed policy action the proposals were jittered from.
    pub fn rollout_actions_with_base(
        &self,
        base: &Matrix,
        actions: Vec<Matrix>,
    ) -> RolloutBatch<Matrix, StepOutcome> {
        let outcomes = self.evaluate_actions_batch_with_base(base, &actions);
        actions
            .into_iter()
            .zip(outcomes)
            .map(|(action, outcome)| {
                let fom = outcome.fom;
                (action, outcome, fom)
            })
            .collect()
    }

    /// Evaluates a batch of flat unit vectors and packages them as a
    /// [`RolloutBatch`] — the population-scoring path shared by the ES /
    /// Random / BO / MACE baselines.
    pub fn rollout_units(&self, units: Vec<Vec<f64>>) -> RolloutBatch<Vec<f64>, StepOutcome> {
        let outcomes = self.evaluate_units(&units);
        units
            .into_iter()
            .zip(outcomes)
            .map(|(unit, outcome)| {
                let fom = outcome.fom;
                (unit, outcome, fom)
            })
            .collect()
    }

    /// The evaluation backend serving this environment (an owned engine or
    /// a shared-service session).
    pub fn engine(&self) -> &dyn EvalBackend {
        &*self.engine
    }

    /// Cumulative evaluation statistics (throughput, cache hit rate, wall
    /// time) of this environment's engine.
    pub fn exec_stats(&self) -> ExecStats {
        self.engine.stats()
    }

    /// Number of flat parameters (the baselines' search dimensionality).
    pub fn num_unit_parameters(&self) -> usize {
        self.space.num_parameters()
    }

    /// Samples a uniformly random `n x 3` action matrix (warm-up episodes).
    pub fn random_actions<R: Rng>(&self, rng: &mut R) -> Matrix {
        Matrix::from_fn(self.num_components(), self.action_dim(), |_, _| {
            rng.gen_range(-1.0..1.0)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fom::FomConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn env() -> SizingEnv {
        let node = TechnologyNode::tsmc180();
        let fom = FomConfig::calibrated(Benchmark::TwoStageTia, &node, 8, 0);
        SizingEnv::new(Benchmark::TwoStageTia, &node, fom)
    }

    #[test]
    fn shapes_are_consistent() {
        let e = env();
        assert_eq!(e.states().rows(), e.num_components());
        assert_eq!(e.adjacency().rows(), e.num_components());
        assert_eq!(e.component_types().len(), e.num_components());
        assert_eq!(e.action_dim(), 3);
    }

    #[test]
    fn zero_actions_give_the_nominal_refined_design() {
        let e = env();
        let actions = Matrix::zeros(e.num_components(), 3);
        let outcome = e.evaluate_actions(&actions);
        assert!(e.design_space().validate(&outcome.params));
        assert!(outcome.fom.is_finite());
        assert!(!outcome.report.is_empty());
    }

    #[test]
    fn grouped_rollouts_match_ungrouped_rollouts() {
        // Two independent engines (separate caches) so the grouped path
        // actually simulates instead of replaying the other path's cache.
        let node = TechnologyNode::tsmc180();
        let fom = FomConfig::calibrated(Benchmark::TwoStageTia, &node, 8, 0);
        let make = || {
            SizingEnv::with_engine_config(
                Benchmark::TwoStageTia,
                &node,
                fom.clone(),
                StateEncoding::ScalarIndex,
                EngineConfig::serial(),
            )
        };
        let plain = make();
        let grouped = make();
        let base = Matrix::zeros(plain.num_components(), 3);
        let mut rng = StdRng::seed_from_u64(11);
        let actions: Vec<Matrix> = (0..3)
            .map(|_| {
                let mut a = base.clone();
                for v in a.as_mut_slice() {
                    *v = (*v + rng.gen_range(-0.05..0.05)).clamp(-1.0, 1.0);
                }
                a
            })
            .collect();
        let reference = plain.rollout_actions(actions.clone());
        let batched = grouped.rollout_actions_with_base(&base, actions);
        assert_eq!(reference.len(), batched.len());
        for (r, b) in reference.iter().zip(batched.iter()) {
            assert_eq!(r.outcome.params, b.outcome.params);
            assert!(
                (r.reward - b.reward).abs() <= 1e-6 * (1.0 + r.reward.abs()),
                "grouped reward {} vs {}",
                b.reward,
                r.reward
            );
        }
    }

    #[test]
    fn random_actions_are_in_range_and_legal() {
        let e = env();
        let mut rng = StdRng::seed_from_u64(3);
        let actions = e.random_actions(&mut rng);
        assert!(actions.as_slice().iter().all(|a| a.abs() <= 1.0));
        let params = e.actions_to_params(&actions);
        assert!(e.design_space().validate(&params));
    }

    #[test]
    fn unit_interface_matches_dimensionality() {
        let e = env();
        let unit = vec![0.5; e.num_unit_parameters()];
        let outcome = e.evaluate_unit(&unit);
        assert!(outcome.fom.is_finite());
    }

    #[test]
    fn batch_evaluation_matches_the_serial_path_in_order() {
        let e = env();
        let d = e.num_unit_parameters();
        let units: Vec<Vec<f64>> = (0..6)
            .map(|i| {
                (0..d)
                    .map(|j| ((i * 13 + j * 5) % 97) as f64 / 96.0)
                    .collect()
            })
            .collect();
        let serial: Vec<StepOutcome> = units.iter().map(|u| e.evaluate_unit(u)).collect();
        let batched = e.evaluate_units(&units);
        assert_eq!(batched, serial);
    }

    #[test]
    fn rollout_batches_carry_fom_as_reward_and_match_the_batch_path() {
        let e = env();
        let d = e.num_unit_parameters();
        let units: Vec<Vec<f64>> = (0..4)
            .map(|i| (0..d).map(|j| ((i * 7 + j) % 13) as f64 / 12.0).collect())
            .collect();
        let outcomes = e.evaluate_units(&units);
        let batch = e.rollout_units(units.clone());
        assert_eq!(batch.len(), 4);
        for (i, r) in batch.iter().enumerate() {
            assert_eq!(r.action, units[i]);
            assert_eq!(r.outcome, outcomes[i]);
            assert_eq!(r.reward, outcomes[i].fom);
            assert_eq!(r.priority, r.reward);
        }
        let best = batch.best().expect("non-empty batch");
        assert!(batch.iter().all(|r| r.reward <= best.reward));
    }

    #[test]
    fn repeated_evaluations_are_cache_hits_with_identical_outcomes() {
        let e = env();
        let unit = vec![0.25; e.num_unit_parameters()];
        let first = e.evaluate_unit(&unit);
        let hits_before = e.exec_stats().cache_hits;
        let second = e.evaluate_unit(&unit);
        assert_eq!(first, second);
        assert!(e.exec_stats().cache_hits > hits_before);
    }
}
