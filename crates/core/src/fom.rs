//! The figure of merit (paper Eq. 2).

use gcnrl_circuit::{benchmarks::Benchmark, ParamVector, TechnologyNode};
use gcnrl_exec::{BatchEvaluator, EngineConfig, EvalBackend};
use gcnrl_sim::PerformanceReport;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// FoM value assigned to designs whose bias point is invalid or whose spec is
/// violated (the paper "assigns a negative number as the FoM value").
pub const INFEASIBLE_FOM: f64 = -0.2;

/// Normalisation and weighting of one metric inside the FoM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricFom {
    /// Metric key as produced by the evaluator (e.g. `"bw_ghz"`).
    pub name: String,
    /// Weight `w_i`; positive for higher-is-better metrics, negative for
    /// lower-is-better metrics (the paper uses ±1 by default).
    pub weight: f64,
    /// Normalising minimum `m_i^min`.
    pub m_min: f64,
    /// Normalising maximum `m_i^max`.
    pub m_max: f64,
    /// Optional upper bound `m_i^bound` beyond which further improvement does
    /// not increase the FoM.
    pub bound: Option<f64>,
}

/// A hard specification on one metric; violating any spec forces the FoM to
/// [`INFEASIBLE_FOM`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecConstraint {
    /// Metric key the spec applies to.
    pub name: String,
    /// Minimum allowed value, if any.
    pub min: Option<f64>,
    /// Maximum allowed value, if any.
    pub max: Option<f64>,
}

impl SpecConstraint {
    /// Returns `true` if the report satisfies this constraint (missing metrics
    /// count as violations).
    pub fn satisfied(&self, report: &PerformanceReport) -> bool {
        let Some(v) = report.get(&self.name) else {
            return false;
        };
        self.min.is_none_or(|m| v >= m) && self.max.is_none_or(|m| v <= m)
    }
}

/// The full FoM definition for one benchmark circuit.
///
/// # Examples
///
/// ```
/// use gcnrl::FomConfig;
/// use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};
///
/// let node = TechnologyNode::tsmc180();
/// let fom = FomConfig::calibrated(Benchmark::TwoStageTia, &node, 50, 0);
/// assert!(!fom.metrics().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FomConfig {
    metrics: Vec<MetricFom>,
    specs: Vec<SpecConstraint>,
}

impl FomConfig {
    /// Creates a FoM from explicit per-metric configurations.
    pub fn new(metrics: Vec<MetricFom>) -> Self {
        FomConfig {
            metrics,
            specs: Vec::new(),
        }
    }

    /// Calibrates the normalisation bounds by random sampling, the way the
    /// paper obtains `m_i^max` / `m_i^min` ("random sampling 5000 designs").
    ///
    /// `samples` controls the sampling budget (the paper uses 5000; tests and
    /// quick runs use far fewer).  Weights are ±1 according to the metric
    /// direction declared by the evaluator.
    pub fn calibrated(
        benchmark: Benchmark,
        node: &TechnologyNode,
        samples: usize,
        seed: u64,
    ) -> Self {
        Self::calibrated_with_engine(benchmark, node, samples, seed, EngineConfig::from_env())
    }

    /// Like [`FomConfig::calibrated`], with an explicit evaluation-engine
    /// configuration.  The sharded bench coordinator uses this to keep each
    /// cell's calibration sweep on the cell's own engine budget (one worker
    /// thread per cell) instead of spawning a nested pool per shard.
    pub fn calibrated_with_engine(
        benchmark: Benchmark,
        node: &TechnologyNode,
        samples: usize,
        seed: u64,
        engine_config: EngineConfig,
    ) -> Self {
        // Calibration is an embarrassingly parallel random sweep, so it goes
        // through the batched evaluation engine.
        let engine = BatchEvaluator::for_benchmark(benchmark, node, engine_config);
        Self::calibrated_with_backend(benchmark, node, samples, seed, &engine)
    }

    /// Like [`FomConfig::calibrated`], sweeping through an existing
    /// evaluation backend — an owned engine or an
    /// [`EvalService`](gcnrl_exec::EvalService) session. Session-backed
    /// environments calibrate through this so the sweep lands in the shared
    /// engine cache, where concurrent sessions calibrating the same
    /// benchmark turn each other's sweeps into cache hits.
    pub fn calibrated_with_backend(
        benchmark: Benchmark,
        node: &TechnologyNode,
        samples: usize,
        seed: u64,
        backend: &dyn EvalBackend,
    ) -> Self {
        let circuit = benchmark.circuit();
        let space = circuit.design_space(node);
        let mut rng = StdRng::seed_from_u64(seed);

        let specs_list = backend.metric_specs().to_vec();
        let mut mins = vec![f64::INFINITY; specs_list.len()];
        let mut maxs = vec![f64::NEG_INFINITY; specs_list.len()];
        let candidates: Vec<ParamVector> = (0..samples.max(2))
            .map(|_| {
                let unit: Vec<f64> = (0..space.num_parameters())
                    .map(|_| rng.gen::<f64>())
                    .collect();
                space.from_unit(&unit)
            })
            .collect();
        for report in backend.evaluate_batch(&candidates) {
            for (i, spec) in specs_list.iter().enumerate() {
                if let Some(v) = report.get(spec.name) {
                    if v.is_finite() {
                        mins[i] = mins[i].min(v);
                        maxs[i] = maxs[i].max(v);
                    }
                }
            }
        }

        let metrics = specs_list
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let (lo, hi) = if mins[i] <= maxs[i] {
                    (mins[i], maxs[i])
                } else {
                    (0.0, 1.0)
                };
                let span = if (hi - lo).abs() < 1e-12 {
                    1.0
                } else {
                    hi - lo
                };
                MetricFom {
                    name: spec.name.to_owned(),
                    weight: spec.direction.default_weight(),
                    m_min: lo,
                    m_max: lo + span,
                    bound: None,
                }
            })
            .collect();
        FomConfig::new(metrics)
    }

    /// The per-metric configurations.
    pub fn metrics(&self) -> &[MetricFom] {
        &self.metrics
    }

    /// Adds a hard specification.
    pub fn with_spec(mut self, spec: SpecConstraint) -> Self {
        self.specs.push(spec);
        self
    }

    /// Multiplies the weight of `metric` by `factor` (the paper's
    /// GCN-RL-1..5 experiments put a 10x larger weight on one metric).
    pub fn with_weight_emphasis(mut self, metric: &str, factor: f64) -> Self {
        for m in &mut self.metrics {
            if m.name == metric {
                m.weight *= factor;
            }
        }
        self
    }

    /// Evaluates the FoM of a performance report (paper Eq. 2).
    ///
    /// Infeasible bias points and spec violations return [`INFEASIBLE_FOM`].
    pub fn fom(&self, report: &PerformanceReport) -> f64 {
        if !report.feasible {
            return INFEASIBLE_FOM;
        }
        if self.specs.iter().any(|s| !s.satisfied(report)) {
            return INFEASIBLE_FOM;
        }
        let mut total = 0.0;
        for m in &self.metrics {
            let Some(raw) = report.get(&m.name) else {
                continue;
            };
            if !raw.is_finite() {
                return INFEASIBLE_FOM;
            }
            let capped = match m.bound {
                Some(b) => raw.min(b),
                None => raw,
            };
            let clamped = capped.clamp(m.m_min, m.m_max);
            let normalised = (clamped - m.m_min) / (m.m_max - m.m_min);
            total += m.weight * normalised;
        }
        total
    }

    /// Convenience: returns the weight currently assigned to `metric`.
    pub fn weight(&self, metric: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|m| m.name == metric)
            .map(|m| m.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_fom() -> FomConfig {
        FomConfig::new(vec![
            MetricFom {
                name: "gain".into(),
                weight: 1.0,
                m_min: 0.0,
                m_max: 100.0,
                bound: None,
            },
            MetricFom {
                name: "power".into(),
                weight: -1.0,
                m_min: 0.0,
                m_max: 10.0,
                bound: None,
            },
        ])
    }

    fn report(gain: f64, power: f64) -> PerformanceReport {
        let mut r = PerformanceReport::new();
        r.set("gain", gain);
        r.set("power", power);
        r
    }

    #[test]
    fn fom_rewards_gain_and_penalises_power() {
        let fom = simple_fom();
        assert!(fom.fom(&report(80.0, 1.0)) > fom.fom(&report(40.0, 1.0)));
        assert!(fom.fom(&report(80.0, 1.0)) > fom.fom(&report(80.0, 9.0)));
    }

    #[test]
    fn fom_is_monotone_in_each_metric_and_clamped() {
        let fom = simple_fom();
        // Values beyond the normalisation range saturate.
        assert_eq!(fom.fom(&report(150.0, 0.0)), fom.fom(&report(100.0, 0.0)));
        assert_eq!(fom.fom(&report(-10.0, 0.0)), fom.fom(&report(0.0, 0.0)));
    }

    #[test]
    fn bound_caps_improvement() {
        let mut cfg = simple_fom();
        cfg.metrics[0].bound = Some(50.0);
        assert_eq!(cfg.fom(&report(50.0, 5.0)), cfg.fom(&report(99.0, 5.0)));
    }

    #[test]
    fn infeasible_and_spec_violations_get_negative_fom() {
        let fom = simple_fom().with_spec(SpecConstraint {
            name: "gain".into(),
            min: Some(50.0),
            max: None,
        });
        assert_eq!(fom.fom(&PerformanceReport::infeasible()), INFEASIBLE_FOM);
        assert_eq!(fom.fom(&report(40.0, 1.0)), INFEASIBLE_FOM);
        assert!(fom.fom(&report(60.0, 1.0)) > INFEASIBLE_FOM);
    }

    #[test]
    fn weight_emphasis_scales_one_metric() {
        let fom = simple_fom().with_weight_emphasis("gain", 10.0);
        assert_eq!(fom.weight("gain"), Some(10.0));
        assert_eq!(fom.weight("power"), Some(-1.0));
        assert_eq!(fom.weight("missing"), None);
    }

    #[test]
    fn calibration_produces_finite_bounds_for_all_benchmarks() {
        let node = TechnologyNode::tsmc180();
        for b in Benchmark::ALL {
            let cfg = FomConfig::calibrated(b, &node, 12, 1);
            assert!(!cfg.metrics().is_empty());
            for m in cfg.metrics() {
                assert!(m.m_max > m.m_min, "{b}: {} has empty range", m.name);
                assert!(m.m_min.is_finite() && m.m_max.is_finite());
            }
        }
    }
}
