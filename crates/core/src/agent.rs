//! The GCN actor–critic agent (paper Fig. 3) and its DDPG update rules.
//!
//! Both networks process the circuit graph component-by-component:
//!
//! * The **actor** maps the `n x d` state matrix to an `n x 3` action matrix
//!   in `[-1, 1]`.  Its first layer is shared across components, the hidden
//!   layers are graph convolutions (shared weights, neighbourhood
//!   aggregation), and the last layer is a component-type-specific decoder.
//! * The **critic** encodes the state with a shared layer and the action with
//!   a component-type-specific encoder, propagates through the same kind of
//!   GCN stack, and reduces a shared per-node value head to a scalar `Q`.
//!
//! Setting [`AgentKind::NonGcn`] skips the aggregation step, which is exactly
//! the paper's NG-RL ablation.

use gcnrl_linalg::Matrix;
use gcnrl_nn::{gcn_backprop, gcn_propagate, Activation, Adam, Linear, LinearCache, SharedMatrix};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Whether the agent aggregates features over the topology graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AgentKind {
    /// Full GCN-RL agent (graph aggregation enabled).
    Gcn,
    /// NG-RL ablation: no aggregation, every component is processed alone.
    NonGcn,
}

/// Number of component types (NMOS, PMOS, R, C).
const NUM_TYPES: usize = 4;
/// Per-component action width (W, L, M for transistors).
const ACTION_DIM: usize = 3;

/// A dense layer bundled with its Adam optimiser state.
#[derive(Debug, Clone)]
struct OptLinear {
    layer: Linear,
    opt_w: Adam,
    opt_b: Adam,
}

impl OptLinear {
    fn new(in_dim: usize, out_dim: usize, lr: f64, seed: u64) -> Self {
        let layer = Linear::xavier(in_dim, out_dim, seed);
        OptLinear {
            opt_w: Adam::new(in_dim * out_dim, lr),
            opt_b: Adam::new(out_dim, lr),
            layer,
        }
    }

    fn forward(&self, x: &SharedMatrix) -> (Matrix, LinearCache) {
        self.layer.forward(x)
    }

    fn apply(&mut self, d_weight: &Matrix, d_bias: &[f64]) {
        let uw = self.opt_w.step_matrix(d_weight);
        let ub = self.opt_b.step_vector(d_bias);
        self.layer.apply_update(&uw, &ub);
    }
}

/// Serializable snapshot of the agent's learnable parameters, used by the
/// transfer experiments (train on one circuit/node, fine-tune on another).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgentCheckpoint {
    /// Agent variant.
    pub kind: AgentKind,
    /// State dimensionality the checkpoint was trained with.
    pub state_dim: usize,
    /// Hidden width.
    pub hidden_dim: usize,
    /// Number of GCN layers.
    pub gcn_layers: usize,
    actor_input: Linear,
    actor_hidden: Vec<Linear>,
    actor_decoders: Vec<Linear>,
    critic_state: Linear,
    critic_action: Vec<Linear>,
    critic_hidden: Vec<Linear>,
    critic_out: Linear,
}

/// Cache of one actor forward pass.
pub struct ActorCache {
    input_cache: LinearCache,
    input_act: Matrix,
    hidden: Vec<(LinearCache, Matrix)>,
    decoder_caches: Vec<LinearCache>,
    pre_tanh: Matrix,
    tanh_out: Matrix,
}

/// Cache of one critic forward pass.
pub struct CriticCache {
    state_cache: LinearCache,
    action_caches: Vec<LinearCache>,
    combine_act: Matrix,
    hidden: Vec<(LinearCache, Matrix)>,
    out_cache: LinearCache,
    num_nodes: usize,
}

/// The GCN (or NG) actor–critic agent.
pub struct GcnAgent {
    kind: AgentKind,
    state_dim: usize,
    hidden_dim: usize,
    gcn_layers: usize,
    types: Vec<usize>,
    type_masks: Vec<Matrix>,
    actor_input: OptLinear,
    actor_hidden: Vec<OptLinear>,
    actor_decoders: Vec<OptLinear>,
    critic_state: OptLinear,
    critic_action: Vec<OptLinear>,
    critic_hidden: Vec<OptLinear>,
    critic_out: OptLinear,
}

impl GcnAgent {
    /// Creates an agent for a circuit with the given per-component type
    /// indices and state dimensionality.
    ///
    /// # Panics
    ///
    /// Panics if `types` is empty or contains an index `>= 4`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kind: AgentKind,
        state_dim: usize,
        hidden_dim: usize,
        gcn_layers: usize,
        types: &[usize],
        actor_lr: f64,
        critic_lr: f64,
        seed: u64,
    ) -> Self {
        assert!(!types.is_empty(), "agent needs at least one component");
        assert!(types.iter().all(|t| *t < NUM_TYPES), "invalid type index");
        let n = types.len();
        let type_masks = (0..NUM_TYPES)
            .map(|t| Matrix::from_fn(n, 1, |r, _| if types[r] == t { 1.0 } else { 0.0 }))
            .collect();
        let mut s = seed;
        let mut next_seed = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s
        };
        GcnAgent {
            kind,
            state_dim,
            hidden_dim,
            gcn_layers,
            types: types.to_vec(),
            type_masks,
            actor_input: OptLinear::new(state_dim, hidden_dim, actor_lr, next_seed()),
            actor_hidden: (0..gcn_layers)
                .map(|_| OptLinear::new(hidden_dim, hidden_dim, actor_lr, next_seed()))
                .collect(),
            actor_decoders: (0..NUM_TYPES)
                .map(|_| OptLinear::new(hidden_dim, ACTION_DIM, actor_lr, next_seed()))
                .collect(),
            critic_state: OptLinear::new(state_dim, hidden_dim, critic_lr, next_seed()),
            critic_action: (0..NUM_TYPES)
                .map(|_| OptLinear::new(ACTION_DIM, hidden_dim, critic_lr, next_seed()))
                .collect(),
            critic_hidden: (0..gcn_layers)
                .map(|_| OptLinear::new(hidden_dim, hidden_dim, critic_lr, next_seed()))
                .collect(),
            critic_out: OptLinear::new(hidden_dim, 1, critic_lr, next_seed()),
        }
    }

    /// The agent variant.
    pub fn kind(&self) -> AgentKind {
        self.kind
    }

    /// The state dimensionality the agent expects.
    pub fn state_dim(&self) -> usize {
        self.state_dim
    }

    fn mask_rows(&self, m: &Matrix, t: usize) -> Matrix {
        let mask = &self.type_masks[t];
        Matrix::from_fn(m.rows(), m.cols(), |r, c| m[(r, c)] * mask[(r, 0)])
    }

    fn propagate(&self, adjacency: &Matrix, h: &Matrix) -> Matrix {
        match self.kind {
            AgentKind::Gcn => gcn_propagate(adjacency, h),
            AgentKind::NonGcn => h.clone(),
        }
    }

    fn backprop_propagate(&self, adjacency: &Matrix, d: &Matrix) -> Matrix {
        match self.kind {
            AgentKind::Gcn => gcn_backprop(adjacency, d),
            AgentKind::NonGcn => d.clone(),
        }
    }

    /// Actor forward pass: returns the `n x 3` action matrix and the cache.
    ///
    /// Intermediate activations are moved into shared handles so every layer
    /// cache borrows its input instead of cloning it; the one `states` copy
    /// below is the only matrix duplicated per pass.
    pub fn actor_forward(&self, states: &Matrix, adjacency: &Matrix) -> (Matrix, ActorCache) {
        let states = Arc::new(states.clone());
        let (pre, input_cache) = self.actor_input.forward(&states);
        let (h, input_act) = Activation::Relu.forward(&pre);
        let mut h = Arc::new(h);

        let mut hidden = Vec::with_capacity(self.gcn_layers);
        for layer in &self.actor_hidden {
            let agg = Arc::new(self.propagate(adjacency, &h));
            let (pre, cache) = layer.forward(&agg);
            let (act, act_cache) = Activation::Relu.forward(&pre);
            hidden.push((cache, act_cache));
            h = Arc::new(act);
        }

        let mut pre_tanh = Matrix::zeros(h.rows(), ACTION_DIM);
        let mut decoder_caches = Vec::with_capacity(NUM_TYPES);
        for (t, dec) in self.actor_decoders.iter().enumerate() {
            let (out, cache) = dec.forward(&h);
            decoder_caches.push(cache);
            pre_tanh = pre_tanh
                .add_elem(&self.mask_rows(&out, t))
                .expect("same shape");
        }
        let (actions, tanh_out) = Activation::Tanh.forward(&pre_tanh);
        (
            actions,
            ActorCache {
                input_cache,
                input_act,
                hidden,
                decoder_caches,
                pre_tanh,
                tanh_out,
            },
        )
    }

    /// Critic forward pass: returns the scalar value estimate and the cache.
    pub fn critic_forward(
        &self,
        states: &Matrix,
        actions: &Matrix,
        adjacency: &Matrix,
    ) -> (f64, CriticCache) {
        let num_rows = states.rows();
        let states = Arc::new(states.clone());
        let actions = Arc::new(actions.clone());
        let (hs, state_cache) = self.critic_state.forward(&states);
        let mut ha = Matrix::zeros(num_rows, self.hidden_dim);
        let mut action_caches = Vec::with_capacity(NUM_TYPES);
        for (t, enc) in self.critic_action.iter().enumerate() {
            let (out, cache) = enc.forward(&actions);
            action_caches.push(cache);
            ha = ha.add_elem(&self.mask_rows(&out, t)).expect("same shape");
        }
        let combined = hs.add_elem(&ha).expect("same shape");
        let (h, combine_act) = Activation::Relu.forward(&combined);
        let mut h = Arc::new(h);

        let mut hidden = Vec::with_capacity(self.gcn_layers);
        for layer in &self.critic_hidden {
            let agg = Arc::new(self.propagate(adjacency, &h));
            let (pre, cache) = layer.forward(&agg);
            let (act, act_cache) = Activation::Relu.forward(&pre);
            hidden.push((cache, act_cache));
            h = Arc::new(act);
        }
        let (values, out_cache) = self.critic_out.forward(&h);
        let q = values.sum() / values.rows() as f64;
        (
            q,
            CriticCache {
                state_cache,
                action_caches,
                combine_act,
                hidden,
                out_cache,
                num_nodes: states.rows(),
            },
        )
    }

    /// Backpropagates `d_actions` (gradient of some loss with respect to the
    /// actor's output) and applies one Adam step to every actor parameter.
    pub fn actor_apply(&mut self, cache: &ActorCache, d_actions: &Matrix, adjacency: &Matrix) {
        // Through the tanh output head.
        let d_pre = Activation::Tanh.backward(&cache.tanh_out, d_actions);
        let _ = &cache.pre_tanh;

        // Through the per-type decoders.
        let mut decoder_grads = Vec::with_capacity(NUM_TYPES);
        let last_hidden_rows = d_pre.rows();
        let mut d_h = Matrix::zeros(last_hidden_rows, self.hidden_dim);
        for t in 0..NUM_TYPES {
            let masked = self.mask_rows(&d_pre, t);
            let grads = self.actor_decoders[t]
                .layer
                .backward(&cache.decoder_caches[t], &masked);
            d_h = d_h.add_elem(&grads.d_input).expect("same shape");
            decoder_grads.push((grads.d_weight, grads.d_bias));
        }

        // Through the hidden GCN stack (reverse order).
        let mut hidden_grads: Vec<(Matrix, Vec<f64>)> = Vec::with_capacity(self.gcn_layers);
        for (layer, (cache_l, act_cache)) in self.actor_hidden.iter().zip(&cache.hidden).rev() {
            let d_act = Activation::Relu.backward(act_cache, &d_h);
            let grads = layer.layer.backward(cache_l, &d_act);
            d_h = self.backprop_propagate(adjacency, &grads.d_input);
            hidden_grads.push((grads.d_weight, grads.d_bias));
        }
        hidden_grads.reverse();

        // Through the shared input layer.
        let d_input_act = Activation::Relu.backward(&cache.input_act, &d_h);
        let input_grads = self
            .actor_input
            .layer
            .backward(&cache.input_cache, &d_input_act);

        // Apply all updates.
        self.actor_input
            .apply(&input_grads.d_weight, &input_grads.d_bias);
        for (layer, (dw, db)) in self.actor_hidden.iter_mut().zip(&hidden_grads) {
            layer.apply(dw, db);
        }
        for (dec, (dw, db)) in self.actor_decoders.iter_mut().zip(&decoder_grads) {
            dec.apply(dw, db);
        }
    }

    /// Backpropagates a scalar `d_q` through the critic.  Returns the gradient
    /// of `q` (scaled by `d_q`) with respect to the action matrix, and
    /// optionally applies the parameter updates (`apply = true` for the critic
    /// regression step, `false` when the critic is only used to obtain the
    /// action gradient for the actor update).
    pub fn critic_backward(
        &mut self,
        cache: &CriticCache,
        d_q: f64,
        adjacency: &Matrix,
        apply: bool,
    ) -> Matrix {
        let n = cache.num_nodes;
        // dQ/d(values) = 1/n for every node.
        let d_values = Matrix::filled(n, 1, d_q / n as f64);
        let out_grads = self.critic_out.layer.backward(&cache.out_cache, &d_values);
        let mut d_h = out_grads.d_input.clone();

        let mut hidden_grads: Vec<(Matrix, Vec<f64>)> = Vec::with_capacity(self.gcn_layers);
        for (layer, (cache_l, act_cache)) in self.critic_hidden.iter().zip(&cache.hidden).rev() {
            let d_act = Activation::Relu.backward(act_cache, &d_h);
            let grads = layer.layer.backward(cache_l, &d_act);
            d_h = self.backprop_propagate(adjacency, &grads.d_input);
            hidden_grads.push((grads.d_weight, grads.d_bias));
        }
        hidden_grads.reverse();

        // Through the ReLU that combined state and action embeddings.
        let d_combined = Activation::Relu.backward(&cache.combine_act, &d_h);

        let state_grads = self
            .critic_state
            .layer
            .backward(&cache.state_cache, &d_combined);

        let mut d_actions = Matrix::zeros(n, ACTION_DIM);
        let mut action_grads = Vec::with_capacity(NUM_TYPES);
        for t in 0..NUM_TYPES {
            // Only rows of type t received this encoder's output.
            let masked = self.mask_rows(&d_combined, t);
            let grads = self.critic_action[t]
                .layer
                .backward(&cache.action_caches[t], &masked);
            d_actions = d_actions.add_elem(&grads.d_input).expect("same shape");
            action_grads.push((grads.d_weight, grads.d_bias));
        }

        if apply {
            self.critic_out
                .apply(&out_grads.d_weight, &out_grads.d_bias);
            for (layer, (dw, db)) in self.critic_hidden.iter_mut().zip(&hidden_grads) {
                layer.apply(dw, db);
            }
            self.critic_state
                .apply(&state_grads.d_weight, &state_grads.d_bias);
            for (enc, (dw, db)) in self.critic_action.iter_mut().zip(&action_grads) {
                enc.apply(dw, db);
            }
        }
        d_actions
    }

    /// One DDPG critic regression step over a mini-batch of `(action, reward)`
    /// transitions with baseline `b`: minimises `mean_k (r_k - b - Q(s, a_k))^2`.
    /// Returns the batch loss before the update.
    pub fn critic_update(
        &mut self,
        states: &Matrix,
        adjacency: &Matrix,
        batch: &[(Matrix, f64)],
        baseline: f64,
    ) -> f64 {
        if batch.is_empty() {
            return 0.0;
        }
        let mut loss = 0.0;
        let mut caches = Vec::with_capacity(batch.len());
        for (action, reward) in batch {
            let (q, cache) = self.critic_forward(states, action, adjacency);
            let err = reward - baseline - q;
            loss += err * err;
            caches.push((cache, -2.0 * err / batch.len() as f64));
        }
        // Apply per-sample updates sequentially (equivalent to accumulating
        // for Adam up to second-moment bookkeeping, and much simpler).
        for (cache, d_q) in &caches {
            let _ = self.critic_backward(cache, *d_q, adjacency, true);
        }
        loss / batch.len() as f64
    }

    /// One DDPG actor step: pushes the actor's output in the direction that
    /// increases the critic's value (sampled policy gradient).
    /// Returns the critic's value before the update.
    pub fn actor_update(&mut self, states: &Matrix, adjacency: &Matrix) -> f64 {
        let (actions, actor_cache) = self.actor_forward(states, adjacency);
        let (q, critic_cache) = self.critic_forward(states, &actions, adjacency);
        // dQ/dA, without touching the critic's parameters.
        let d_actions = self.critic_backward(&critic_cache, 1.0, adjacency, false);
        // Gradient ascent on Q = descent on -Q.
        let d_loss = d_actions.scaled(-1.0);
        self.actor_apply(&actor_cache, &d_loss, adjacency);
        q
    }

    /// Greedy action for the current policy (no exploration noise).
    pub fn act(&self, states: &Matrix, adjacency: &Matrix) -> Matrix {
        self.actor_forward(states, adjacency).0
    }

    /// Extracts a serializable checkpoint of every learnable parameter.
    pub fn checkpoint(&self) -> AgentCheckpoint {
        AgentCheckpoint {
            kind: self.kind,
            state_dim: self.state_dim,
            hidden_dim: self.hidden_dim,
            gcn_layers: self.gcn_layers,
            actor_input: self.actor_input.layer.clone(),
            actor_hidden: self.actor_hidden.iter().map(|l| l.layer.clone()).collect(),
            actor_decoders: self
                .actor_decoders
                .iter()
                .map(|l| l.layer.clone())
                .collect(),
            critic_state: self.critic_state.layer.clone(),
            critic_action: self.critic_action.iter().map(|l| l.layer.clone()).collect(),
            critic_hidden: self.critic_hidden.iter().map(|l| l.layer.clone()).collect(),
            critic_out: self.critic_out.layer.clone(),
        }
    }

    /// Loads parameters from a checkpoint (the transfer-learning step of the
    /// paper: "inheriting the pre-trained weights of the actor-critic model").
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint architecture (state dim, hidden width, depth)
    /// does not match this agent.
    pub fn load_checkpoint(&mut self, ckpt: &AgentCheckpoint) {
        assert_eq!(ckpt.state_dim, self.state_dim, "state dimension mismatch");
        assert_eq!(ckpt.hidden_dim, self.hidden_dim, "hidden width mismatch");
        assert_eq!(ckpt.gcn_layers, self.gcn_layers, "depth mismatch");
        self.actor_input.layer = ckpt.actor_input.clone();
        for (l, c) in self.actor_hidden.iter_mut().zip(&ckpt.actor_hidden) {
            l.layer = c.clone();
        }
        for (l, c) in self.actor_decoders.iter_mut().zip(&ckpt.actor_decoders) {
            l.layer = c.clone();
        }
        self.critic_state.layer = ckpt.critic_state.clone();
        for (l, c) in self.critic_action.iter_mut().zip(&ckpt.critic_action) {
            l.layer = c.clone();
        }
        for (l, c) in self.critic_hidden.iter_mut().zip(&ckpt.critic_hidden) {
            l.layer = c.clone();
        }
        self.critic_out.layer = ckpt.critic_out.clone();
    }

    /// The per-component type indices the agent was built with.
    pub fn component_types(&self) -> &[usize] {
        &self.types
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_agent(kind: AgentKind) -> (GcnAgent, Matrix, Matrix) {
        let types = vec![0, 1, 2, 3, 0];
        let n = types.len();
        let state_dim = 6;
        let agent = GcnAgent::new(kind, state_dim, 16, 2, &types, 1e-2, 1e-2, 7);
        let states = Matrix::from_fn(n, state_dim, |r, c| ((r * 7 + c) as f64).sin());
        // Ring graph, normalised by hand (every degree = 3 with self loops).
        let adjacency = Matrix::from_fn(n, n, |i, j| {
            let diff = (i as i64 - j as i64).rem_euclid(n as i64);
            if diff == 0 || diff == 1 || diff == n as i64 - 1 {
                1.0 / 3.0
            } else {
                0.0
            }
        });
        (agent, states, adjacency)
    }

    #[test]
    fn actor_outputs_bounded_actions_of_right_shape() {
        for kind in [AgentKind::Gcn, AgentKind::NonGcn] {
            let (agent, states, adj) = toy_agent(kind);
            let actions = agent.act(&states, &adj);
            assert_eq!(actions.shape(), (5, 3));
            assert!(actions.as_slice().iter().all(|a| a.abs() <= 1.0));
        }
    }

    #[test]
    fn critic_produces_finite_scalar() {
        let (agent, states, adj) = toy_agent(AgentKind::Gcn);
        let actions = Matrix::filled(5, 3, 0.2);
        let (q, _) = agent.critic_forward(&states, &actions, &adj);
        assert!(q.is_finite());
    }

    #[test]
    fn critic_update_reduces_regression_loss() {
        let (mut agent, states, adj) = toy_agent(AgentKind::Gcn);
        let batch: Vec<(Matrix, f64)> = (0..8)
            .map(|i| {
                let a = Matrix::from_fn(5, 3, |r, c| ((i + r + c) as f64 * 0.37).sin());
                let reward = a.sum() / 15.0; // a learnable smooth target
                (a, reward)
            })
            .collect();
        let first = agent.critic_update(&states, &adj, &batch, 0.0);
        let mut last = first;
        for _ in 0..60 {
            last = agent.critic_update(&states, &adj, &batch, 0.0);
        }
        assert!(
            last < first * 0.8,
            "critic loss should shrink: {first} -> {last}"
        );
    }

    #[test]
    fn actor_update_increases_critic_value() {
        let (mut agent, states, adj) = toy_agent(AgentKind::Gcn);
        // Give the critic a preference for large actions by fitting it first.
        let batch: Vec<(Matrix, f64)> = (0..8)
            .map(|i| {
                let v = -1.0 + 2.0 * (i as f64 / 7.0);
                (Matrix::filled(5, 3, v), v)
            })
            .collect();
        for _ in 0..80 {
            agent.critic_update(&states, &adj, &batch, 0.0);
        }
        let q_before = {
            let a = agent.act(&states, &adj);
            agent.critic_forward(&states, &a, &adj).0
        };
        for _ in 0..30 {
            agent.actor_update(&states, &adj);
        }
        let q_after = {
            let a = agent.act(&states, &adj);
            agent.critic_forward(&states, &a, &adj).0
        };
        assert!(
            q_after > q_before,
            "actor should climb the critic: {q_before} -> {q_after}"
        );
    }

    #[test]
    fn gcn_and_non_gcn_differ() {
        let (gcn, states, adj) = toy_agent(AgentKind::Gcn);
        let (ng, _, _) = toy_agent(AgentKind::NonGcn);
        assert_eq!(gcn.kind(), AgentKind::Gcn);
        assert_ne!(gcn.act(&states, &adj), ng.act(&states, &adj));
    }

    #[test]
    fn checkpoint_round_trip_preserves_policy() {
        let (agent, states, adj) = toy_agent(AgentKind::Gcn);
        let ckpt = agent.checkpoint();
        let types = agent.component_types().to_vec();
        let mut fresh = GcnAgent::new(AgentKind::Gcn, 6, 16, 2, &types, 1e-2, 1e-2, 99);
        assert_ne!(fresh.act(&states, &adj), agent.act(&states, &adj));
        fresh.load_checkpoint(&ckpt);
        assert_eq!(fresh.act(&states, &adj), agent.act(&states, &adj));
    }

    #[test]
    #[should_panic(expected = "state dimension mismatch")]
    fn incompatible_checkpoint_panics() {
        let (agent, ..) = toy_agent(AgentKind::Gcn);
        let ckpt = agent.checkpoint();
        let mut other = GcnAgent::new(AgentKind::Gcn, 7, 16, 2, &[0, 1], 1e-2, 1e-2, 1);
        other.load_checkpoint(&ckpt);
    }
}
