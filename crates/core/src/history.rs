//! Records of one optimisation run (used for tables and learning curves).

use gcnrl_circuit::ParamVector;
use gcnrl_sim::PerformanceReport;
use serde::{Deserialize, Serialize};

/// One evaluated design during an optimisation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepRecord {
    /// Zero-based episode index.
    pub episode: usize,
    /// FoM of the design evaluated at this episode.
    pub fom: f64,
    /// Best FoM observed up to and including this episode.
    pub best_fom: f64,
}

/// The full history of one optimisation run plus the best design found.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunHistory {
    /// Name of the method that produced the run (e.g. `"GCN-RL"`).
    pub method: String,
    /// Per-episode records in order.
    pub records: Vec<StepRecord>,
    /// The best sizing found.
    pub best_params: Option<ParamVector>,
    /// The performance report of the best sizing.
    pub best_report: Option<PerformanceReport>,
}

impl RunHistory {
    /// Creates an empty history for a named method.
    pub fn new(method: impl Into<String>) -> Self {
        RunHistory {
            method: method.into(),
            records: Vec::new(),
            best_params: None,
            best_report: None,
        }
    }

    /// Appends one evaluated design, tracking the running best.
    pub fn record(&mut self, fom: f64, params: &ParamVector, report: &PerformanceReport) {
        let best_so_far = self.best_fom();
        let is_new_best = self.records.is_empty() || fom > best_so_far;
        let best = if is_new_best { fom } else { best_so_far };
        self.records.push(StepRecord {
            episode: self.records.len(),
            fom,
            best_fom: best,
        });
        if is_new_best {
            self.best_params = Some(params.clone());
            self.best_report = Some(report.clone());
        }
    }

    /// The best FoM observed (negative infinity for an empty history).
    pub fn best_fom(&self) -> f64 {
        self.records
            .last()
            .map(|r| r.best_fom)
            .unwrap_or(f64::NEG_INFINITY)
    }

    /// Number of evaluated designs.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if nothing has been evaluated yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The monotone best-FoM-so-far learning curve (the quantity plotted in
    /// the paper's Figs. 5, 7 and 8).
    pub fn best_curve(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.best_fom).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnrl_circuit::ComponentParams;

    fn pv(v: f64) -> ParamVector {
        ParamVector::new(vec![ComponentParams::Resistance(v)])
    }

    #[test]
    fn best_is_monotone_and_tracks_params() {
        let mut h = RunHistory::new("test");
        assert!(h.is_empty());
        let report = PerformanceReport::new();
        h.record(1.0, &pv(1.0), &report);
        h.record(0.5, &pv(2.0), &report);
        h.record(2.0, &pv(3.0), &report);
        assert_eq!(h.len(), 3);
        assert_eq!(h.best_fom(), 2.0);
        assert_eq!(h.best_curve(), vec![1.0, 1.0, 2.0]);
        assert_eq!(h.best_params, Some(pv(3.0)));
        // Curve is monotone non-decreasing.
        assert!(h.best_curve().windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn empty_history_best_is_neg_infinity() {
        let h = RunHistory::new("x");
        assert_eq!(h.best_fom(), f64::NEG_INFINITY);
        assert!(h.best_curve().is_empty());
    }
}
