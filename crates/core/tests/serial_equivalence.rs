//! The `k = 1` equivalence guard for the batched rollout pipeline.
//!
//! The refactor of `GcnRlDesigner::run` into a propose → evaluate → learn
//! pipeline must be invisible at rollout width 1: with a fixed seed the
//! produced `RunHistory` has to be **bit-identical** to the pre-refactor
//! serial trainer.  This test re-implements that serial loop verbatim (one
//! noisy action per network update, episode-by-episode evaluation) from the
//! public agent/environment API and pins the pipeline against it.

use gcnrl::{AgentKind, FomConfig, GcnAgent, GcnRlDesigner, RunHistory, SizingEnv};
use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};
use gcnrl_linalg::Matrix;
use gcnrl_rl::{DdpgConfig, EmaBaseline, ExplorationNoise, ReplayBuffer};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The pre-refactor serial trainer (the exact loop `GcnRlDesigner::run` ran
/// before speculative batched rollouts), reproduced against the same
/// environment and agent construction.
fn reference_serial_run(env: &SizingEnv, config: DdpgConfig, kind: AgentKind) -> RunHistory {
    let types = env.component_types();
    let mut agent = GcnAgent::new(
        kind,
        env.states().cols(),
        config.hidden_dim,
        config.gcn_layers,
        &types,
        config.actor_lr,
        config.critic_lr,
        config.seed,
    );
    let method = match kind {
        AgentKind::Gcn => "GCN-RL",
        AgentKind::NonGcn => "NG-RL",
    };

    let mut history = RunHistory::new(method);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut noise =
        ExplorationNoise::new(config.noise_sigma, config.noise_decay, config.seed ^ 0x5eed);
    let mut baseline = EmaBaseline::new(config.baseline_decay);
    let mut replay: ReplayBuffer<Matrix> = ReplayBuffer::new(config.replay_capacity);

    let states = env.states().clone();
    let adjacency = env.adjacency().clone();

    // Warm-up: uniformly random actions, one evaluation per episode.
    let warmup = config.warmup.min(config.episodes);
    for _ in 0..warmup {
        let actions = env.random_actions(&mut rng);
        let outcome = env.evaluate_actions(&actions);
        history.record(outcome.fom, &outcome.params, &outcome.report);
        replay.push(actions, outcome.fom);
        baseline.update(outcome.fom);
    }

    // Exploration: one noisy action per network update.
    for episode in warmup..config.episodes {
        let mut actions = agent.act(&states, &adjacency);
        for v in actions.as_mut_slice() {
            *v = (*v + noise.sample()).clamp(-1.0, 1.0);
        }
        noise.decay_step();

        let outcome = env.evaluate_actions(&actions);
        history.record(outcome.fom, &outcome.params, &outcome.report);

        replay.push(actions, outcome.fom);
        baseline.update(outcome.fom);
        let batch: Vec<(Matrix, f64)> = replay
            .sample(config.batch_size, config.seed ^ episode as u64)
            .into_iter()
            .map(|(a, r)| (a.clone(), r))
            .collect();
        agent.critic_update(&states, &adjacency, &batch, baseline.value());
        agent.actor_update(&states, &adjacency);
    }
    history
}

fn config(seed: u64) -> DdpgConfig {
    DdpgConfig {
        episodes: 24,
        warmup: 8,
        batch_size: 8,
        hidden_dim: 16,
        gcn_layers: 2,
        seed,
        ..DdpgConfig::default()
    }
}

#[test]
fn k1_pipeline_reproduces_the_serial_trainer_bit_identically() {
    let node = TechnologyNode::tsmc180();
    for (benchmark, kind, seed) in [
        (Benchmark::TwoStageTia, AgentKind::Gcn, 5u64),
        (Benchmark::Ldo, AgentKind::NonGcn, 9u64),
    ] {
        let fom = FomConfig::calibrated(benchmark, &node, 8, 0);
        let cfg = config(seed);
        assert_eq!(cfg.rollout_k, 1, "the default rollout width is serial");

        let reference_env = SizingEnv::new(benchmark, &node, fom.clone());
        let reference = reference_serial_run(&reference_env, cfg, kind);

        let env = SizingEnv::new(benchmark, &node, fom);
        let mut designer = GcnRlDesigner::with_kind(env, cfg, kind);
        let history = designer.run();

        // Bit-identical: every record (fom and best-fom trajectories), the
        // best parameter vector and the best report all match exactly.
        assert_eq!(history, reference, "{benchmark:?}/{kind:?} diverged");
    }
}

#[test]
fn wider_rollouts_change_the_trajectory_but_keep_the_budget() {
    let node = TechnologyNode::tsmc180();
    let fom = FomConfig::calibrated(Benchmark::TwoStageTia, &node, 8, 0);
    let serial = {
        let env = SizingEnv::new(Benchmark::TwoStageTia, &node, fom.clone());
        GcnRlDesigner::new(env, config(3)).run()
    };
    let batched = {
        let env = SizingEnv::new(Benchmark::TwoStageTia, &node, fom);
        GcnRlDesigner::new(env, config(3).with_rollout_k(4)).run()
    };
    assert_eq!(serial.len(), batched.len(), "same simulation budget");
    // Warm-up is policy-independent, so it is identical; exploration uses the
    // same RNG stream differently and diverges.
    assert_eq!(
        serial.best_curve()[..8],
        batched.best_curve()[..8],
        "warm-up phase must be unaffected by the rollout width"
    );
    assert_ne!(serial.records, batched.records);
}
