//! Black-box sizing baselines from the paper's Table I.
//!
//! All baselines drive the same [`SizingEnv`](gcnrl::SizingEnv) through its
//! flat unit-vector interface (`[0, 1]^d`), so their FoM trajectories are
//! directly comparable to the RL methods:
//!
//! * [`random_search`] — uniform sampling.
//! * [`evolution_strategy`] — a (µ, λ) ES with Gaussian mutation and
//!   CMA-style step-size adaptation.
//! * [`bayesian_optimization`] — a Gaussian-process surrogate with an
//!   expected-improvement acquisition.
//! * [`mace`] — batch BO with a multi-objective acquisition ensemble
//!   (EI + PI + UCB), after Lyu et al. (ICML 2018).
//! * [`human_expert`] — a deterministic gm/Id-style hand sizing used as the
//!   fixed "Human" reference row.

mod bo;
mod es;
mod expert;
mod gp;
mod mace;
mod random;

pub use bo::bayesian_optimization;
pub use es::evolution_strategy;
pub use expert::human_expert;
pub use gp::GaussianProcess;
pub use mace::mace;
pub use random::random_search;
