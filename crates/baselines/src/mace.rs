use crate::bo::bo_with_name;
use gcnrl::{RunHistory, SizingEnv};

/// Batch size of the acquisition ensemble.
const BATCH: usize = 3;

/// MACE: batch Bayesian optimisation with a multi-objective acquisition
/// ensemble (Lyu et al., ICML 2018), the strongest black-box baseline in the
/// paper.
///
/// Our implementation reuses the GP surrogate from the BO baseline and
/// approximates the acquisition ensemble by taking the top-`BATCH` candidates
/// of the expected-improvement front per iteration, which captures the method's
/// defining property — several simulations per surrogate refit — without the
/// full multi-objective NSGA-II machinery.  Each acquisition batch is scored
/// through the same `RolloutBatch` population path the other optimizers use,
/// so the engine sees it as one parallel, cache-deduplicated round.
pub fn mace(env: &SizingEnv, budget: usize, seed: u64) -> RunHistory {
    bo_with_name(env, budget, seed, "MACE", BATCH)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnrl::FomConfig;
    use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};

    #[test]
    fn mace_runs_and_is_labelled() {
        let node = TechnologyNode::tsmc180();
        let fom = FomConfig::calibrated(Benchmark::Ldo, &node, 6, 0);
        let env = SizingEnv::new(Benchmark::Ldo, &node, fom);
        let h = mace(&env, 24, 5);
        assert_eq!(h.len(), 24);
        assert_eq!(h.method, "MACE");
    }
}
