use gcnrl_linalg::{Cholesky, Matrix};

/// A Gaussian-process regressor with a squared-exponential kernel, used as the
/// surrogate model in [`bayesian_optimization`](crate::bayesian_optimization)
/// and [`mace`](crate::mace).
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    lengthscale: f64,
    signal_var: f64,
    noise_var: f64,
    x: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    chol: Option<Cholesky>,
    y_mean: f64,
}

impl GaussianProcess {
    /// Creates a GP with the given squared-exponential hyper-parameters.
    pub fn new(lengthscale: f64, signal_var: f64, noise_var: f64) -> Self {
        GaussianProcess {
            lengthscale,
            signal_var,
            noise_var,
            x: Vec::new(),
            alpha: Vec::new(),
            chol: None,
            y_mean: 0.0,
        }
    }

    fn kernel(&self, a: &[f64], b: &[f64]) -> f64 {
        let sq: f64 = a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum();
        self.signal_var * (-0.5 * sq / (self.lengthscale * self.lengthscale)).exp()
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Returns `true` if the GP has no training data.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Fits the GP to `(x, y)` pairs (re-fits from scratch).
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` have different lengths.
    pub fn fit(&mut self, xs: &[Vec<f64>], ys: &[f64]) {
        assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
        self.x = xs.to_vec();
        if xs.is_empty() {
            self.chol = None;
            self.alpha.clear();
            return;
        }
        let n = xs.len();
        self.y_mean = ys.iter().sum::<f64>() / n as f64;
        let centered: Vec<f64> = ys.iter().map(|y| y - self.y_mean).collect();
        let k = Matrix::from_fn(n, n, |i, j| {
            self.kernel(&xs[i], &xs[j]) + if i == j { self.noise_var } else { 0.0 }
        });
        let chol = Cholesky::new(&k).expect("kernel matrix is positive definite");
        self.alpha = chol.solve(&centered).expect("dimensions match");
        self.chol = Some(chol);
    }

    /// Predictive mean and variance at `x`.
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        let Some(chol) = &self.chol else {
            return (self.y_mean, self.signal_var);
        };
        let k_star: Vec<f64> = self.x.iter().map(|xi| self.kernel(xi, x)).collect();
        let mean = self.y_mean
            + k_star
                .iter()
                .zip(&self.alpha)
                .map(|(k, a)| k * a)
                .sum::<f64>();
        let v = chol.solve(&k_star).expect("dimensions match");
        let var = self.kernel(x, x) - k_star.iter().zip(&v).map(|(k, vi)| k * vi).sum::<f64>();
        (mean, var.max(1e-12))
    }
}

/// Standard-normal probability density.
pub(crate) fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard-normal cumulative distribution (Abramowitz–Stegun erf approximation).
pub(crate) fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26, |error| < 1.5e-7.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Expected improvement of a maximisation problem at predictive `(mean, var)`
/// over the incumbent `best`.
pub(crate) fn expected_improvement(mean: f64, var: f64, best: f64) -> f64 {
    let std = var.sqrt();
    if std < 1e-12 {
        return (mean - best).max(0.0);
    }
    let z = (mean - best) / std;
    (mean - best) * normal_cdf(z) + std * normal_pdf(z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gp_interpolates_training_points() {
        let xs = vec![vec![0.0], vec![0.5], vec![1.0]];
        let ys = vec![0.0, 1.0, 0.0];
        let mut gp = GaussianProcess::new(0.3, 1.0, 1e-6);
        gp.fit(&xs, &ys);
        for (x, y) in xs.iter().zip(&ys) {
            let (m, v) = gp.predict(x);
            assert!((m - y).abs() < 0.05, "mean {m} vs {y}");
            assert!(v < 0.05);
        }
        // Far from data, the variance grows back towards the prior.
        let (_, v_far) = gp.predict(&[5.0]);
        assert!(v_far > 0.5);
        assert_eq!(gp.len(), 3);
        assert!(!gp.is_empty());
    }

    #[test]
    fn empty_gp_returns_prior() {
        let gp = GaussianProcess::new(0.3, 2.0, 1e-6);
        let (m, v) = gp.predict(&[0.3]);
        assert_eq!(m, 0.0);
        assert_eq!(v, 2.0);
    }

    #[test]
    fn normal_functions_are_sane() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!(normal_cdf(5.0) > 0.999);
        assert!(normal_cdf(-5.0) < 0.001);
        assert!((normal_pdf(0.0) - 0.3989).abs() < 1e-3);
    }

    #[test]
    fn expected_improvement_prefers_high_mean_and_high_variance() {
        let ei_good_mean = expected_improvement(1.0, 0.01, 0.5);
        let ei_bad_mean = expected_improvement(0.0, 0.01, 0.5);
        assert!(ei_good_mean > ei_bad_mean);
        let ei_high_var = expected_improvement(0.4, 1.0, 0.5);
        let ei_low_var = expected_improvement(0.4, 0.0001, 0.5);
        assert!(ei_high_var > ei_low_var);
    }
}
