use gcnrl::{RunHistory, SizingEnv};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform random search over the unit design space.
///
/// This is the paper's "Random" row: every episode draws an independent
/// uniform sample of all parameters.
pub fn random_search(env: &SizingEnv, budget: usize, seed: u64) -> RunHistory {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut history = RunHistory::new("Random");
    let d = env.num_unit_parameters();
    for _ in 0..budget {
        let unit: Vec<f64> = (0..d).map(|_| rng.gen::<f64>()).collect();
        let outcome = env.evaluate_unit(&unit);
        history.record(outcome.fom, &outcome.params, &outcome.report);
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnrl::FomConfig;
    use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};

    #[test]
    fn random_search_runs_and_improves_over_first_sample() {
        let node = TechnologyNode::tsmc180();
        let fom = FomConfig::calibrated(Benchmark::TwoStageTia, &node, 8, 0);
        let env = SizingEnv::new(Benchmark::TwoStageTia, &node, fom);
        let h = random_search(&env, 25, 1);
        assert_eq!(h.len(), 25);
        assert_eq!(h.method, "Random");
        assert!(h.best_fom() >= h.records[0].fom);
        // Determinism per seed.
        assert_eq!(random_search(&env, 5, 2).best_curve(), random_search(&env, 5, 2).best_curve());
    }
}
