use gcnrl::{RunHistory, SizingEnv};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples evaluated per engine batch: bounds candidate memory while keeping
/// the worker pool saturated.
const BATCH: usize = 256;

/// Uniform random search over the unit design space.
///
/// This is the paper's "Random" row: every episode draws an independent
/// uniform sample of all parameters. Samples are scored as
/// [`gcnrl_rl::RolloutBatch`]es through the environment's evaluation engine,
/// which parallelises the simulator calls without changing the recorded
/// trajectory (sampling order and results are identical to the serial loop).
pub fn random_search(env: &SizingEnv, budget: usize, seed: u64) -> RunHistory {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut history = RunHistory::new("Random");
    let d = env.num_unit_parameters();
    let mut remaining = budget;
    while remaining > 0 {
        let batch = remaining.min(BATCH);
        let units: Vec<Vec<f64>> = (0..batch)
            .map(|_| (0..d).map(|_| rng.gen::<f64>()).collect())
            .collect();
        for r in env.rollout_units(units).iter() {
            history.record(r.reward, &r.outcome.params, &r.outcome.report);
        }
        remaining -= batch;
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnrl::FomConfig;
    use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};

    #[test]
    fn random_search_runs_and_improves_over_first_sample() {
        let node = TechnologyNode::tsmc180();
        let fom = FomConfig::calibrated(Benchmark::TwoStageTia, &node, 8, 0);
        let env = SizingEnv::new(Benchmark::TwoStageTia, &node, fom);
        let h = random_search(&env, 25, 1);
        assert_eq!(h.len(), 25);
        assert_eq!(h.method, "Random");
        assert!(h.best_fom() >= h.records[0].fom);
        // Determinism per seed.
        assert_eq!(
            random_search(&env, 5, 2).best_curve(),
            random_search(&env, 5, 2).best_curve()
        );
    }
}
