use gcnrl::{RunHistory, SizingEnv};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Normal};

/// A (µ, λ) evolution strategy with Gaussian mutation and 1/5th-rule style
/// step-size adaptation (the paper's "ES" baseline, CMA-ES tutorial of
/// Hansen).
///
/// `budget` counts simulator evaluations, so the comparison against the RL
/// methods is simulation-for-simulation fair.
pub fn evolution_strategy(env: &SizingEnv, budget: usize, seed: u64) -> RunHistory {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut history = RunHistory::new("ES");
    let d = env.num_unit_parameters();

    let lambda = 4 + (3.0 * (d as f64).ln()).floor() as usize;
    let mu = (lambda / 2).max(1);
    let mut sigma = 0.3;

    // Initial mean at the centre of the unit cube.
    let mut mean = vec![0.5; d];
    let mut evaluations = 0;
    let mut best_parent_fom = f64::NEG_INFINITY;

    while evaluations < budget {
        let normal: Normal<f64> = Normal::new(0.0, 1.0).expect("valid sigma");
        // Draw the whole generation first, then score it as one rollout batch
        // through the evaluation engine: the population is mutually
        // independent, so the engine can simulate it in parallel while the
        // RNG stream and the recorded trajectory stay identical to the serial
        // loop.
        let population = lambda.min(budget - evaluations);
        let candidates: Vec<Vec<f64>> = (0..population)
            .map(|_| {
                mean.iter()
                    .map(|m| (m + sigma * normal.sample(&mut rng)).clamp(0.0, 1.0))
                    .collect()
            })
            .collect();
        let generation = env.rollout_units(candidates);
        for r in generation.iter() {
            history.record(r.reward, &r.outcome.params, &r.outcome.report);
            evaluations += 1;
        }
        if generation.is_empty() {
            break;
        }
        // Recombine: new mean is the average of the µ highest-priority
        // rollouts (priority = reward, stable rank on ties).
        let order = generation.ranked();
        let elite = &order[..mu.min(order.len())];
        for (i, m) in mean.iter_mut().enumerate() {
            *m = elite.iter().map(|&e| generation[e].action[i]).sum::<f64>() / elite.len() as f64;
        }
        // Step-size adaptation: grow when the generation improved on the
        // previous parent, shrink otherwise.
        let gen_best = generation[elite[0]].reward;
        if gen_best > best_parent_fom {
            sigma = (sigma * 1.15).min(0.5);
            best_parent_fom = gen_best;
        } else {
            sigma = (sigma * 0.85).max(0.01);
        }
        // A little exploration noise on the mean keeps the search from
        // collapsing prematurely.
        if rng.gen::<f64>() < 0.05 {
            for m in &mut mean {
                *m = (*m + 0.05 * normal.sample(&mut rng)).clamp(0.0, 1.0);
            }
        }
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnrl::FomConfig;
    use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};

    #[test]
    fn es_respects_budget_and_is_deterministic() {
        let node = TechnologyNode::tsmc180();
        let fom = FomConfig::calibrated(Benchmark::Ldo, &node, 8, 0);
        let env = SizingEnv::new(Benchmark::Ldo, &node, fom);
        let h = evolution_strategy(&env, 30, 3);
        assert_eq!(h.len(), 30);
        assert_eq!(h.method, "ES");
        assert_eq!(
            evolution_strategy(&env, 12, 4).best_curve(),
            evolution_strategy(&env, 12, 4).best_curve()
        );
    }

    #[test]
    fn es_best_curve_is_monotone() {
        let node = TechnologyNode::tsmc180();
        let fom = FomConfig::calibrated(Benchmark::TwoStageTia, &node, 6, 0);
        let env = SizingEnv::new(Benchmark::TwoStageTia, &node, fom);
        let h = evolution_strategy(&env, 20, 0);
        assert!(h.best_curve().windows(2).all(|w| w[1] >= w[0]));
    }
}
