use crate::gp::{expected_improvement, GaussianProcess};
use gcnrl::{RunHistory, SizingEnv};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How many random warm-up evaluations seed the surrogate.
const WARMUP: usize = 10;
/// How many random candidates the acquisition is evaluated on per iteration.
const CANDIDATES: usize = 256;
/// Cap on the GP training-set size (the O(N³) fit is the reason the paper
/// could not run BO for the full 10 000 steps).
const MAX_GP_POINTS: usize = 256;

/// Gaussian-process Bayesian optimisation with an expected-improvement
/// acquisition (the paper's "BO" baseline, after Snoek et al.).
pub fn bayesian_optimization(env: &SizingEnv, budget: usize, seed: u64) -> RunHistory {
    bo_with_name(env, budget, seed, "BO", 1)
}

pub(crate) fn bo_with_name(
    env: &SizingEnv,
    budget: usize,
    seed: u64,
    name: &str,
    batch: usize,
) -> RunHistory {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut history = RunHistory::new(name);
    let d = env.num_unit_parameters();

    let mut xs: Vec<Vec<f64>> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    // Scores a set of points as one rollout batch (parallel simulation; the
    // recorded trajectory is identical to evaluating them one by one).
    let evaluate_batch = |points: Vec<Vec<f64>>,
                          xs: &mut Vec<Vec<f64>>,
                          ys: &mut Vec<f64>,
                          history: &mut RunHistory| {
        for r in env.rollout_units(points) {
            history.record(r.reward, &r.outcome.params, &r.outcome.report);
            xs.push(r.action);
            ys.push(r.reward);
        }
    };

    // Warm-up with random samples, scored as one batch.
    let warmup: Vec<Vec<f64>> = (0..WARMUP.min(budget))
        .map(|_| (0..d).map(|_| rng.gen::<f64>()).collect())
        .collect();
    evaluate_batch(warmup, &mut xs, &mut ys, &mut history);

    let mut gp = GaussianProcess::new(0.25 * (d as f64).sqrt(), 1.0, 1e-4);
    while history.len() < budget {
        // Fit on (at most) the newest MAX_GP_POINTS observations.
        let start = xs.len().saturating_sub(MAX_GP_POINTS);
        gp.fit(&xs[start..], &ys[start..]);
        let best = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);

        // Pick the top `batch` acquisition maximisers among random candidates.
        let mut scored: Vec<(f64, Vec<f64>)> = (0..CANDIDATES)
            .map(|_| {
                let x: Vec<f64> = (0..d).map(|_| rng.gen::<f64>()).collect();
                let (mean, var) = gp.predict(&x);
                (expected_improvement(mean, var, best), x)
            })
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let room = budget - history.len();
        let chosen: Vec<Vec<f64>> = scored
            .into_iter()
            .take(batch.max(1).min(room))
            .map(|(_, x)| x)
            .collect();
        evaluate_batch(chosen, &mut xs, &mut ys, &mut history);
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnrl::FomConfig;
    use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};

    #[test]
    fn bo_runs_within_budget_and_beats_its_own_warmup_on_average() {
        let node = TechnologyNode::tsmc180();
        let fom = FomConfig::calibrated(Benchmark::TwoStageTia, &node, 8, 0);
        let env = SizingEnv::new(Benchmark::TwoStageTia, &node, fom);
        let h = bayesian_optimization(&env, 30, 0);
        assert_eq!(h.len(), 30);
        assert_eq!(h.method, "BO");
        assert!(h.best_curve().windows(2).all(|w| w[1] >= w[0]));
    }
}
