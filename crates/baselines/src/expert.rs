use gcnrl::{RunHistory, SizingEnv};
use gcnrl_circuit::{
    benchmarks::Benchmark, ComponentKind, ComponentParams, MosSizing, ParamVector,
};

/// A deterministic "human expert" sizing for each benchmark circuit.
///
/// The paper's human rows come from unpublished Stanford design-contest
/// entries; as a reproducible stand-in we encode the gm/Id-style hand rules a
/// designer would apply (long channels where gain matters, wide input devices
/// for noise, moderate mirrors, a large pass device for the LDO), expressed as
/// fractions of each parameter's legal range.
pub fn human_expert(env: &SizingEnv) -> RunHistory {
    let circuit = env.circuit();
    let space = env.design_space();
    let benchmark = env.benchmark();

    let params: Vec<ComponentParams> = circuit
        .components()
        .iter()
        .enumerate()
        .map(|(idx, comp)| {
            let bounds = space.bounds(idx);
            let unit = expert_unit(benchmark, &comp.name, comp.kind);
            match comp.kind {
                ComponentKind::Nmos | ComponentKind::Pmos => ComponentParams::Mos(MosSizing::new(
                    bounds[0].from_unit(unit[0]),
                    bounds[1].from_unit(unit[1]),
                    bounds[2].from_unit(unit[2]).round() as u32,
                )),
                ComponentKind::Resistor => {
                    ComponentParams::Resistance(bounds[0].from_unit(unit[0]))
                }
                ComponentKind::Capacitor => {
                    ComponentParams::Capacitance(bounds[0].from_unit(unit[0]))
                }
            }
        })
        .collect();

    let outcome = env.evaluate_params(ParamVector::new(params));
    let mut history = RunHistory::new("Human");
    history.record(outcome.fom, &outcome.params, &outcome.report);
    history
}

/// Hand-tuned per-device unit settings `[w, l, m]` (or `[value, _, _]` for
/// passives).  Values are fractions of the legal range.
fn expert_unit(benchmark: Benchmark, name: &str, kind: ComponentKind) -> [f64; 3] {
    let default_mos = [0.25, 0.15, 0.2];
    let default_passive = [0.5, 0.0, 0.0];
    match benchmark {
        Benchmark::TwoStageTia => match name {
            "T1" => [0.2, 0.1, 0.1],
            "T2" => [0.5, 0.1, 0.3],
            "T3" | "T4" => [0.35, 0.15, 0.2],
            "T5" => [0.2, 0.1, 0.1],
            "T6" => [0.5, 0.08, 0.3],
            "R6" => [0.45, 0.0, 0.0],
            "RF" => [0.62, 0.0, 0.0],
            "CL" => [0.2, 0.0, 0.0],
            _ => default_mos,
        },
        Benchmark::TwoStageVoltageAmp => match name {
            "T1" | "T2" => [0.55, 0.35, 0.4],
            "T3" | "T4" => [0.35, 0.4, 0.25],
            "T5" => [0.55, 0.2, 0.4],
            "T6" => [0.3, 0.25, 0.3],
            "TB1" | "TB2" => [0.2, 0.3, 0.15],
            "CC" => [0.3, 0.0, 0.0],
            "CL" => [0.25, 0.0, 0.0],
            "CS" => [0.6, 0.0, 0.0],
            "CF" => [0.3, 0.0, 0.0],
            _ => default_mos,
        },
        Benchmark::ThreeStageTia => match name {
            "T0" => [0.25, 0.35, 0.2],
            "T1" => [0.2, 0.1, 0.1],
            "T2" | "T3" | "T4" => [0.45, 0.1, 0.3],
            "T16" => [0.5, 0.08, 0.35],
            "RB" => [0.55, 0.0, 0.0],
            _ if kind == ComponentKind::Resistor => default_passive,
            _ => [0.3, 0.12, 0.2],
        },
        Benchmark::Ldo => match name {
            "T1" | "T2" => [0.5, 0.35, 0.35],
            "T3" | "T4" => [0.35, 0.35, 0.25],
            "T5" | "T6" | "T7" => [0.25, 0.3, 0.2],
            "T8" => [0.95, 0.05, 0.95],
            "R1" => [0.45, 0.0, 0.0],
            "R2" => [0.45, 0.0, 0.0],
            "CL" => [0.75, 0.0, 0.0],
            _ => default_mos,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnrl::FomConfig;
    use gcnrl_circuit::TechnologyNode;

    #[test]
    fn expert_design_is_legal_and_scores_for_every_benchmark() {
        let node = TechnologyNode::tsmc180();
        for b in Benchmark::ALL {
            let fom = FomConfig::calibrated(b, &node, 8, 0);
            let env = SizingEnv::new(b, &node, fom);
            let h = human_expert(&env);
            assert_eq!(h.len(), 1);
            assert_eq!(h.method, "Human");
            let params = h.best_params.as_ref().expect("one design recorded");
            assert!(
                env.design_space().validate(params),
                "{b} expert design illegal"
            );
            assert!(h.best_fom().is_finite());
        }
    }

    #[test]
    fn expert_is_deterministic() {
        let node = TechnologyNode::tsmc180();
        let fom = FomConfig::calibrated(Benchmark::TwoStageTia, &node, 8, 0);
        let env = SizingEnv::new(Benchmark::TwoStageTia, &node, fom);
        assert_eq!(human_expert(&env).best_fom(), human_expert(&env).best_fom());
    }
}
