//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for
//! the local serde compat crate.
//!
//! `syn`/`quote` are unavailable offline, so the item is parsed directly from
//! the `proc_macro::TokenStream`. Supported shapes (everything this workspace
//! derives on): non-generic structs with named fields, tuple structs, unit
//! structs, and enums whose variants are unit, tuple or struct-like.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum ItemKind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: VariantFields,
}

#[derive(Debug)]
enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

/// Derives `serde::Serialize` (value-tree flavour) for the annotated item.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .expect("generated Serialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize` (value-tree flavour) for the annotated item.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated Deserialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    skip_attrs_and_vis(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos)?;
    if keyword != "struct" && keyword != "enum" {
        return Err(format!(
            "serde compat derive supports struct/enum, found `{keyword}`"
        ));
    }
    let name = expect_ident(&tokens, &mut pos)?;

    if matches!(peek_punct(&tokens, pos), Some('<')) {
        return Err(format!(
            "serde compat derive does not support generic type `{name}`; \
             implement Serialize/Deserialize by hand"
        ));
    }

    if keyword == "enum" {
        let body = expect_group(&tokens, &mut pos, Delimiter::Brace)?;
        return Ok(Item {
            name,
            kind: ItemKind::Enum(parse_variants(&body)?),
        });
    }

    match tokens.get(pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = parse_named_fields(&g.stream().into_iter().collect::<Vec<_>>())?;
            Ok(Item {
                name,
                kind: ItemKind::NamedStruct(fields),
            })
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let count = count_tuple_fields(&g.stream().into_iter().collect::<Vec<_>>());
            Ok(Item {
                name,
                kind: ItemKind::TupleStruct(count),
            })
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item {
            name,
            kind: ItemKind::UnitStruct,
        }),
        other => Err(format!("unexpected token after struct name: {other:?}")),
    }
}

/// Skips any number of outer attributes (`#[...]`, including expanded doc
/// comments) and a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_attrs_and_vis(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1; // '#'
                if matches!(tokens.get(*pos), Some(TokenTree::Group(_))) {
                    *pos += 1; // the [...] group
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *pos += 1;
                if matches!(
                    tokens.get(*pos),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *pos += 1; // (crate) / (super) / (in path)
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> Result<String, String> {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            Ok(id.to_string())
        }
        other => Err(format!("expected identifier, found {other:?}")),
    }
}

fn expect_group(
    tokens: &[TokenTree],
    pos: &mut usize,
    delimiter: Delimiter,
) -> Result<Vec<TokenTree>, String> {
    match tokens.get(*pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == delimiter => {
            *pos += 1;
            Ok(g.stream().into_iter().collect())
        }
        other => Err(format!("expected {delimiter:?} group, found {other:?}")),
    }
}

fn peek_punct(tokens: &[TokenTree], pos: usize) -> Option<char> {
    match tokens.get(pos) {
        Some(TokenTree::Punct(p)) => Some(p.as_char()),
        _ => None,
    }
}

/// Advances past one type, stopping at a `,` at angle-bracket depth zero.
/// Parenthesised/bracketed sub-trees arrive as single `Group` tokens, so only
/// `<`/`>` need explicit depth tracking.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut depth = 0usize;
    while let Some(token) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let field = expect_ident(tokens, &mut pos)?;
        match peek_punct(tokens, pos) {
            Some(':') => pos += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{field}`, found {other:?}"
                ))
            }
        }
        skip_type(tokens, &mut pos);
        if matches!(peek_punct(tokens, pos), Some(',')) {
            pos += 1;
        }
        fields.push(field);
    }
    Ok(fields)
}

fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    let mut count = 0usize;
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_type(tokens, &mut pos);
        count += 1;
        if matches!(peek_punct(tokens, pos), Some(',')) {
            pos += 1;
        }
    }
    count
}

fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs_and_vis(tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(tokens, &mut pos)?;
        let fields = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantFields::Tuple(count_tuple_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                ))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantFields::Named(parse_named_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                )?)
            }
            _ => VariantFields::Unit,
        };
        // Skip a discriminant (`= expr`) if present, then the separator.
        if matches!(peek_punct(tokens, pos), Some('=')) {
            pos += 1;
            while pos < tokens.len() && !matches!(peek_punct(tokens, pos), Some(',')) {
                pos += 1;
            }
        }
        if matches!(peek_punct(tokens, pos), Some(',')) {
            pos += 1;
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        ItemKind::TupleStruct(count) => {
            let entries: Vec<String> = (0..*count)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", entries.join(", "))
        }
        ItemKind::UnitStruct => "::serde::Value::Null".to_owned(),
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| ser_variant_arm(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn ser_variant_arm(name: &str, variant: &Variant) -> String {
    let vname = &variant.name;
    match &variant.fields {
        VariantFields::Unit => format!(
            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from({vname:?})),"
        ),
        VariantFields::Tuple(count) => {
            let binders: Vec<String> = (0..*count).map(|i| format!("f{i}")).collect();
            let values: Vec<String> = binders
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b})"))
                .collect();
            format!(
                "{name}::{vname}({binds}) => ::serde::Value::Map(::std::vec![(\
                     ::std::string::String::from({vname:?}), \
                     ::serde::Value::Seq(::std::vec![{values}])\
                 )]),",
                binds = binders.join(", "),
                values = values.join(", ")
            )
        }
        VariantFields::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(::std::vec![(\
                     ::std::string::String::from({vname:?}), \
                     ::serde::Value::Map(::std::vec![{entries}])\
                 )]),",
                binds = fields.join(", "),
                entries = entries.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                             ::serde::Value::map_get(entries, {f:?})\
                                 .unwrap_or(&::serde::Value::Null)\
                         ).map_err(|e| ::serde::Error::custom(\
                             ::std::format!(\"{name}.{f}: {{e}}\")))?"
                    )
                })
                .collect();
            format!(
                "let entries = value.as_map().ok_or_else(|| \
                     ::serde::Error::custom(\"expected map for struct {name}\"))?;\n\
                 ::core::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        ItemKind::TupleStruct(count) => {
            let inits: Vec<String> = (0..*count)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(seq.get({i}).unwrap_or(&::serde::Value::Null))?"
                    )
                })
                .collect();
            format!(
                "let seq = value.as_seq().ok_or_else(|| \
                     ::serde::Error::custom(\"expected sequence for tuple struct {name}\"))?;\n\
                 ::core::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        ItemKind::UnitStruct => {
            format!("let _ = value; ::core::result::Result::Ok({name})")
        }
        ItemKind::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn from_value(value: &::serde::Value) -> \
                 ::core::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = Vec::new();
    let mut data_arms = Vec::new();
    for variant in variants {
        let vname = &variant.name;
        match &variant.fields {
            VariantFields::Unit => unit_arms.push(format!(
                "{vname:?} => ::core::result::Result::Ok({name}::{vname}),"
            )),
            VariantFields::Tuple(count) => {
                let inits: Vec<String> = (0..*count)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::from_value(\
                                 seq.get({i}).unwrap_or(&::serde::Value::Null))?"
                        )
                    })
                    .collect();
                data_arms.push(format!(
                    "{vname:?} => {{\n\
                         let seq = payload.as_seq().ok_or_else(|| ::serde::Error::custom(\
                             \"expected sequence payload for {name}::{vname}\"))?;\n\
                         ::core::result::Result::Ok({name}::{vname}({}))\n\
                     }}",
                    inits.join(", ")
                ));
            }
            VariantFields::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(\
                                 ::serde::Value::map_get(entries, {f:?})\
                                     .unwrap_or(&::serde::Value::Null))?"
                        )
                    })
                    .collect();
                data_arms.push(format!(
                    "{vname:?} => {{\n\
                         let entries = payload.as_map().ok_or_else(|| ::serde::Error::custom(\
                             \"expected map payload for {name}::{vname}\"))?;\n\
                         ::core::result::Result::Ok({name} :: {vname} {{ {} }})\n\
                     }}",
                    inits.join(", ")
                ));
            }
        }
    }
    format!(
        "match value {{\n\
             ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit}\n\
                 other => ::core::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(\"unknown unit variant `{{other}}` for enum {name}\"))),\n\
             }},\n\
             ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, payload) = &entries[0];\n\
                 let _ = payload;\n\
                 match tag.as_str() {{\n\
                     {data}\n\
                     other => ::core::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"unknown variant `{{other}}` for enum {name}\"))),\n\
                 }}\n\
             }}\n\
             _ => ::core::result::Result::Err(::serde::Error::custom(\
                 \"expected string or single-entry map for enum {name}\")),\n\
         }}",
        unit = unit_arms.join("\n"),
        data = data_arms.join("\n")
    )
}
