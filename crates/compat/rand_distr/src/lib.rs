//! Offline, API-compatible subset of the `rand_distr` crate: the
//! [`Distribution`] trait and the [`Normal`] distribution, which is all the
//! code base uses (exploration noise and ES mutations).

use rand::{Rng, RngCore};

/// Types that can produce samples of `T` from a generator.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned by [`Normal::new`] for invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation was negative or non-finite.
    BadVariance,
    /// The mean was non-finite.
    MeanTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation is invalid"),
            NormalError::MeanTooSmall => write!(f, "mean is invalid"),
        }
    }
}

impl std::error::Error for NormalError {}

/// The normal distribution `N(mean, std_dev^2)`, sampled via Box–Muller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F> {
    mean: F,
    std_dev: F,
}

impl Normal<f64> {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns [`NormalError::BadVariance`] when `std_dev` is negative or
    /// non-finite, matching real `rand_distr` behaviour.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        Ok(Normal { mean, std_dev })
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; the second variate is discarded so the sampler stays
        // stateless (determinism only depends on the rng stream).
        let u1: f64 = loop {
            let u: f64 = rng.gen();
            if u > 0.0 {
                break u;
            }
        };
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_sigma() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::NAN).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn moments_are_roughly_right() {
        let normal = Normal::new(2.0, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn zero_sigma_is_constant() {
        let normal = Normal::new(1.5, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(normal.sample(&mut rng), 1.5);
        }
    }
}
