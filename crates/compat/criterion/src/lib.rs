//! Offline, API-compatible subset of `criterion`.
//!
//! Provides the macro + type surface the benches use ([`Criterion`],
//! [`BenchmarkGroup`], [`Bencher`], [`black_box`], [`criterion_group!`],
//! [`criterion_main!`]) backed by a simple measured-wall-clock harness: each
//! benchmark is warmed up, then timed over `sample_size` samples, and the
//! median/mean/min per-iteration times are printed in criterion-like form.
//! There is no statistical regression analysis and no HTML report.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n{name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        run_benchmark(&id.into(), 10, f);
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(&id, self.sample_size, f);
    }

    /// Ends the group (formatting no-op, kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code to
/// measure.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it enough times to smooth scheduler noise.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    // Calibration: find an iteration count that takes ≥ ~5 ms per sample,
    // so short routines are not dominated by timer resolution.
    let mut iters: u64 = 1;
    loop {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        if bencher.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters = (iters * 4).max(iters + 1);
    }

    let mut per_iter: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut bencher = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            bencher.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));

    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter[0];
    println!(
        "  {id:<44} median {:>12}  mean {:>12}  min {:>12}  ({} samples x {} iters)",
        format_time(median),
        format_time(mean),
        format_time(min),
        sample_size,
        iters
    );
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Bundles benchmark functions into a group runner, like real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_times_a_function() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("compat_smoke");
        group.sample_size(3);
        let mut hits = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                hits += 1;
                black_box(hits)
            })
        });
        group.finish();
        assert!(hits > 0);
    }

    #[test]
    fn time_formatting_picks_sensible_units() {
        assert!(format_time(2e-9).ends_with("ns"));
        assert!(format_time(2e-6).ends_with("µs"));
        assert!(format_time(2e-3).ends_with("ms"));
        assert!(format_time(2.0).ends_with("s"));
    }
}
