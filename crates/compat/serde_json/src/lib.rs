//! Offline, API-compatible subset of `serde_json`: renders the local serde
//! [`Value`] tree to JSON text and parses JSON text back into it.
//!
//! Floats print through Rust's shortest round-trip formatting (`{:?}`), so a
//! serialise→parse cycle reproduces every finite `f64` bit-exactly — which the
//! checkpoint round-trip tests rely on. Non-finite floats render as `null`,
//! matching real serde_json.

use serde::{Deserialize, Serialize, Value};

/// JSON serialisation/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialises `value` to compact JSON.
///
/// # Errors
///
/// Infallible for the value-tree model; the `Result` mirrors real serde_json.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises `value` to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible for the value-tree model; the `Result` mirrors real serde_json.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserialisable type.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: for<'de> Deserialize<'de>>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value).map_err(Error::from)
}

/// Parses JSON text into the dynamic [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or trailing garbage.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Num(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_compound(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Map(entries) => {
            write_compound(out, indent, depth, '{', '}', entries.len(), |out, i| {
                write_string(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &entries[i].1, indent, depth + 1);
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                expected as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty remainder");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number bytes"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_round_trip_bit_exactly() {
        for f in [
            0.1f64,
            1.0 / 3.0,
            1e-300,
            -2.5e17,
            0.0,
            -0.0,
            123456.789012345,
        ] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} -> {json} -> {back}");
        }
    }

    #[test]
    fn integers_round_trip_exactly() {
        let json = to_string(&u64::MAX).unwrap();
        assert_eq!(json, "18446744073709551615");
        assert_eq!(from_str::<u64>(&json).unwrap(), u64::MAX);
        assert_eq!(
            from_str::<i64>("-9007199254740993").unwrap(),
            -9007199254740993
        );
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\n\"quoted\"\tünïcode \\ done".to_owned();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn pretty_output_is_reparsable_and_indented() {
        let value = Value::Map(vec![
            (
                "a".to_owned(),
                Value::Seq(vec![Value::UInt(1), Value::Bool(false)]),
            ),
            ("b".to_owned(), Value::Null),
        ]);
        let pretty = to_string_pretty(&value).unwrap();
        assert!(pretty.contains("\n  \"a\""), "pretty output:\n{pretty}");
        assert_eq!(parse_value(&pretty).unwrap(), value);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<f64>("[1,").is_err());
        assert!(from_str::<f64>("nul").is_err());
        assert!(from_str::<f64>("1.0 garbage").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }
}
