//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! the slice of the `rand` 0.8 API the code base actually uses: the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`] with
//! `seed_from_u64`, the deterministic [`rngs::StdRng`] generator, and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — high quality,
//! fast, and fully deterministic per seed, which is all the reproduction
//! needs (it never claims cryptographic strength).

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A distribution that [`Rng::gen`] can sample from (stand-in for the
/// `Standard` distribution of real `rand`).
pub trait StandardSample: Sized {
    /// Draws one value from the generator.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A type usable as the argument of [`Rng::gen_range`] (only `Range` is
/// supported; the code base never passes `RangeInclusive`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        self.start + f64::standard_sample(rng) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer sample range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is < 2^-32 for every span used here.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_sample_range!(usize, u64, u32, i64, i32);

/// User-facing generator extension trait (the `rand::Rng` API subset).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T` (uniform `[0, 1)`
    /// for floats, uniform over all values for integers).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS entropy; here derived from the system time
    /// so the crate stays dependency-free.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded via
    /// SplitMix64 (matching real `rand`'s quality class, not its exact
    /// stream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = Self::splitmix64(&mut state);
            }
            // All-zero state would be a fixed point of xoshiro.
            if s == [0; 4] {
                s[0] = 0x9e3779b97f4a7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Returns a time-seeded generator (compat shim for `rand::thread_rng`).
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

pub mod seq {
    //! Sequence-related helpers.

    use super::{Rng, RngCore};

    /// Slice extension trait providing an in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice uniformly in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<f64> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<f64> = (0..16).map(|_| b.gen()).collect();
        let vc: Vec<f64> = (0..16).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_is_in_unit_interval_and_range_is_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let r = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&r));
            let i = rng.gen_range(0usize..10);
            assert!(i < 10);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn mean_of_uniform_is_near_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }
}
