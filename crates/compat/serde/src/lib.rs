//! Offline, API-compatible subset of `serde`.
//!
//! The environment has no crates.io access, so this crate provides the
//! fraction of serde's surface the code base uses: the [`Serialize`] and
//! [`Deserialize`] traits, their derive macros (re-exported from the local
//! `serde_derive` proc-macro crate), and the intermediate [`Value`] tree the
//! local `serde_json` renders to and parses from.
//!
//! Unlike real serde's visitor architecture, this implementation round-trips
//! through a concrete [`Value`] enum. That is dramatically simpler, and for
//! the data shapes in this workspace (checkpoints, reports, configs) it is
//! behaviourally equivalent: every derived type serialises to the same JSON
//! object layout real serde would produce.

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically typed serialisation tree (JSON data model plus exact
/// integers so `u64`/`i64` round-trip without floating-point loss).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Exact signed integer.
    Int(i64),
    /// Exact unsigned integer.
    UInt(u64),
    /// Floating-point number.
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries of a map value.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements of a sequence value.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64` (accepts Int/UInt/Num).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// Numeric payload as an exact `i128` when lossless.
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(i128::from(*i)),
            Value::UInt(u) => Some(i128::from(*u)),
            Value::Num(f) if f.fract() == 0.0 && f.abs() < 9.007_199_254_740_992e15 => {
                Some(*f as i128)
            }
            _ => None,
        }
    }

    /// Looks up `key` in a map's entries.
    pub fn map_get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Serialisation/deserialisation error (a message, as in `serde::de::Error`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to the serialisation tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
///
/// The lifetime parameter exists only for signature compatibility with real
/// serde (`for<'de> Deserialize<'de>` bounds in downstream code); this
/// implementation never borrows from the input.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds `Self` from the serialisation tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

macro_rules! serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_i128()
                    .ok_or_else(|| Error::custom(concat!("expected integer for ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_i128()
                    .ok_or_else(|| Error::custom(concat!("expected integer for ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            // Non-finite floats serialise to null (JSON has no inf/NaN).
            Value::Null => Ok(f64::NAN),
            _ => value
                .as_f64()
                .ok_or_else(|| Error::custom("expected number for f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(f64::from(*self))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

/// Static strings deserialise by leaking the parsed string. The only user is
/// `MetricSpec { name: &'static str, .. }`, which is deserialised a handful
/// of times per process, so the leak is bounded and intentional.
impl<'de> Deserialize<'de> for &'static str {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(|s| &*Box::leak(s.to_owned().into_boxed_str()))
            .ok_or_else(|| Error::custom("expected string for &'static str"))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de> + std::fmt::Debug, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        <[T; N]>::try_from(items)
            .map_err(|items| Error::custom(format!("expected {N} elements, got {}", items.len())))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let seq = value
            .as_seq()
            .ok_or_else(|| Error::custom("expected 2-tuple"))?;
        if seq.len() != 2 {
            return Err(Error::custom("expected sequence of length 2"));
        }
        Ok((A::from_value(&seq[0])?, B::from_value(&seq[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        let seq = value
            .as_seq()
            .ok_or_else(|| Error::custom("expected 3-tuple"))?;
        if seq.len() != 3 {
            return Err(Error::custom("expected sequence of length 3"));
        }
        Ok((
            A::from_value(&seq[0])?,
            B::from_value(&seq[1])?,
            C::from_value(&seq[2])?,
        ))
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_map()
            .ok_or_else(|| Error::custom("expected map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<String, V, S>
{
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic across hasher states.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<'de, V: Deserialize<'de>, S: std::hash::BuildHasher + Default> Deserialize<'de>
    for std::collections::HashMap<String, V, S>
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_map()
            .ok_or_else(|| Error::custom("expected map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(
            u64::from_value(&18_446_744_073_709_551_615u64.to_value()),
            Ok(u64::MAX)
        );
        assert_eq!(i64::from_value(&(-42i64).to_value()), Ok(-42));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(String::from_value(&"hi".to_value()), Ok("hi".to_owned()));
        assert_eq!(Option::<f64>::from_value(&Value::Null), Ok(None));
        assert_eq!(
            Vec::<u8>::from_value(&vec![1u8, 2, 3].to_value()),
            Ok(vec![1, 2, 3])
        );
    }

    #[test]
    fn tuples_and_maps_round_trip() {
        let pair = ("x".to_owned(), 2.5f64);
        assert_eq!(<(String, f64)>::from_value(&pair.to_value()), Ok(pair));
        let mut map = std::collections::BTreeMap::new();
        map.insert("a".to_owned(), 1.0f64);
        assert_eq!(
            std::collections::BTreeMap::from_value(&map.to_value()),
            Ok(map)
        );
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(bool::from_value(&Value::Num(1.0)).is_err());
        assert!(String::from_value(&Value::Bool(true)).is_err());
        assert!(u8::from_value(&Value::Int(300)).is_err());
    }
}
