//! Offline, API-compatible subset of `proptest`.
//!
//! Implements the slice of the proptest API this workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! `prop::collection::vec`, [`ProptestConfig`], and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest: no shrinking on failure (the failing input
//! is printed instead) and no persisted failure seeds. Generation is
//! deterministic per test (seeded from the test name), so failures reproduce
//! exactly on re-run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic generator handed to strategies by the [`proptest!`] macro.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf29ce484222325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100000001b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(hash),
        }
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo..hi)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.gen_range(lo..hi)
    }
}

/// Run configuration (only the case count is honoured).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated input type.
    type Value;

    /// Draws one input.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated inputs through `f` (proptest's `prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.uniform_f64(self.start, self.end)
    }
}

impl Strategy for std::ops::Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.uniform_usize(self.start, self.end)
    }
}

impl Strategy for std::ops::Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        self.start + rng.uniform_usize(0, (self.end - self.start) as usize) as u64
    }
}

impl Strategy for std::ops::Range<i64> {
    type Value = i64;

    fn generate(&self, rng: &mut TestRng) -> i64 {
        self.start + rng.uniform_usize(0, (self.end - self.start) as usize) as i64
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// The `prop::` namespace, mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Requested length of a generated collection: either exact or a
        /// range, mirroring proptest's `SizeRange` conversions.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        /// Strategy generating `Vec`s of inputs from an element strategy.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors whose length is drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = if self.size.hi - self.size.lo <= 1 {
                    self.size.lo
                } else {
                    rng.uniform_usize(self.size.lo, self.size.hi)
                };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use super::{prop, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let result = (|| -> ::std::result::Result<(), ::std::string::String> {
                        $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(message) = result {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, message
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts inside [`proptest!`] bodies, reporting the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
}

/// Inequality assertion inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn even(n: usize) -> impl Strategy<Value = usize> {
        (0..n).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -2.5f64..7.5, n in 3usize..9) {
            prop_assert!((-2.5..7.5).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_size_ranges(
            fixed in prop::collection::vec(0.0f64..1.0, 5),
            ranged in prop::collection::vec(0usize..3, 2..6),
        ) {
            prop_assert_eq!(fixed.len(), 5);
            prop_assert!(ranged.len() >= 2 && ranged.len() < 6);
        }

        #[test]
        fn prop_map_applies(v in even(10), pair in (0usize..4, 0.0f64..1.0)) {
            prop_assert_eq!(v % 2, 0);
            prop_assert!(pair.0 < 4);
            prop_assert_ne!(pair.1, 2.0);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let strat = prop::collection::vec(0.0f64..1.0, 8);
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        assert_ne!(strat.generate(&mut a), strat.generate(&mut c));
    }
}
