use gcnrl_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// The Adam optimiser for one parameter tensor.
///
/// Every [`Linear`](crate::Linear) layer owns two `Adam` states (weight and
/// bias); the agent calls [`Adam::step_matrix`] / [`Adam::step_vector`] with
/// the raw gradients and applies the returned update.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Creates an optimiser state for `num_params` scalars with learning rate `lr`.
    pub fn new(num_params: usize, lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: vec![0.0; num_params],
            v: vec![0.0; num_params],
        }
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.lr
    }

    /// Number of update steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    fn step_flat(&mut self, grads: &[f64]) -> Vec<f64> {
        assert_eq!(grads.len(), self.m.len(), "gradient length mismatch");
        self.t += 1;
        let t = self.t as f64;
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        grads
            .iter()
            .enumerate()
            .map(|(i, g)| {
                self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
                self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
                let m_hat = self.m[i] / bias1;
                let v_hat = self.v[i] / bias2;
                self.lr * m_hat / (v_hat.sqrt() + self.eps)
            })
            .collect()
    }

    /// Computes the update (to be subtracted from the parameters) for a matrix
    /// gradient.
    ///
    /// # Panics
    ///
    /// Panics if the gradient has a different number of elements than the
    /// optimiser was created for.
    pub fn step_matrix(&mut self, grad: &Matrix) -> Matrix {
        let update = self.step_flat(grad.as_slice());
        Matrix::from_vec(grad.rows(), grad.cols(), update).expect("same shape as gradient")
    }

    /// Computes the update for a vector gradient.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Adam::step_matrix`].
    pub fn step_vector(&mut self, grad: &[f64]) -> Vec<f64> {
        self.step_flat(grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_is_learning_rate_sized() {
        let mut opt = Adam::new(2, 0.01);
        let update = opt.step_vector(&[1.0, -1.0]);
        // After bias correction the first step has magnitude ~lr.
        assert!((update[0] - 0.01).abs() < 1e-6);
        assert!((update[1] + 0.01).abs() < 1e-6);
        assert_eq!(opt.steps(), 1);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimise f(x) = (x - 3)^2 starting from 0.
        let mut x = 0.0;
        let mut opt = Adam::new(1, 0.1);
        for _ in 0..500 {
            let grad = 2.0 * (x - 3.0);
            let update = opt.step_vector(&[grad]);
            x -= update[0];
        }
        assert!((x - 3.0).abs() < 0.05, "x = {x}");
    }

    #[test]
    fn matrix_step_preserves_shape() {
        let mut opt = Adam::new(6, 0.001);
        let grad = Matrix::filled(2, 3, 0.5);
        let update = opt.step_matrix(&grad);
        assert_eq!(update.shape(), (2, 3));
        assert_eq!(opt.learning_rate(), 0.001);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_size_gradient_panics() {
        let mut opt = Adam::new(2, 0.01);
        let _ = opt.step_vector(&[1.0]);
    }
}
