use gcnrl_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// Element-wise activation functions used by the actor–critic networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit, used in the hidden layers (as in the paper's GCN).
    Relu,
    /// Hyperbolic tangent, used by the actor's output head to produce actions
    /// in `[-1, 1]`.
    Tanh,
    /// Identity (no activation), used by the critic's value head.
    Identity,
}

impl Activation {
    /// Applies the activation element-wise.  Returns the output and a cache
    /// (the output itself) for the backward pass.
    pub fn forward(self, x: &Matrix) -> (Matrix, Matrix) {
        let y = match self {
            Activation::Relu => x.map(|v| v.max(0.0)),
            Activation::Tanh => x.map(f64::tanh),
            Activation::Identity => x.clone(),
        };
        (y.clone(), y)
    }

    /// Backward pass: element-wise product of `d_output` with the activation
    /// derivative evaluated from the cached forward output.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn backward(self, cache: &Matrix, d_output: &Matrix) -> Matrix {
        assert_eq!(cache.shape(), d_output.shape(), "activation shape mismatch");
        match self {
            Activation::Relu => Matrix::from_fn(cache.rows(), cache.cols(), |r, c| {
                if cache[(r, c)] > 0.0 {
                    d_output[(r, c)]
                } else {
                    0.0
                }
            }),
            Activation::Tanh => Matrix::from_fn(cache.rows(), cache.cols(), |r, c| {
                let y = cache[(r, c)];
                d_output[(r, c)] * (1.0 - y * y)
            }),
            Activation::Identity => d_output.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let x = Matrix::from_rows(&[&[-1.0, 2.0]]).unwrap();
        let (y, cache) = Activation::Relu.forward(&x);
        assert_eq!(y[(0, 0)], 0.0);
        assert_eq!(y[(0, 1)], 2.0);
        let dy = Activation::Relu.backward(&cache, &Matrix::filled(1, 2, 1.0));
        assert_eq!(dy[(0, 0)], 0.0);
        assert_eq!(dy[(0, 1)], 1.0);
    }

    #[test]
    fn tanh_range_and_derivative() {
        let x = Matrix::from_rows(&[&[0.0, 100.0, -100.0]]).unwrap();
        let (y, cache) = Activation::Tanh.forward(&x);
        assert_eq!(y[(0, 0)], 0.0);
        assert!((y[(0, 1)] - 1.0).abs() < 1e-9);
        assert!((y[(0, 2)] + 1.0).abs() < 1e-9);
        let dy = Activation::Tanh.backward(&cache, &Matrix::filled(1, 3, 1.0));
        assert!((dy[(0, 0)] - 1.0).abs() < 1e-12);
        assert!(dy[(0, 1)].abs() < 1e-9);
    }

    #[test]
    fn tanh_derivative_matches_finite_difference() {
        let x = Matrix::from_rows(&[&[0.3]]).unwrap();
        let (_, cache) = Activation::Tanh.forward(&x);
        let grad = Activation::Tanh.backward(&cache, &Matrix::filled(1, 1, 1.0));
        let eps = 1e-6;
        let numeric = ((0.3f64 + eps).tanh() - 0.3f64.tanh()) / eps;
        assert!((grad[(0, 0)] - numeric).abs() < 1e-5);
    }

    #[test]
    fn identity_passes_through() {
        let x = Matrix::from_rows(&[&[1.5, -2.5]]).unwrap();
        let (y, cache) = Activation::Identity.forward(&x);
        assert_eq!(y, x);
        let d = Matrix::filled(1, 2, 3.0);
        assert_eq!(Activation::Identity.backward(&cache, &d), d);
    }
}
