//! Minimal neural-network building blocks for the GCN-RL agent.
//!
//! No deep-learning framework is available offline, so this crate provides
//! exactly what the paper's actor–critic networks need (Fig. 3):
//!
//! * [`Linear`] — a dense layer with manual forward/backward passes.
//! * [`Activation`] — ReLU and Tanh with their derivatives.
//! * [`gcn_propagate`] / [`gcn_backprop`] — the Kipf–Welling propagation step
//!   `H' = Â H` over a fixed normalised adjacency (Eq. 4 of the paper).
//! * [`Adam`] — the Adam optimiser applied to a flat list of parameter
//!   gradients.
//! * Xavier/Glorot initialisation seeded per layer for reproducibility.
//!
//! Networks are assembled in the `gcnrl` core crate; this crate is purely the
//! math.
//!
//! # Examples
//!
//! ```
//! use gcnrl_nn::{Activation, Linear};
//! use gcnrl_linalg::Matrix;
//! use std::sync::Arc;
//!
//! let layer = Linear::xavier(4, 8, 42);
//! let x = Arc::new(Matrix::filled(3, 4, 0.5));
//! let (y, cache) = layer.forward(&x); // the cache shares x, no copy
//! let (dy, _) = Activation::Relu.forward(&y);
//! assert_eq!(dy.shape(), (3, 8));
//! let grads = layer.backward(&cache, &Matrix::filled(3, 8, 1.0));
//! assert_eq!(grads.d_weight.shape(), (4, 8));
//! ```

mod activation;
mod adam;
mod gcn;
mod linear;

pub use activation::Activation;
pub use adam::Adam;
pub use gcn::{gcn_backprop, gcn_propagate};
pub use linear::{Linear, LinearCache, LinearGradients, SharedMatrix};
