use gcnrl_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A reference-counted activation matrix shared between the forward-pass
/// caller and the backward-pass cache, so caching an input never copies it.
pub type SharedMatrix = Arc<Matrix>;

/// A dense (fully-connected) layer `Y = X W + b`.
///
/// Rows of `X` are samples (one row per circuit component in the GCN agent),
/// columns are features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    weight: Matrix,
    bias: Vec<f64>,
}

/// Forward-pass cache needed by [`Linear::backward`]; holds a shared
/// reference to the input activation rather than a clone of it.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearCache {
    input: SharedMatrix,
}

/// Gradients produced by [`Linear::backward`].
#[derive(Debug, Clone, PartialEq)]
pub struct LinearGradients {
    /// Gradient of the loss with respect to the weight matrix.
    pub d_weight: Matrix,
    /// Gradient of the loss with respect to the bias vector.
    pub d_bias: Vec<f64>,
    /// Gradient of the loss with respect to the layer input.
    pub d_input: Matrix,
}

impl Linear {
    /// Creates a layer with Xavier/Glorot-uniform weights and zero bias,
    /// deterministically seeded so experiments are reproducible.
    pub fn xavier(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let limit = (6.0 / (in_dim + out_dim) as f64).sqrt();
        let weight = Matrix::from_fn(in_dim, out_dim, |_, _| rng.gen_range(-limit..limit));
        Linear {
            weight,
            bias: vec![0.0; out_dim],
        }
    }

    /// Creates a layer from explicit parameters (used when loading checkpoints).
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != weight.cols()`.
    pub fn from_parameters(weight: Matrix, bias: Vec<f64>) -> Self {
        assert_eq!(
            bias.len(),
            weight.cols(),
            "bias length must match output dim"
        );
        Linear { weight, bias }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }

    /// The weight matrix.
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// The bias vector.
    pub fn bias(&self) -> &[f64] {
        &self.bias
    }

    /// Total number of scalar parameters.
    pub fn num_parameters(&self) -> usize {
        self.weight.rows() * self.weight.cols() + self.bias.len()
    }

    /// Forward pass.  Returns the output and the cache for the backward pass;
    /// the cache shares `x` (no copy) — pass `Arc::new(x)` when handing over
    /// an owned intermediate activation.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.in_dim()`.
    pub fn forward(&self, x: &SharedMatrix) -> (Matrix, LinearCache) {
        assert_eq!(x.cols(), self.in_dim(), "input feature dimension mismatch");
        let mut y = x.matmul(&self.weight).expect("dimensions checked");
        for r in 0..y.rows() {
            for c in 0..y.cols() {
                y[(r, c)] += self.bias[c];
            }
        }
        (y, LinearCache { input: x.clone() })
    }

    /// Backward pass given the gradient of the loss with respect to the output.
    ///
    /// # Panics
    ///
    /// Panics if `d_output` has the wrong shape for the cached input.
    pub fn backward(&self, cache: &LinearCache, d_output: &Matrix) -> LinearGradients {
        assert_eq!(d_output.rows(), cache.input.rows(), "row count mismatch");
        assert_eq!(d_output.cols(), self.out_dim(), "output dimension mismatch");
        // Transpose-free products: X^T dY and dY W^T without allocating the
        // transposed operands.
        let d_weight = cache
            .input
            .matmul_transa(d_output)
            .expect("dimensions checked");
        let d_bias: Vec<f64> = (0..self.out_dim())
            .map(|c| (0..d_output.rows()).map(|r| d_output[(r, c)]).sum())
            .collect();
        let d_input = d_output
            .matmul_transb(&self.weight)
            .expect("dimensions checked");
        LinearGradients {
            d_weight,
            d_bias,
            d_input,
        }
    }

    /// Applies a parameter update: `W -= lr_scaled_dw`, `b -= lr_scaled_db`.
    /// The caller (the Adam optimiser) is responsible for scaling.
    ///
    /// # Panics
    ///
    /// Panics if the update shapes do not match the parameters.
    pub fn apply_update(&mut self, d_weight: &Matrix, d_bias: &[f64]) {
        assert_eq!(
            d_weight.shape(),
            self.weight.shape(),
            "weight shape mismatch"
        );
        assert_eq!(d_bias.len(), self.bias.len(), "bias length mismatch");
        self.weight = self.weight.sub_elem(d_weight).expect("shape checked");
        for (b, d) in self.bias.iter_mut().zip(d_bias) {
            *b -= d;
        }
    }

    /// Blends this layer's parameters towards `target` (Polyak averaging used
    /// by DDPG target networks): `self = tau * target + (1 - tau) * self`.
    ///
    /// # Panics
    ///
    /// Panics if the two layers have different shapes.
    pub fn soft_update_from(&mut self, target: &Linear, tau: f64) {
        assert_eq!(self.weight.shape(), target.weight.shape(), "shape mismatch");
        self.weight = self
            .weight
            .scaled(1.0 - tau)
            .add_elem(&target.weight.scaled(tau))
            .expect("shape checked");
        for (b, t) in self.bias.iter_mut().zip(&target.bias) {
            *b = *b * (1.0 - tau) + t * tau;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_manual_computation() {
        let layer = Linear::from_parameters(
            Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]).unwrap(),
            vec![0.5, -0.5],
        );
        let x = Arc::new(Matrix::from_rows(&[&[3.0, 4.0]]).unwrap());
        let (y, _) = layer.forward(&x);
        assert_eq!(y[(0, 0)], 3.5);
        assert_eq!(y[(0, 1)], 7.5);
    }

    #[test]
    fn forward_cache_shares_the_input_without_copying() {
        let layer = Linear::xavier(2, 2, 3);
        let x = Arc::new(Matrix::filled(1, 2, 1.0));
        let (_, cache) = layer.forward(&x);
        // Two strong references: the caller's and the cache's shared one.
        assert_eq!(Arc::strong_count(&x), 2);
        drop(cache);
        assert_eq!(Arc::strong_count(&x), 1);
    }

    #[test]
    fn backward_gradients_match_finite_differences() {
        let layer = Linear::xavier(3, 2, 7);
        let x = Arc::new(Matrix::from_fn(4, 3, |r, c| (r as f64 - c as f64) * 0.3));
        let (y, cache) = layer.forward(&x);
        // Loss = sum of outputs, so dL/dY = 1.
        let ones = Matrix::filled(y.rows(), y.cols(), 1.0);
        let grads = layer.backward(&cache, &ones);

        let eps = 1e-6;
        // Check a couple of weight entries by finite differences.
        for &(i, j) in &[(0usize, 0usize), (2usize, 1usize)] {
            let mut w_plus = layer.weight().clone();
            w_plus[(i, j)] += eps;
            let pert = Linear::from_parameters(w_plus, layer.bias().to_vec());
            let (y_plus, _) = pert.forward(&x);
            let numeric = (y_plus.sum() - y.sum()) / eps;
            assert!((grads.d_weight[(i, j)] - numeric).abs() < 1e-4);
        }
        // Bias gradient is the number of rows for a sum loss.
        assert!((grads.d_bias[0] - 4.0).abs() < 1e-9);
        // Input gradient equals row sums of W^T.
        let expected = ones.matmul(&layer.weight().transpose()).unwrap();
        assert_eq!(grads.d_input, expected);
    }

    #[test]
    fn xavier_is_deterministic_per_seed() {
        assert_eq!(Linear::xavier(5, 5, 1), Linear::xavier(5, 5, 1));
        assert_ne!(Linear::xavier(5, 5, 1), Linear::xavier(5, 5, 2));
    }

    #[test]
    fn apply_update_moves_parameters() {
        let mut layer = Linear::from_parameters(Matrix::identity(2), vec![0.0, 0.0]);
        layer.apply_update(&Matrix::filled(2, 2, 0.1), &[0.2, 0.2]);
        assert!((layer.weight()[(0, 0)] - 0.9).abs() < 1e-12);
        assert!((layer.bias()[0] + 0.2).abs() < 1e-12);
    }

    #[test]
    fn soft_update_interpolates() {
        let mut a = Linear::from_parameters(Matrix::filled(1, 1, 0.0), vec![0.0]);
        let b = Linear::from_parameters(Matrix::filled(1, 1, 1.0), vec![1.0]);
        a.soft_update_from(&b, 0.25);
        assert!((a.weight()[(0, 0)] - 0.25).abs() < 1e-12);
        assert!((a.bias()[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn wrong_input_dim_panics() {
        let layer = Linear::xavier(3, 2, 0);
        let x = Arc::new(Matrix::zeros(1, 4));
        let _ = layer.forward(&x);
    }

    #[test]
    fn num_parameters_counts_weights_and_bias() {
        assert_eq!(Linear::xavier(3, 4, 0).num_parameters(), 16);
    }
}
