//! The graph-convolution propagation step of Kipf & Welling (paper Eq. 4).
//!
//! A GCN layer in the paper is `H' = σ(Â H W)` with
//! `Â = D̃^-1/2 (A + I) D̃^-1/2`.  The linear part (`H W`) and the activation
//! are handled by [`Linear`](crate::Linear) and
//! [`Activation`](crate::Activation); this module provides the neighbourhood
//! aggregation `Â H` and its backward pass.  Skipping the aggregation turns
//! the network into the paper's non-GCN ablation (NG-RL).

use gcnrl_linalg::Matrix;

/// Aggregates node features over the graph: `H' = Â H`.
///
/// # Panics
///
/// Panics if `adjacency` is not square or its dimension does not match the
/// number of rows of `features`.
pub fn gcn_propagate(adjacency: &Matrix, features: &Matrix) -> Matrix {
    assert_eq!(
        adjacency.rows(),
        adjacency.cols(),
        "adjacency must be square"
    );
    assert_eq!(
        adjacency.cols(),
        features.rows(),
        "adjacency and feature dimensions must match"
    );
    adjacency.matmul(features).expect("dimensions checked")
}

/// Backward pass of [`gcn_propagate`]: with a symmetric `Â`,
/// `dL/dH = Â^T dL/dH' = Â dL/dH'`.
///
/// # Panics
///
/// Panics under the same conditions as [`gcn_propagate`].
pub fn gcn_backprop(adjacency: &Matrix, d_output: &Matrix) -> Matrix {
    assert_eq!(
        adjacency.rows(),
        adjacency.cols(),
        "adjacency must be square"
    );
    // `Â^T dL/dH'` without materialising the transpose.
    adjacency
        .matmul_transa(d_output)
        .expect("dimensions checked")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Normalised adjacency of a 3-node path graph 0 - 1 - 2 with self loops.
    fn path3() -> Matrix {
        // degrees with self loops: 2, 3, 2
        let d = [2.0f64, 3.0, 2.0];
        Matrix::from_fn(3, 3, |i, j| {
            let a = if i == j || (i as i64 - j as i64).abs() == 1 {
                1.0
            } else {
                0.0
            };
            a / (d[i] * d[j]).sqrt()
        })
    }

    #[test]
    fn propagation_mixes_neighbours_only() {
        let a_hat = path3();
        // One-hot feature on node 0.
        let h = Matrix::from_rows(&[&[1.0], &[0.0], &[0.0]]).unwrap();
        let out = gcn_propagate(&a_hat, &h);
        assert!(out[(0, 0)] > 0.0);
        assert!(out[(1, 0)] > 0.0);
        // Node 2 is two hops away: untouched after one layer.
        assert_eq!(out[(2, 0)], 0.0);
        // After a second layer the information reaches node 2.
        let out2 = gcn_propagate(&a_hat, &out);
        assert!(out2[(2, 0)] > 0.0);
    }

    #[test]
    fn identity_adjacency_is_a_no_op() {
        let h = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f64);
        let out = gcn_propagate(&Matrix::identity(4), &h);
        assert_eq!(out, h);
    }

    #[test]
    fn backprop_is_adjoint_of_forward() {
        // <A h, g> == <h, A^T g> for arbitrary h, g.
        let a_hat = path3();
        let h = Matrix::from_fn(3, 2, |r, c| (r + c) as f64 * 0.5);
        let g = Matrix::from_fn(3, 2, |r, c| (r as f64 - c as f64) * 0.3);
        let lhs = gcn_propagate(&a_hat, &h).hadamard(&g).unwrap().sum();
        let rhs = h.hadamard(&gcn_backprop(&a_hat, &g)).unwrap().sum();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn dimension_mismatch_panics() {
        let _ = gcn_propagate(&Matrix::identity(3), &Matrix::zeros(4, 2));
    }
}
