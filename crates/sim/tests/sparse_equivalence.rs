//! Sparse-vs-dense equivalence of the MNA solve path.
//!
//! Random well-conditioned circuits are generated and solved both through the
//! legacy dense reference path ([`AcCircuit::solve`]) and through the
//! compiled sparse path ([`AcCircuit::compile`], `G + jωC` restamping against
//! a symbolic-once LU); node voltages must agree to 1e-9 across a log sweep.
//! Value-only restamp reuse and the singular error paths are covered by unit
//! tests below.

use gcnrl_linalg::Complex;
use gcnrl_sim::ac::log_sweep;
use gcnrl_sim::smallsignal::GROUND;
use gcnrl_sim::{AcCircuit, AcElement, SimError};
use proptest::prelude::*;

/// Builds a random but structurally well-conditioned circuit: a conductive
/// ladder to keep every node anchored, plus random cross conductances,
/// capacitances and moderate-transconductance VCCS elements.
fn random_circuit(
    n: usize,
    anchors: &[f64],
    cross: &[(usize, usize, f64, f64)],
    vccs: &[(usize, usize, f64)],
) -> AcCircuit {
    let mut ckt = AcCircuit::new(n);
    for (i, &g) in anchors.iter().enumerate().take(n) {
        let prev = if i == 0 { GROUND } else { i - 1 };
        ckt.add(AcElement::Conductance {
            a: prev,
            b: i,
            g: 1e-4 + g.abs(),
        });
        ckt.add(AcElement::Capacitance {
            a: i,
            b: GROUND,
            c: 1e-13 + g.abs() * 1e-11,
        });
    }
    for &(a, b, g, c) in cross {
        let (a, b) = (a % n, b % n);
        if a != b {
            ckt.add(AcElement::Conductance { a, b, g: g.abs() });
            ckt.add(AcElement::Capacitance { a, b, c: c.abs() });
        }
    }
    for &(out, ctrl, gm) in vccs {
        let (out, ctrl) = (out % n, ctrl % n);
        ckt.add(AcElement::Vccs {
            out_p: out,
            out_n: GROUND,
            ctrl_p: ctrl,
            ctrl_n: GROUND,
            gm,
        });
    }
    ckt.add(AcElement::CurrentSource {
        a: GROUND,
        b: 0,
        value: Complex::ONE,
    });
    ckt
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sparse and dense node voltages agree to 1e-9 across a log sweep.
    #[test]
    fn sparse_matches_dense_across_log_sweep(
        anchors in prop::collection::vec(1e-4f64..1e-2, 10),
        cross_idx in prop::collection::vec(0usize..10, 8),
        cross_g in prop::collection::vec(1e-5f64..1e-3, 4),
        cross_c in prop::collection::vec(1e-14f64..1e-11, 4),
        vccs_idx in prop::collection::vec(0usize..10, 4),
        gm in prop::collection::vec(1e-5f64..1e-3, 2),
        nodes in 4usize..11,
    ) {
        let cross: Vec<(usize, usize, f64, f64)> = (0..4)
            .map(|k| (cross_idx[2 * k], cross_idx[2 * k + 1], cross_g[k], cross_c[k]))
            .collect();
        let vccs: Vec<(usize, usize, f64)> = (0..2)
            .map(|k| (vccs_idx[2 * k], vccs_idx[2 * k + 1], gm[k]))
            .collect();
        let ckt = random_circuit(nodes, &anchors, &cross, &vccs);
        let mut compiled = ckt.compile().unwrap();
        prop_assert!(compiled.is_sparse());
        for f in log_sweep(1.0, 1e9, 2) {
            let dense = ckt.solve(f).unwrap();
            let sparse = compiled.solve_at(f).unwrap();
            for (d, s) in dense.iter().zip(&sparse) {
                prop_assert!(
                    (*d - *s).abs() < 1e-9 * (1.0 + d.abs()),
                    "f={} dense={:?} sparse={:?}", f, d, s
                );
            }
        }
    }
}

/// A value-only restamp (same topology, different element values) must reuse
/// the compiled machinery and still match the dense reference.
#[test]
fn symbolic_reuse_after_value_only_restamp() {
    let build = |scale: f64| {
        let mut ckt = AcCircuit::new(6);
        for i in 0..6 {
            let prev = if i == 0 { GROUND } else { i - 1 };
            ckt.add(AcElement::Conductance {
                a: prev,
                b: i,
                g: 1e-3 * scale,
            });
            ckt.add(AcElement::Capacitance {
                a: i,
                b: GROUND,
                c: 1e-12 / scale,
            });
        }
        ckt.add(AcElement::CurrentSource {
            a: GROUND,
            b: 0,
            value: Complex::ONE,
        });
        ckt
    };
    // Sweep the same compiled circuit across many frequencies: each point is
    // a value-only restamp against the one symbolic analysis.
    let ckt = build(1.0);
    let mut compiled = ckt.compile().unwrap();
    let freqs = log_sweep(1.0, 1e10, 6);
    for &f in &freqs {
        let dense = ckt.solve(f).unwrap();
        let sparse = compiled.solve_at(f).unwrap();
        for (d, s) in dense.iter().zip(&sparse) {
            assert!((*d - *s).abs() < 1e-9 * (1.0 + d.abs()));
        }
    }
    assert_eq!(compiled.factor_count(), freqs.len() as u64);
    // A structurally identical circuit with different values compiles to the
    // same backend and stays correct (fresh compile, same pattern shape).
    let scaled = build(3.0);
    let mut compiled_scaled = scaled.compile().unwrap();
    let dense = scaled.solve(1e6).unwrap();
    let sparse = compiled_scaled.solve_at(1e6).unwrap();
    for (d, s) in dense.iter().zip(&sparse) {
        assert!((*d - *s).abs() < 1e-9 * (1.0 + d.abs()));
    }
}

/// A circuit whose admittance matrix is numerically singular must error (not
/// panic) through both the dense reference and the compiled sparse path.
#[test]
fn singular_system_errors_through_both_paths() {
    const GMIN: f64 = 1e-12;
    let g = 1e-3;
    let mut ckt = AcCircuit::new(5);
    for i in 0..5 {
        ckt.add(AcElement::Conductance { a: i, b: GROUND, g });
    }
    // A self-controlled VCCS that exactly cancels node 4's conductance and
    // its GMIN anchor: row 4 of Y becomes identically zero.
    ckt.add(AcElement::Vccs {
        out_p: 4,
        out_n: GROUND,
        ctrl_p: 4,
        ctrl_n: GROUND,
        gm: -(g + GMIN),
    });
    ckt.add(AcElement::CurrentSource {
        a: GROUND,
        b: 0,
        value: Complex::ONE,
    });
    assert!(matches!(
        ckt.solve(0.0),
        Err(SimError::SingularSystem { .. })
    ));
    let mut compiled = ckt.compile().unwrap();
    assert!(compiled.is_sparse());
    assert!(matches!(
        compiled.solve_at(0.0),
        Err(SimError::SingularSystem { .. })
    ));
    // The compiled circuit recovers at a frequency where the capacitive part
    // is absent but the system is still singular — and stays usable if a
    // later frequency succeeds.
    assert!(compiled.solve_at(0.0).is_err());
}
