//! Sparse-vs-dense equivalence of the MNA solve path.
//!
//! Random well-conditioned circuits are generated and solved both through the
//! legacy dense reference path ([`AcCircuit::solve`]) and through the
//! compiled sparse path ([`AcCircuit::compile`], `G + jωC` restamping against
//! a symbolic-once LU); node voltages must agree to 1e-9 across a log sweep.
//! Value-only restamp reuse and the singular error paths are covered by unit
//! tests below.

use gcnrl_linalg::Complex;
use gcnrl_sim::ac::log_sweep;
use gcnrl_sim::noise::{output_noise_psd_compiled, output_noise_psd_via_update, NoiseSource};
use gcnrl_sim::smallsignal::GROUND;
use gcnrl_sim::{solver_stats, AcCircuit, AcElement, SimError};
use proptest::prelude::*;

/// Builds a random but structurally well-conditioned circuit: a conductive
/// ladder to keep every node anchored, plus random cross conductances,
/// capacitances and moderate-transconductance VCCS elements.
fn random_circuit(
    n: usize,
    anchors: &[f64],
    cross: &[(usize, usize, f64, f64)],
    vccs: &[(usize, usize, f64)],
) -> AcCircuit {
    let mut ckt = AcCircuit::new(n);
    for (i, &g) in anchors.iter().enumerate().take(n) {
        let prev = if i == 0 { GROUND } else { i - 1 };
        ckt.add(AcElement::Conductance {
            a: prev,
            b: i,
            g: 1e-4 + g.abs(),
        });
        ckt.add(AcElement::Capacitance {
            a: i,
            b: GROUND,
            c: 1e-13 + g.abs() * 1e-11,
        });
    }
    for &(a, b, g, c) in cross {
        let (a, b) = (a % n, b % n);
        if a != b {
            ckt.add(AcElement::Conductance { a, b, g: g.abs() });
            ckt.add(AcElement::Capacitance { a, b, c: c.abs() });
        }
    }
    for &(out, ctrl, gm) in vccs {
        let (out, ctrl) = (out % n, ctrl % n);
        ckt.add(AcElement::Vccs {
            out_p: out,
            out_n: GROUND,
            ctrl_p: ctrl,
            ctrl_n: GROUND,
            gm,
        });
    }
    ckt.add(AcElement::CurrentSource {
        a: GROUND,
        b: 0,
        value: Complex::ONE,
    });
    ckt
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random circuits with small per-candidate perturbations: the batched
    /// Sherman–Morrison–Woodbury sweep must agree with per-candidate full
    /// refactorisation to 1e-9 across a log sweep.
    #[test]
    fn batched_update_sweep_matches_per_candidate_refactor(
        anchors in prop::collection::vec(1e-4f64..1e-2, 10),
        nodes in 5usize..11,
        perturb_idx in prop::collection::vec(0usize..10, 3),
        scales in prop::collection::vec(0.2f64..5.0, 3),
    ) {
        let ckt = random_circuit(nodes, &anchors, &[], &[]);
        let mut base = ckt.compile().unwrap();
        // Each candidate scales a few anchor conductances: same stamp
        // positions as the base, a handful of perturbed slots.
        let candidate_circuits: Vec<AcCircuit> = (1..=3)
            .map(|k| {
                let mut perturbed = anchors.clone();
                for (idx, scale) in perturb_idx.iter().zip(&scales).take(k) {
                    perturbed[idx % nodes] *= scale;
                }
                random_circuit(nodes, &perturbed, &[], &[])
            })
            .collect();
        let mut candidates: Vec<_> = candidate_circuits
            .iter()
            .map(|c| c.compile().unwrap())
            .collect();
        let output = nodes - 1;
        let freqs = log_sweep(1.0, 1e9, 3);
        let batch = base.sweep_batch(output, &freqs, &mut candidates).unwrap();
        for (ckt, swept) in candidate_circuits.iter().zip(&batch) {
            let mut reference = ckt.compile().unwrap();
            let expect = reference.sweep_voltages_scalar(output, &freqs).unwrap();
            for ((f0, v0), (_, v1)) in swept.iter().zip(&expect) {
                prop_assert!(
                    (*v0 - *v1).abs() < 1e-9 * (1.0 + v1.abs()),
                    "f={} update={:?} refactor={:?}", f0, v0, v1
                );
            }
        }
    }

    /// Sparse and dense node voltages agree to 1e-9 across a log sweep.
    #[test]
    fn sparse_matches_dense_across_log_sweep(
        anchors in prop::collection::vec(1e-4f64..1e-2, 10),
        cross_idx in prop::collection::vec(0usize..10, 8),
        cross_g in prop::collection::vec(1e-5f64..1e-3, 4),
        cross_c in prop::collection::vec(1e-14f64..1e-11, 4),
        vccs_idx in prop::collection::vec(0usize..10, 4),
        gm in prop::collection::vec(1e-5f64..1e-3, 2),
        nodes in 4usize..11,
    ) {
        let cross: Vec<(usize, usize, f64, f64)> = (0..4)
            .map(|k| (cross_idx[2 * k], cross_idx[2 * k + 1], cross_g[k], cross_c[k]))
            .collect();
        let vccs: Vec<(usize, usize, f64)> = (0..2)
            .map(|k| (vccs_idx[2 * k], vccs_idx[2 * k + 1], gm[k]))
            .collect();
        let ckt = random_circuit(nodes, &anchors, &cross, &vccs);
        let mut compiled = ckt.compile().unwrap();
        prop_assert!(compiled.is_sparse());
        for f in log_sweep(1.0, 1e9, 2) {
            let dense = ckt.solve(f).unwrap();
            let sparse = compiled.solve_at(f).unwrap();
            for (d, s) in dense.iter().zip(&sparse) {
                prop_assert!(
                    (*d - *s).abs() < 1e-9 * (1.0 + d.abs()),
                    "f={} dense={:?} sparse={:?}", f, d, s
                );
            }
        }
    }
}

/// A value-only restamp (same topology, different element values) must reuse
/// the compiled machinery and still match the dense reference.
#[test]
fn symbolic_reuse_after_value_only_restamp() {
    let build = |scale: f64| {
        let mut ckt = AcCircuit::new(6);
        for i in 0..6 {
            let prev = if i == 0 { GROUND } else { i - 1 };
            ckt.add(AcElement::Conductance {
                a: prev,
                b: i,
                g: 1e-3 * scale,
            });
            ckt.add(AcElement::Capacitance {
                a: i,
                b: GROUND,
                c: 1e-12 / scale,
            });
        }
        ckt.add(AcElement::CurrentSource {
            a: GROUND,
            b: 0,
            value: Complex::ONE,
        });
        ckt
    };
    // Sweep the same compiled circuit across many frequencies: each point is
    // a value-only restamp against the one symbolic analysis.
    let ckt = build(1.0);
    let mut compiled = ckt.compile().unwrap();
    let freqs = log_sweep(1.0, 1e10, 6);
    for &f in &freqs {
        let dense = ckt.solve(f).unwrap();
        let sparse = compiled.solve_at(f).unwrap();
        for (d, s) in dense.iter().zip(&sparse) {
            assert!((*d - *s).abs() < 1e-9 * (1.0 + d.abs()));
        }
    }
    assert_eq!(compiled.factor_count(), freqs.len() as u64);
    // A structurally identical circuit with different values compiles to the
    // same backend and stays correct (fresh compile, same pattern shape).
    let scaled = build(3.0);
    let mut compiled_scaled = scaled.compile().unwrap();
    let dense = scaled.solve(1e6).unwrap();
    let sparse = compiled_scaled.solve_at(1e6).unwrap();
    for (d, s) in dense.iter().zip(&sparse) {
        assert!((*d - *s).abs() < 1e-9 * (1.0 + d.abs()));
    }
}

/// The noise analysis routed through the rank-k injection update must agree
/// with the candidate's own factor-once path: exactly for a zero-delta
/// candidate (the correction degenerates to the base solve) and to 1e-12 for
/// a rank-1 sizing perturbation.
#[test]
fn noise_via_update_agrees_with_factor_once() {
    let build = |g_tap: f64| {
        let mut ckt = AcCircuit::new(8);
        for i in 0..8 {
            let prev = if i == 0 { GROUND } else { i - 1 };
            ckt.add(AcElement::Conductance {
                a: prev,
                b: i,
                g: 1e-3,
            });
            ckt.add(AcElement::Capacitance {
                a: i,
                b: GROUND,
                c: 1e-13,
            });
        }
        ckt.add(AcElement::Conductance {
            a: 5,
            b: GROUND,
            g: g_tap,
        });
        ckt.add(AcElement::CurrentSource {
            a: GROUND,
            b: 0,
            value: Complex::ONE,
        });
        ckt
    };
    let sources: Vec<NoiseSource> = (0..8)
        .map(|i| NoiseSource {
            a: GROUND,
            b: i,
            psd: 1e-24 * (i + 1) as f64,
        })
        .collect();
    let output = 7;
    let freq = 1e6;

    // Zero delta: identical circuits, the update is rank-0 and exact.
    let mut base = build(1e-4).compile().unwrap();
    let mut twin = build(1e-4).compile().unwrap();
    let via_update =
        output_noise_psd_via_update(&mut base, &mut twin, &sources, output, freq).unwrap();
    let mut reference = build(1e-4).compile().unwrap();
    let direct = output_noise_psd_compiled(&mut reference, &sources, output, freq).unwrap();
    assert!(
        (via_update - direct).abs() <= 1e-12 * direct,
        "zero-delta noise update diverged: {via_update} vs {direct}"
    );

    // Rank-1 perturbation (the tap conductance scales): every injection
    // solve rides the shared correction and agrees to 1e-12.
    let before = solver_stats::snapshot();
    let mut candidate = build(3e-4).compile().unwrap();
    let via_update =
        output_noise_psd_via_update(&mut base, &mut candidate, &sources, output, freq).unwrap();
    let after = solver_stats::snapshot();
    assert!(
        after.update_hits > before.update_hits,
        "rank-1 noise candidate must ride the update path"
    );
    let mut reference = build(3e-4).compile().unwrap();
    let direct = output_noise_psd_compiled(&mut reference, &sources, output, freq).unwrap();
    assert!(
        (via_update - direct).abs() <= 1e-12 * direct,
        "rank-1 noise update diverged: {via_update} vs {direct}"
    );
}

/// A perturbation engineered to cancel the update's capacitance matrix (the
/// `1 + δ·w` term driven to ~1e-13) must trip the ill-conditioning gate and
/// fall back to a full refactor — and the fallback answer must match the
/// candidate's own solve.
#[test]
fn ill_conditioned_update_falls_back_to_refactor() {
    let n = 8;
    let tap = n - 1;
    // Purely resistive so the cancellation arithmetic is exactly real.
    let build = |g_tap: f64| {
        let mut ckt = AcCircuit::new(n);
        for i in 0..n {
            let prev = if i == 0 { GROUND } else { i - 1 };
            ckt.add(AcElement::Conductance {
                a: prev,
                b: i,
                g: 1e-3,
            });
        }
        ckt.add(AcElement::Conductance {
            a: tap,
            b: GROUND,
            g: g_tap,
        });
        ckt.add(AcElement::CurrentSource {
            a: GROUND,
            b: 0,
            value: Complex::ONE,
        });
        ckt
    };
    let g0 = 1e-3;
    let ckt = build(g0);
    let mut base = ckt.compile().unwrap();
    base.factor_at(1.0).unwrap();
    // w = A₀⁻¹·e_tap; choosing δg = −(1 − 1e-13)/w[tap] drives the 1×1
    // capacitance matrix C = 1 + δg·w[tap] down to ~1e-13, far inside the
    // cancellation gate.
    let w_tap = base.solve_injection(GROUND, tap).unwrap()[tap].re;
    let dg = -(1.0 - 1e-13) / w_tap;
    let candidate_ckt = build(g0 + dg);
    let mut candidate = candidate_ckt.compile().unwrap();

    let before = solver_stats::snapshot();
    let x = base.solve_updated_from(&mut candidate, 1.0).unwrap();
    let after = solver_stats::snapshot();
    assert!(
        after.refactor_fallbacks > before.refactor_fallbacks,
        "cancelled capacitance matrix must trigger the refactor fallback"
    );
    assert!(x.iter().all(|v| v.re.is_finite() && v.im.is_finite()));
    let expect = candidate_ckt.compile().unwrap().solve_at(1.0).unwrap();
    for (a, b) in x.iter().zip(&expect) {
        assert!(
            (*a - *b).abs() <= 1e-9 * (1.0 + b.abs()),
            "fallback result must match the candidate's own solve"
        );
    }
}

/// A circuit whose admittance matrix is numerically singular must error (not
/// panic) through both the dense reference and the compiled sparse path.
#[test]
fn singular_system_errors_through_both_paths() {
    const GMIN: f64 = 1e-12;
    let g = 1e-3;
    let mut ckt = AcCircuit::new(5);
    for i in 0..5 {
        ckt.add(AcElement::Conductance { a: i, b: GROUND, g });
    }
    // A self-controlled VCCS that exactly cancels node 4's conductance and
    // its GMIN anchor: row 4 of Y becomes identically zero.
    ckt.add(AcElement::Vccs {
        out_p: 4,
        out_n: GROUND,
        ctrl_p: 4,
        ctrl_n: GROUND,
        gm: -(g + GMIN),
    });
    ckt.add(AcElement::CurrentSource {
        a: GROUND,
        b: 0,
        value: Complex::ONE,
    });
    assert!(matches!(
        ckt.solve(0.0),
        Err(SimError::SingularSystem { .. })
    ));
    let mut compiled = ckt.compile().unwrap();
    assert!(compiled.is_sparse());
    assert!(matches!(
        compiled.solve_at(0.0),
        Err(SimError::SingularSystem { .. })
    ));
    // The compiled circuit recovers at a frequency where the capacitive part
    // is absent but the system is still singular — and stays usable if a
    // later frequency succeeds.
    assert!(compiled.solve_at(0.0).is_err());
}
