//! Linear small-signal circuit representation and complex MNA solver.
//!
//! The AC analyses build an [`AcCircuit`] out of conductances, capacitances,
//! voltage-controlled current sources (the linearised transistors) and
//! independent current sources, then solve the nodal admittance system
//! `Y(jω) · v = i` with the complex LU factorisation from `gcnrl-linalg`.

use crate::SimError;
use gcnrl_linalg::{CMatrix, Complex};

/// Index of a signal node.  Supply rails and ground map to [`GROUND`].
pub type NodeIndex = usize;

/// The AC ground node (supply rails are AC-grounded).
pub const GROUND: NodeIndex = usize::MAX;

/// One linear element of the small-signal circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AcElement {
    /// A conductance of `g` siemens between nodes `a` and `b`.
    Conductance {
        /// First terminal.
        a: NodeIndex,
        /// Second terminal.
        b: NodeIndex,
        /// Conductance in siemens.
        g: f64,
    },
    /// A capacitance of `c` farads between nodes `a` and `b`.
    Capacitance {
        /// First terminal.
        a: NodeIndex,
        /// Second terminal.
        b: NodeIndex,
        /// Capacitance in farads.
        c: f64,
    },
    /// A voltage-controlled current source: a current `gm · (v(ctrl_p) - v(ctrl_n))`
    /// flows from `out_p` to `out_n` (the linearised MOSFET: drain = `out_p`,
    /// source = `out_n`, gate = `ctrl_p`, source = `ctrl_n`).
    Vccs {
        /// Output node the controlled current leaves.
        out_p: NodeIndex,
        /// Output node the controlled current enters.
        out_n: NodeIndex,
        /// Positive control node.
        ctrl_p: NodeIndex,
        /// Negative control node.
        ctrl_n: NodeIndex,
        /// Transconductance in siemens.
        gm: f64,
    },
    /// An independent AC current source injecting `value` amps into node `b`
    /// (and drawing it from node `a`).
    CurrentSource {
        /// Node the current is drawn from.
        a: NodeIndex,
        /// Node the current is injected into.
        b: NodeIndex,
        /// Phasor value in amps.
        value: Complex,
    },
}

/// A linear small-signal circuit ready for AC analysis.
///
/// # Examples
///
/// A single-pole RC low-pass driven by a 1 A current source has transimpedance
/// `R / (1 + jωRC)`:
///
/// ```
/// use gcnrl_sim::{AcCircuit, AcElement};
/// use gcnrl_sim::smallsignal::GROUND;
/// use gcnrl_linalg::Complex;
///
/// # fn main() -> Result<(), gcnrl_sim::SimError> {
/// let mut ckt = AcCircuit::new(1);
/// ckt.add(AcElement::Conductance { a: 0, b: GROUND, g: 1e-3 }); // 1 kΩ
/// ckt.add(AcElement::Capacitance { a: 0, b: GROUND, c: 1e-9 }); // 1 nF
/// ckt.add(AcElement::CurrentSource { a: GROUND, b: 0, value: Complex::ONE });
/// let v = ckt.solve(1.0)?; // ~DC
/// assert!((v[0].abs() - 1000.0).abs() < 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AcCircuit {
    num_nodes: usize,
    elements: Vec<AcElement>,
}

/// Leakage conductance from every node to ground, keeping the admittance
/// matrix non-singular for floating nodes.  Shared with the compiled sweep
/// path so both backends solve bit-identical systems.
pub(crate) const GMIN: f64 = 1e-12;

impl AcCircuit {
    /// Creates an empty circuit with `num_nodes` signal nodes (ground excluded).
    pub fn new(num_nodes: usize) -> Self {
        AcCircuit {
            num_nodes,
            elements: Vec::new(),
        }
    }

    /// Number of signal nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The elements added so far.
    pub fn elements(&self) -> &[AcElement] {
        &self.elements
    }

    /// Adds an element.
    ///
    /// # Panics
    ///
    /// Panics if the element references a node index `>= num_nodes` that is
    /// not [`GROUND`].
    pub fn add(&mut self, element: AcElement) {
        let check = |n: NodeIndex| {
            assert!(
                n == GROUND || n < self.num_nodes,
                "node index {n} out of range"
            );
        };
        match element {
            AcElement::Conductance { a, b, .. }
            | AcElement::Capacitance { a, b, .. }
            | AcElement::CurrentSource { a, b, .. } => {
                check(a);
                check(b);
            }
            AcElement::Vccs {
                out_p,
                out_n,
                ctrl_p,
                ctrl_n,
                ..
            } => {
                check(out_p);
                check(out_n);
                check(ctrl_p);
                check(ctrl_n);
            }
        }
        self.elements.push(element);
    }

    /// Adds an ideal-ish voltage drive at `node`: a Norton equivalent with a
    /// stiff 1 kS source conductance, which is at least six orders of
    /// magnitude stiffer than any transistor in the benchmark circuits.
    pub fn drive_voltage(&mut self, node: NodeIndex, volts: f64) {
        const G_DRIVE: f64 = 1e3;
        self.add(AcElement::Conductance {
            a: node,
            b: GROUND,
            g: G_DRIVE,
        });
        self.add(AcElement::CurrentSource {
            a: GROUND,
            b: node,
            value: Complex::real(volts * G_DRIVE),
        });
    }

    fn stamp_pair(y: &mut CMatrix, a: NodeIndex, b: NodeIndex, adm: Complex) {
        if a != GROUND {
            y.stamp(a, a, adm);
        }
        if b != GROUND {
            y.stamp(b, b, adm);
        }
        if a != GROUND && b != GROUND {
            y.stamp(a, b, -adm);
            y.stamp(b, a, -adm);
        }
    }

    fn stamp_vccs(
        y: &mut CMatrix,
        out_p: NodeIndex,
        out_n: NodeIndex,
        ctrl_p: NodeIndex,
        ctrl_n: NodeIndex,
        gm: f64,
    ) {
        let g = Complex::real(gm);
        let mut add = |row: NodeIndex, col: NodeIndex, v: Complex| {
            if row != GROUND && col != GROUND {
                y.stamp(row, col, v);
            }
        };
        add(out_p, ctrl_p, g);
        add(out_p, ctrl_n, -g);
        add(out_n, ctrl_p, -g);
        add(out_n, ctrl_n, g);
    }

    /// Assembles the admittance matrix and excitation vector at `freq_hz`.
    fn assemble(&self, freq_hz: f64) -> (CMatrix, Vec<Complex>) {
        let n = self.num_nodes;
        let omega = 2.0 * std::f64::consts::PI * freq_hz;
        let mut y = CMatrix::zeros(n, n);
        let mut rhs = vec![Complex::ZERO; n];
        for i in 0..n {
            y.stamp(i, i, Complex::real(GMIN));
        }
        for e in &self.elements {
            match *e {
                AcElement::Conductance { a, b, g } => {
                    Self::stamp_pair(&mut y, a, b, Complex::real(g));
                }
                AcElement::Capacitance { a, b, c } => {
                    Self::stamp_pair(&mut y, a, b, Complex::new(0.0, omega * c));
                }
                AcElement::Vccs {
                    out_p,
                    out_n,
                    ctrl_p,
                    ctrl_n,
                    gm,
                } => Self::stamp_vccs(&mut y, out_p, out_n, ctrl_p, ctrl_n, gm),
                AcElement::CurrentSource { a, b, value } => {
                    if b != GROUND {
                        rhs[b] += value;
                    }
                    if a != GROUND {
                        rhs[a] -= value;
                    }
                }
            }
        }
        (y, rhs)
    }

    /// Solves for all node voltages at `freq_hz` using the circuit's own
    /// independent sources as excitation.
    ///
    /// This is the one-shot **dense reference path** (fresh assembly and a
    /// dense LU per call).  Sweeps and noise analyses go through
    /// [`AcCircuit::compile`](crate::CompiledAc) instead, which assembles
    /// `G + jωC` over cached stamp slots and reuses a symbolic-once sparse
    /// factorisation; this method remains the equivalence baseline the sparse
    /// path is validated against.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SingularSystem`] if the admittance matrix cannot be
    /// factorised at this frequency.
    pub fn solve(&self, freq_hz: f64) -> Result<Vec<Complex>, SimError> {
        let (y, rhs) = self.assemble(freq_hz);
        let lu = y.lu().map_err(|_| SimError::SingularSystem {
            frequency_hz: freq_hz,
        })?;
        lu.solve(&rhs).map_err(|_| SimError::SingularSystem {
            frequency_hz: freq_hz,
        })
    }

    /// Solves for node voltages at `freq_hz` produced by a unit current
    /// injected from node `a` into node `b`, ignoring the circuit's own
    /// sources.  Used by the noise analysis, which needs one transfer
    /// function per noise source.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SingularSystem`] if the admittance matrix cannot be
    /// factorised at this frequency.
    pub fn solve_injection(
        &self,
        freq_hz: f64,
        a: NodeIndex,
        b: NodeIndex,
    ) -> Result<Vec<Complex>, SimError> {
        let (y, _) = self.assemble(freq_hz);
        let mut rhs = vec![Complex::ZERO; self.num_nodes];
        if b != GROUND {
            rhs[b] += Complex::ONE;
        }
        if a != GROUND {
            rhs[a] -= Complex::ONE;
        }
        let lu = y.lu().map_err(|_| SimError::SingularSystem {
            frequency_hz: freq_hz,
        })?;
        lu.solve(&rhs).map_err(|_| SimError::SingularSystem {
            frequency_hz: freq_hz,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resistive_divider() {
        // 1 A into node 0, two 1 kΩ in series to ground via node 1.
        let mut ckt = AcCircuit::new(2);
        ckt.add(AcElement::Conductance {
            a: 0,
            b: 1,
            g: 1e-3,
        });
        ckt.add(AcElement::Conductance {
            a: 1,
            b: GROUND,
            g: 1e-3,
        });
        ckt.add(AcElement::CurrentSource {
            a: GROUND,
            b: 0,
            value: Complex::ONE,
        });
        let v = ckt.solve(0.0).unwrap();
        assert!((v[0].re - 2000.0).abs() < 1e-4);
        assert!((v[1].re - 1000.0).abs() < 1e-4);
    }

    #[test]
    fn rc_pole_at_expected_frequency() {
        let r = 1e3;
        let c = 1e-9;
        let f3db = 1.0 / (2.0 * std::f64::consts::PI * r * c);
        let mut ckt = AcCircuit::new(1);
        ckt.add(AcElement::Conductance {
            a: 0,
            b: GROUND,
            g: 1.0 / r,
        });
        ckt.add(AcElement::Capacitance { a: 0, b: GROUND, c });
        ckt.add(AcElement::CurrentSource {
            a: GROUND,
            b: 0,
            value: Complex::ONE,
        });
        let lo = ckt.solve(1.0).unwrap()[0].abs();
        let at_pole = ckt.solve(f3db).unwrap()[0].abs();
        assert!((lo - r).abs() / r < 1e-3);
        assert!((at_pole - r / 2f64.sqrt()).abs() / r < 1e-2);
    }

    #[test]
    fn vccs_common_source_gain() {
        // gm = 1 mS into a 10 kΩ load: voltage gain -10 from node 0 (gate) to node 1 (drain).
        let mut ckt = AcCircuit::new(2);
        ckt.drive_voltage(0, 1.0);
        ckt.add(AcElement::Vccs {
            out_p: 1,
            out_n: GROUND,
            ctrl_p: 0,
            ctrl_n: GROUND,
            gm: 1e-3,
        });
        ckt.add(AcElement::Conductance {
            a: 1,
            b: GROUND,
            g: 1e-4,
        });
        let v = ckt.solve(1.0).unwrap();
        assert!((v[0].re - 1.0).abs() < 1e-3);
        assert!((v[1].re + 10.0).abs() < 0.05, "gain {}", v[1].re);
    }

    #[test]
    fn diode_connected_vccs_behaves_as_conductance() {
        // VCCS whose control is its own output node: looks like a 1/gm resistor.
        let gm = 2e-3;
        let mut ckt = AcCircuit::new(1);
        ckt.add(AcElement::Vccs {
            out_p: 0,
            out_n: GROUND,
            ctrl_p: 0,
            ctrl_n: GROUND,
            gm,
        });
        ckt.add(AcElement::CurrentSource {
            a: GROUND,
            b: 0,
            value: Complex::ONE,
        });
        let v = ckt.solve(10.0).unwrap();
        assert!((v[0].abs() - 1.0 / gm).abs() < 1e-6);
    }

    #[test]
    fn injection_solve_ignores_builtin_sources() {
        let mut ckt = AcCircuit::new(1);
        ckt.add(AcElement::Conductance {
            a: 0,
            b: GROUND,
            g: 1e-3,
        });
        ckt.add(AcElement::CurrentSource {
            a: GROUND,
            b: 0,
            value: Complex::real(5.0),
        });
        let v = ckt.solve_injection(1.0, GROUND, 0).unwrap();
        assert!((v[0].re - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn floating_node_does_not_panic() {
        // Node 1 floats; GMIN keeps the system solvable.
        let mut ckt = AcCircuit::new(2);
        ckt.add(AcElement::Conductance {
            a: 0,
            b: GROUND,
            g: 1e-3,
        });
        ckt.add(AcElement::CurrentSource {
            a: GROUND,
            b: 0,
            value: Complex::ONE,
        });
        assert!(ckt.solve(1e3).is_ok());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_panics() {
        let mut ckt = AcCircuit::new(1);
        ckt.add(AcElement::Conductance {
            a: 3,
            b: GROUND,
            g: 1.0,
        });
    }
}
