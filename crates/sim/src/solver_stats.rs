//! Process-wide counters for the linear-solver hot path.
//!
//! The execution engine fans evaluations out over worker threads, so the
//! counters are lock-free atomics.  The bench harness snapshots them to report
//! how much work the symbolic-reuse machinery actually saved (one symbolic
//! analysis amortised over many numeric refactorisations) and how often the
//! dense small-matrix fallback fired.

use std::sync::atomic::{AtomicU64, Ordering};

static SYMBOLIC_ANALYSES: AtomicU64 = AtomicU64::new(0);
static SPARSE_REFACTORS: AtomicU64 = AtomicU64::new(0);
static SPARSE_SOLVES: AtomicU64 = AtomicU64::new(0);
static DENSE_FACTORS: AtomicU64 = AtomicU64::new(0);
static DENSE_SOLVES: AtomicU64 = AtomicU64::new(0);
static TEMPLATE_HITS: AtomicU64 = AtomicU64::new(0);
static TEMPLATE_BUILDS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the solver counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolverStats {
    /// Symbolic LU analyses performed (once per sparsity pattern).
    pub symbolic_analyses: u64,
    /// Numeric sparse refactorisations against a shared symbolic analysis.
    pub sparse_refactors: u64,
    /// Right-hand sides solved through the sparse path.
    pub sparse_solves: u64,
    /// Dense factorisations (small-matrix fallback or legacy path).
    pub dense_factors: u64,
    /// Right-hand sides solved through the dense fallback.
    pub dense_solves: u64,
    /// Compiles served by the per-topology template cache (pattern build,
    /// slot lookups and symbolic analysis all skipped).
    pub template_hits: u64,
    /// Templates built from scratch (first compile of a topology).
    pub template_builds: u64,
}

impl SolverStats {
    /// Numeric refactorisations amortised per symbolic analysis.
    pub fn reuse_ratio(&self) -> f64 {
        if self.symbolic_analyses == 0 {
            0.0
        } else {
            self.sparse_refactors as f64 / self.symbolic_analyses as f64
        }
    }

    /// Fraction of sparse compiles served by the per-topology template cache.
    pub fn template_hit_rate(&self) -> f64 {
        let total = self.template_hits + self.template_builds;
        if total == 0 {
            0.0
        } else {
            self.template_hits as f64 / total as f64
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} symbolic analyses, {} sparse refactors ({:.1}x reuse), {} sparse solves, {} dense factors, {} dense solves, {} template hits / {} builds ({:.1}% hit rate)",
            self.symbolic_analyses,
            self.sparse_refactors,
            self.reuse_ratio(),
            self.sparse_solves,
            self.dense_factors,
            self.dense_solves,
            self.template_hits,
            self.template_builds,
            100.0 * self.template_hit_rate(),
        )
    }
}

pub(crate) fn record_symbolic_analysis() {
    SYMBOLIC_ANALYSES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_sparse_refactor() {
    SPARSE_REFACTORS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_sparse_solve() {
    SPARSE_SOLVES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_dense_factor() {
    DENSE_FACTORS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_dense_solve() {
    DENSE_SOLVES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_template_hit() {
    TEMPLATE_HITS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_template_build() {
    TEMPLATE_BUILDS.fetch_add(1, Ordering::Relaxed);
}

/// Reads the current counters.
pub fn snapshot() -> SolverStats {
    SolverStats {
        symbolic_analyses: SYMBOLIC_ANALYSES.load(Ordering::Relaxed),
        sparse_refactors: SPARSE_REFACTORS.load(Ordering::Relaxed),
        sparse_solves: SPARSE_SOLVES.load(Ordering::Relaxed),
        dense_factors: DENSE_FACTORS.load(Ordering::Relaxed),
        dense_solves: DENSE_SOLVES.load(Ordering::Relaxed),
        template_hits: TEMPLATE_HITS.load(Ordering::Relaxed),
        template_builds: TEMPLATE_BUILDS.load(Ordering::Relaxed),
    }
}

/// Resets every counter to zero (bench-harness bookkeeping).
pub fn reset() {
    SYMBOLIC_ANALYSES.store(0, Ordering::Relaxed);
    SPARSE_REFACTORS.store(0, Ordering::Relaxed);
    SPARSE_SOLVES.store(0, Ordering::Relaxed);
    DENSE_FACTORS.store(0, Ordering::Relaxed);
    DENSE_SOLVES.store(0, Ordering::Relaxed);
    TEMPLATE_HITS.store(0, Ordering::Relaxed);
    TEMPLATE_BUILDS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_ratio_and_summary() {
        let stats = SolverStats {
            symbolic_analyses: 2,
            sparse_refactors: 50,
            sparse_solves: 60,
            dense_factors: 3,
            dense_solves: 3,
            template_hits: 9,
            template_builds: 1,
        };
        assert!((stats.reuse_ratio() - 25.0).abs() < 1e-12);
        assert!((stats.template_hit_rate() - 0.9).abs() < 1e-12);
        assert!(stats.summary().contains("25.0x reuse"));
        assert!(stats.summary().contains("9 template hits"));
        assert_eq!(SolverStats::default().reuse_ratio(), 0.0);
        assert_eq!(SolverStats::default().template_hit_rate(), 0.0);
    }
}
