//! Process-wide counters for the linear-solver hot path.
//!
//! The execution engine fans evaluations out over worker threads, so the
//! counters are lock-free atomics.  The bench harness snapshots them to report
//! how much work the symbolic-reuse machinery actually saved (one symbolic
//! analysis amortised over many numeric refactorisations) and how often the
//! dense small-matrix fallback fired.

use std::sync::atomic::{AtomicU64, Ordering};

static SYMBOLIC_ANALYSES: AtomicU64 = AtomicU64::new(0);
static SPARSE_REFACTORS: AtomicU64 = AtomicU64::new(0);
static SPARSE_SOLVES: AtomicU64 = AtomicU64::new(0);
static DENSE_FACTORS: AtomicU64 = AtomicU64::new(0);
static DENSE_SOLVES: AtomicU64 = AtomicU64::new(0);
static TEMPLATE_HITS: AtomicU64 = AtomicU64::new(0);
static TEMPLATE_BUILDS: AtomicU64 = AtomicU64::new(0);
static UPDATE_HITS: AtomicU64 = AtomicU64::new(0);
static REFACTOR_FALLBACKS: AtomicU64 = AtomicU64::new(0);
static CACHE_EVICTIONS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the solver counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolverStats {
    /// Symbolic LU analyses performed (once per sparsity pattern).
    pub symbolic_analyses: u64,
    /// Numeric sparse refactorisations against a shared symbolic analysis.
    pub sparse_refactors: u64,
    /// Right-hand sides solved through the sparse path.
    pub sparse_solves: u64,
    /// Dense factorisations (small-matrix fallback or legacy path).
    pub dense_factors: u64,
    /// Right-hand sides solved through the dense fallback.
    pub dense_solves: u64,
    /// Compiles served by the per-topology template cache (pattern build,
    /// slot lookups and symbolic analysis all skipped).
    pub template_hits: u64,
    /// Templates built from scratch (first compile of a topology).
    pub template_builds: u64,
    /// Candidate solves served by a Sherman–Morrison–Woodbury rank-k
    /// correction against a shared base factorisation (no refactor paid).
    pub update_hits: u64,
    /// Candidate solves that started on the update path but fell back to a
    /// full refactor (ill-conditioned correction or failed residual gate).
    pub refactor_fallbacks: u64,
    /// Cold entries evicted from the template/symbolic caches at capacity
    /// (previously the whole cache was dropped).
    pub cache_evictions: u64,
}

impl SolverStats {
    /// Numeric refactorisations amortised per symbolic analysis.
    pub fn reuse_ratio(&self) -> f64 {
        if self.symbolic_analyses == 0 {
            0.0
        } else {
            self.sparse_refactors as f64 / self.symbolic_analyses as f64
        }
    }

    /// Fraction of sparse compiles served by the per-topology template cache.
    pub fn template_hit_rate(&self) -> f64 {
        let total = self.template_hits + self.template_builds;
        if total == 0 {
            0.0
        } else {
            self.template_hits as f64 / total as f64
        }
    }

    /// Fraction of update-path attempts that stayed on the update path.
    pub fn update_hit_rate(&self) -> f64 {
        let total = self.update_hits + self.refactor_fallbacks;
        if total == 0 {
            0.0
        } else {
            self.update_hits as f64 / total as f64
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} symbolic analyses, {} sparse refactors ({:.1}x reuse), {} sparse solves, {} dense factors, {} dense solves, {} template hits / {} builds ({:.1}% hit rate), {} update hits / {} refactor fallbacks, {} cache evictions",
            self.symbolic_analyses,
            self.sparse_refactors,
            self.reuse_ratio(),
            self.sparse_solves,
            self.dense_factors,
            self.dense_solves,
            self.template_hits,
            self.template_builds,
            100.0 * self.template_hit_rate(),
            self.update_hits,
            self.refactor_fallbacks,
            self.cache_evictions,
        )
    }
}

pub(crate) fn record_symbolic_analysis() {
    SYMBOLIC_ANALYSES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_sparse_refactor() {
    SPARSE_REFACTORS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_sparse_solve() {
    SPARSE_SOLVES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_dense_factor() {
    DENSE_FACTORS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_dense_solve() {
    DENSE_SOLVES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_template_hit() {
    TEMPLATE_HITS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_template_build() {
    TEMPLATE_BUILDS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_update_hit() {
    UPDATE_HITS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_refactor_fallback() {
    REFACTOR_FALLBACKS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_cache_eviction() {
    CACHE_EVICTIONS.fetch_add(1, Ordering::Relaxed);
}

/// Reads the current counters.
pub fn snapshot() -> SolverStats {
    SolverStats {
        symbolic_analyses: SYMBOLIC_ANALYSES.load(Ordering::Relaxed),
        sparse_refactors: SPARSE_REFACTORS.load(Ordering::Relaxed),
        sparse_solves: SPARSE_SOLVES.load(Ordering::Relaxed),
        dense_factors: DENSE_FACTORS.load(Ordering::Relaxed),
        dense_solves: DENSE_SOLVES.load(Ordering::Relaxed),
        template_hits: TEMPLATE_HITS.load(Ordering::Relaxed),
        template_builds: TEMPLATE_BUILDS.load(Ordering::Relaxed),
        update_hits: UPDATE_HITS.load(Ordering::Relaxed),
        refactor_fallbacks: REFACTOR_FALLBACKS.load(Ordering::Relaxed),
        cache_evictions: CACHE_EVICTIONS.load(Ordering::Relaxed),
    }
}

/// Resets every counter to zero (bench-harness bookkeeping).
pub fn reset() {
    SYMBOLIC_ANALYSES.store(0, Ordering::Relaxed);
    SPARSE_REFACTORS.store(0, Ordering::Relaxed);
    SPARSE_SOLVES.store(0, Ordering::Relaxed);
    DENSE_FACTORS.store(0, Ordering::Relaxed);
    DENSE_SOLVES.store(0, Ordering::Relaxed);
    TEMPLATE_HITS.store(0, Ordering::Relaxed);
    TEMPLATE_BUILDS.store(0, Ordering::Relaxed);
    UPDATE_HITS.store(0, Ordering::Relaxed);
    REFACTOR_FALLBACKS.store(0, Ordering::Relaxed);
    CACHE_EVICTIONS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_ratio_and_summary() {
        let stats = SolverStats {
            symbolic_analyses: 2,
            sparse_refactors: 50,
            sparse_solves: 60,
            dense_factors: 3,
            dense_solves: 3,
            template_hits: 9,
            template_builds: 1,
            update_hits: 12,
            refactor_fallbacks: 4,
            cache_evictions: 2,
        };
        assert!((stats.reuse_ratio() - 25.0).abs() < 1e-12);
        assert!((stats.template_hit_rate() - 0.9).abs() < 1e-12);
        assert!((stats.update_hit_rate() - 0.75).abs() < 1e-12);
        assert!(stats.summary().contains("25.0x reuse"));
        assert!(stats.summary().contains("9 template hits"));
        assert!(stats.summary().contains("12 update hits"));
        assert!(stats.summary().contains("2 cache evictions"));
        assert_eq!(SolverStats::default().reuse_ratio(), 0.0);
        assert_eq!(SolverStats::default().template_hit_rate(), 0.0);
        assert_eq!(SolverStats::default().update_hit_rate(), 0.0);
    }
}
