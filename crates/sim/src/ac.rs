//! AC frequency sweeps and response-shape metric extraction.

use crate::smallsignal::{AcCircuit, NodeIndex};
use crate::SimError;
use gcnrl_linalg::Complex;

/// Generates a logarithmic frequency grid from `f_min` to `f_max` (hertz).
///
/// # Panics
///
/// Panics if `f_min <= 0`, `f_max <= f_min`, or `points_per_decade == 0`.
pub fn log_sweep(f_min: f64, f_max: f64, points_per_decade: usize) -> Vec<f64> {
    assert!(f_min > 0.0 && f_max > f_min, "invalid sweep range");
    assert!(points_per_decade > 0, "points_per_decade must be positive");
    let decades = (f_max / f_min).log10();
    let n = (decades * points_per_decade as f64).ceil() as usize + 1;
    (0..n)
        .map(|i| f_min * 10f64.powf(i as f64 * decades / (n - 1) as f64))
        .collect()
}

/// The sampled transfer function of one output node over a frequency sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyResponse {
    points: Vec<(f64, Complex)>,
}

impl FrequencyResponse {
    /// Creates a response from `(frequency, phasor)` samples.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    pub fn new(points: Vec<(f64, Complex)>) -> Self {
        assert!(!points.is_empty(), "frequency response cannot be empty");
        FrequencyResponse { points }
    }

    /// The raw `(frequency, phasor)` samples.
    pub fn points(&self) -> &[(f64, Complex)] {
        &self.points
    }

    /// Magnitude of the lowest-frequency sample (the "DC" gain of the sweep).
    pub fn dc_gain(&self) -> f64 {
        self.points[0].1.abs()
    }

    /// Magnitude in dB at sample index `i`.
    pub fn magnitude_db(&self, i: usize) -> f64 {
        20.0 * self.points[i].1.abs().log10()
    }

    /// The -3 dB bandwidth relative to the DC gain, in hertz.
    ///
    /// Returns the highest swept frequency if the response never drops 3 dB
    /// (the bandwidth is beyond the sweep).
    pub fn bandwidth_3db(&self) -> f64 {
        let target = self.dc_gain() / 2f64.sqrt();
        for w in self.points.windows(2) {
            let (f0, v0) = (w[0].0, w[0].1.abs());
            let (f1, v1) = (w[1].0, w[1].1.abs());
            if v0 >= target && v1 < target {
                // Log-linear interpolation between the bracketing samples.
                let t = (v0 - target) / (v0 - v1);
                return f0 * (f1 / f0).powf(t);
            }
        }
        self.points.last().expect("non-empty").0
    }

    /// Frequency at which the magnitude crosses unity (0 dB), in hertz, or
    /// `None` if it never does within the sweep.
    pub fn unity_gain_freq(&self) -> Option<f64> {
        if self.points[0].1.abs() < 1.0 {
            return None;
        }
        for w in self.points.windows(2) {
            let (f0, v0) = (w[0].0, w[0].1.abs());
            let (f1, v1) = (w[1].0, w[1].1.abs());
            if v0 >= 1.0 && v1 < 1.0 {
                let t = (v0 - 1.0) / (v0 - v1);
                return Some(f0 * (f1 / f0).powf(t));
            }
        }
        None
    }

    /// Phase margin in degrees: `180° + phase` at the unity-gain frequency.
    ///
    /// Returns `None` when the gain never crosses unity inside the sweep; the
    /// loop is then unconditionally stable within the modelled bandwidth.
    pub fn phase_margin_deg(&self) -> Option<f64> {
        let fu = self.unity_gain_freq()?;
        // Find the closest sample and use its unwrapped phase.
        let mut phase_prev = self.points[0].1.arg();
        let mut unwrapped = phase_prev;
        let mut phase_at_fu = unwrapped;
        for &(f, v) in &self.points {
            let raw = v.arg();
            let mut delta = raw - phase_prev;
            while delta > std::f64::consts::PI {
                delta -= 2.0 * std::f64::consts::PI;
            }
            while delta < -std::f64::consts::PI {
                delta += 2.0 * std::f64::consts::PI;
            }
            unwrapped += delta;
            phase_prev = raw;
            if f <= fu {
                phase_at_fu = unwrapped;
            }
        }
        // Phase relative to the low-frequency phase (removes the inversion of
        // an inverting amplifier from the margin computation).
        let reference = self.points[0].1.arg();
        let lag_deg = (phase_at_fu - reference).to_degrees();
        Some((180.0 + lag_deg).clamp(0.0, 180.0))
    }

    /// Peaking: how far (in dB) the magnitude rises above the DC gain.
    /// A monotonically rolling-off response has zero peaking.
    pub fn peaking_db(&self) -> f64 {
        let dc = self.dc_gain();
        let peak = self
            .points
            .iter()
            .map(|(_, v)| v.abs())
            .fold(0.0f64, f64::max);
        if peak > dc {
            20.0 * (peak / dc).log10()
        } else {
            0.0
        }
    }

    /// Gain–bandwidth product: DC gain times the -3 dB bandwidth.
    pub fn gbw(&self) -> f64 {
        self.dc_gain() * self.bandwidth_3db()
    }
}

/// Sweeps the circuit's transfer function to `output` over `freqs`.
///
/// Compiles the circuit once (see [`crate::CompiledAc`]) and solves every
/// frequency point by a value-only restamp plus numeric refactorisation
/// against the shared symbolic analysis — no per-point element walk.
///
/// # Errors
///
/// Propagates [`SimError::SingularSystem`] from any frequency point.
pub fn sweep(
    circuit: &AcCircuit,
    output: NodeIndex,
    freqs: &[f64],
) -> Result<FrequencyResponse, SimError> {
    let mut compiled = circuit.compile()?;
    sweep_compiled(&mut compiled, output, freqs)
}

/// Sweeps an already-compiled circuit, reusing its factorisation machinery.
///
/// # Errors
///
/// Propagates [`SimError::SingularSystem`] from any frequency point.
pub fn sweep_compiled(
    compiled: &mut crate::CompiledAc,
    output: NodeIndex,
    freqs: &[f64],
) -> Result<FrequencyResponse, SimError> {
    Ok(FrequencyResponse::new(
        compiled.sweep_voltages(output, freqs)?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smallsignal::{AcElement, GROUND};

    fn single_pole(r: f64, c: f64) -> AcCircuit {
        let mut ckt = AcCircuit::new(1);
        ckt.add(AcElement::Conductance {
            a: 0,
            b: GROUND,
            g: 1.0 / r,
        });
        ckt.add(AcElement::Capacitance { a: 0, b: GROUND, c });
        ckt.add(AcElement::CurrentSource {
            a: GROUND,
            b: 0,
            value: Complex::ONE,
        });
        ckt
    }

    #[test]
    fn log_sweep_is_monotone_and_bounded() {
        let f = log_sweep(1.0, 1e6, 10);
        assert!(f.windows(2).all(|w| w[1] > w[0]));
        assert!((f[0] - 1.0).abs() < 1e-12);
        assert!((f.last().unwrap() - 1e6).abs() / 1e6 < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid sweep range")]
    fn log_sweep_rejects_bad_range() {
        let _ = log_sweep(10.0, 1.0, 5);
    }

    #[test]
    fn single_pole_bandwidth_matches_rc() {
        let (r, c) = (10e3, 1e-12);
        let expected = 1.0 / (2.0 * std::f64::consts::PI * r * c);
        let ckt = single_pole(r, c);
        let resp = sweep(&ckt, 0, &log_sweep(1e3, 1e12, 40)).unwrap();
        let bw = resp.bandwidth_3db();
        assert!(
            (bw - expected).abs() / expected < 0.05,
            "bw {bw} vs {expected}"
        );
        assert!((resp.dc_gain() - r).abs() / r < 1e-3);
        assert!(resp.peaking_db() < 1e-9);
        assert!((resp.gbw() - r * bw).abs() < 1e-6 * r * bw);
    }

    #[test]
    fn unity_gain_and_phase_margin_of_integrator_like_response() {
        // Single-pole response with DC gain 1000 and pole at ~159 Hz:
        // unity gain near 159 kHz with ~90 degrees of phase margin.
        let r = 1e3;
        let c = 1e-6;
        let mut ckt = single_pole(r, c);
        // scale the source to get a DC gain of 1000 V/A * 1 A = 1000.
        ckt.add(AcElement::CurrentSource {
            a: GROUND,
            b: 0,
            value: Complex::ZERO,
        });
        let resp = sweep(&ckt, 0, &log_sweep(1.0, 1e9, 30)).unwrap();
        let fu = resp.unity_gain_freq().expect("crosses unity");
        let pole = 1.0 / (2.0 * std::f64::consts::PI * r * c);
        let expected_fu = pole * r; // gain*pole ~ asymptotic crossover
        assert!(fu > expected_fu * 0.5 && fu < expected_fu * 2.0, "fu {fu}");
        let pm = resp.phase_margin_deg().unwrap();
        assert!(pm > 85.0 && pm <= 95.0, "pm {pm}");
    }

    #[test]
    fn never_crossing_unity_returns_none() {
        // Attenuator: gain < 1 everywhere.
        let mut ckt = AcCircuit::new(1);
        ckt.add(AcElement::Conductance {
            a: 0,
            b: GROUND,
            g: 10.0,
        });
        ckt.add(AcElement::CurrentSource {
            a: GROUND,
            b: 0,
            value: Complex::ONE,
        });
        let resp = sweep(&ckt, 0, &log_sweep(1.0, 1e6, 10)).unwrap();
        assert!(resp.unity_gain_freq().is_none());
        assert!(resp.phase_margin_deg().is_none());
    }

    #[test]
    fn peaking_detected_for_resonant_response() {
        // Two-node LC-ish resonance approximated with a gyrator is overkill;
        // instead fabricate a response directly.
        let points = vec![
            (1.0, Complex::real(1.0)),
            (10.0, Complex::real(1.5)),
            (100.0, Complex::real(0.5)),
        ];
        let resp = FrequencyResponse::new(points);
        assert!((resp.peaking_db() - 20.0 * 1.5f64.log10()).abs() < 1e-9);
    }
}
