use std::fmt;

/// Errors produced by the analog simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The DC Newton iteration failed to converge.
    DcNoConvergence {
        /// Number of iterations attempted.
        iterations: usize,
        /// Final residual norm.
        residual: f64,
    },
    /// The AC system matrix was singular at some frequency.
    SingularSystem {
        /// Frequency in hertz at which the solve failed.
        frequency_hz: f64,
    },
    /// An evaluator was asked about a metric it does not produce.
    UnknownMetric {
        /// The requested metric name.
        name: String,
    },
    /// The candidate sizing produced a bias point outside the valid operating
    /// region (e.g. a transistor pushed out of saturation).
    InfeasibleBias {
        /// Designator of the offending device.
        device: String,
        /// Explanation of the violation.
        reason: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DcNoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "dc analysis did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            SimError::SingularSystem { frequency_hz } => {
                write!(f, "singular small-signal system at {frequency_hz:.3e} Hz")
            }
            SimError::UnknownMetric { name } => write!(f, "unknown metric `{name}`"),
            SimError::InfeasibleBias { device, reason } => {
                write!(f, "infeasible bias at device `{device}`: {reason}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_detail() {
        let e = SimError::InfeasibleBias {
            device: "T5".into(),
            reason: "negative overdrive",
        };
        assert!(e.to_string().contains("T5"));
        assert!(SimError::UnknownMetric { name: "zap".into() }
            .to_string()
            .contains("zap"));
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
