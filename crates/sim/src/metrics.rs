//! Named performance metrics and reports.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Whether a larger or a smaller value of a metric is preferable.
///
/// Mirrors the paper's weight assignment: `w_i = 1` for "larger is better"
/// metrics (gain, bandwidth, phase margin, PSRR, ...) and `w_i = -1` for
/// "smaller is better" metrics (power, noise, peaking, settling time, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricDirection {
    /// Larger values are better.
    HigherIsBetter,
    /// Smaller values are better.
    LowerIsBetter,
}

impl MetricDirection {
    /// The default FoM weight sign for this direction (`+1` or `-1`).
    pub fn default_weight(self) -> f64 {
        match self {
            MetricDirection::HigherIsBetter => 1.0,
            MetricDirection::LowerIsBetter => -1.0,
        }
    }
}

/// Static description of one performance metric an evaluator produces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricSpec {
    /// Stable snake_case metric key, e.g. `"bw_hz"`.
    pub name: &'static str,
    /// Unit used when printing tables, e.g. `"GHz"`.
    pub unit: &'static str,
    /// Preferred direction of the metric.
    pub direction: MetricDirection,
}

/// The measured performance of one candidate sizing.
///
/// `feasible` is `false` when the bias analysis found an invalid operating
/// point (a transistor out of saturation, a collapsed branch current, ...);
/// the FoM assigns such designs a fixed negative reward as in the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerformanceReport {
    values: BTreeMap<String, f64>,
    /// Whether the operating point was electrically valid.
    pub feasible: bool,
}

impl PerformanceReport {
    /// Creates an empty, feasible report.
    pub fn new() -> Self {
        PerformanceReport {
            values: BTreeMap::new(),
            feasible: true,
        }
    }

    /// Creates an empty report flagged infeasible.
    pub fn infeasible() -> Self {
        PerformanceReport {
            values: BTreeMap::new(),
            feasible: false,
        }
    }

    /// Sets metric `name` to `value`, replacing any previous value.
    pub fn set(&mut self, name: &str, value: f64) {
        self.values.insert(name.to_owned(), value);
    }

    /// Value of metric `name`, if present.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// All `(name, value)` pairs in alphabetical order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of metrics recorded.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when no metrics were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl Default for PerformanceReport {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_weights() {
        assert_eq!(MetricDirection::HigherIsBetter.default_weight(), 1.0);
        assert_eq!(MetricDirection::LowerIsBetter.default_weight(), -1.0);
    }

    #[test]
    fn report_set_get_iter() {
        let mut r = PerformanceReport::new();
        assert!(r.is_empty());
        r.set("gain", 100.0);
        r.set("power_mw", 3.0);
        r.set("gain", 120.0);
        assert_eq!(r.get("gain"), Some(120.0));
        assert_eq!(r.get("missing"), None);
        assert_eq!(r.len(), 2);
        assert!(r.feasible);
        let names: Vec<&str> = r.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["gain", "power_mw"]);
    }

    #[test]
    fn infeasible_flag() {
        let r = PerformanceReport::infeasible();
        assert!(!r.feasible);
        assert!(r.is_empty());
        assert_eq!(PerformanceReport::default(), PerformanceReport::new());
    }
}
