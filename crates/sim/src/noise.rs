//! Output-referred thermal-noise analysis.
//!
//! Every transistor contributes a drain thermal-noise current of PSD
//! `4kTγ·gm` and every resistor `4kT/R`.  Each source is injected into the
//! linearised circuit (one MNA solve per source) and its contribution to the
//! output node is accumulated in power.  The evaluators then refer the output
//! noise back to the input by dividing by the signal transfer function.

use crate::compiled::CompiledAc;
use crate::smallsignal::{AcCircuit, NodeIndex};
use crate::SimError;

/// One independent noise current source between two nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseSource {
    /// Node the noise current is drawn from.
    pub a: NodeIndex,
    /// Node the noise current is injected into.
    pub b: NodeIndex,
    /// Power spectral density of the current, A²/Hz.
    pub psd: f64,
}

/// Total output-referred noise voltage PSD (V²/Hz) at `output` and `freq_hz`.
///
/// # Errors
///
/// Propagates [`SimError::SingularSystem`] from the underlying solves.
pub fn output_noise_psd(
    circuit: &AcCircuit,
    sources: &[NoiseSource],
    output: NodeIndex,
    freq_hz: f64,
) -> Result<f64, SimError> {
    let mut compiled = circuit.compile()?;
    output_noise_psd_compiled(&mut compiled, sources, output, freq_hz)
}

/// [`output_noise_psd`] against an already-compiled circuit: the admittance
/// matrix is factored **once** at `freq_hz` and every noise source reuses the
/// factorisation for its injection solve (the legacy path refactored per
/// source).
///
/// # Errors
///
/// Propagates [`SimError::SingularSystem`] from the underlying solves.
pub fn output_noise_psd_compiled(
    compiled: &mut CompiledAc,
    sources: &[NoiseSource],
    output: NodeIndex,
    freq_hz: f64,
) -> Result<f64, SimError> {
    let mut total = 0.0;
    compiled.factor_at(freq_hz)?;
    for src in sources {
        if src.psd <= 0.0 {
            continue;
        }
        let gain_sq = compiled.injection_gain(src.a, src.b, output)?.abs_sq();
        total += src.psd * gain_sq;
    }
    Ok(total)
}

/// [`output_noise_psd_compiled`] for a `candidate` circuit that differs from
/// an already-compiled `base` in a handful of stamp slots: the base is
/// factored once and every injection solve is corrected through a shared
/// Sherman–Morrison–Woodbury rank-k plan instead of factoring the candidate.
/// A candidate with no update relationship (different topology or too many
/// perturbed rows), an ill-conditioned plan, or a failed residual gate falls
/// back to the candidate's own factor-once path.
///
/// # Errors
///
/// Propagates [`SimError::SingularSystem`] from the underlying solves.
pub fn output_noise_psd_via_update(
    base: &mut CompiledAc,
    candidate: &mut CompiledAc,
    sources: &[NoiseSource],
    output: NodeIndex,
    freq_hz: f64,
) -> Result<f64, SimError> {
    let Some(plan) = base.injection_update_plan(candidate, freq_hz)? else {
        return output_noise_psd_compiled(candidate, sources, output, freq_hz);
    };
    let mut total = 0.0;
    for src in sources {
        if src.psd <= 0.0 {
            continue;
        }
        match base.solve_injection_updated(&plan, src.a, src.b, freq_hz)? {
            Some(x) => total += src.psd * x[output].abs_sq(),
            // Residual gate tripped: the correction is not trustworthy for
            // this circuit, so pay the candidate's own factorisation.
            None => return output_noise_psd_compiled(candidate, sources, output, freq_hz),
        }
    }
    Ok(total)
}

/// [`output_noise_psd_via_update`] as an RMS density (V/√Hz).
///
/// # Errors
///
/// Propagates [`SimError::SingularSystem`] from the underlying solves.
pub fn output_noise_density_via_update(
    base: &mut CompiledAc,
    candidate: &mut CompiledAc,
    sources: &[NoiseSource],
    output: NodeIndex,
    freq_hz: f64,
) -> Result<f64, SimError> {
    Ok(output_noise_psd_via_update(base, candidate, sources, output, freq_hz)?.sqrt())
}

/// Output-referred RMS noise voltage spectral density (V/√Hz).
///
/// # Errors
///
/// Propagates [`SimError::SingularSystem`] from the underlying solves.
pub fn output_noise_density(
    circuit: &AcCircuit,
    sources: &[NoiseSource],
    output: NodeIndex,
    freq_hz: f64,
) -> Result<f64, SimError> {
    Ok(output_noise_psd(circuit, sources, output, freq_hz)?.sqrt())
}

/// [`output_noise_density`] against an already-compiled circuit.
///
/// # Errors
///
/// Propagates [`SimError::SingularSystem`] from the underlying solves.
pub fn output_noise_density_compiled(
    compiled: &mut CompiledAc,
    sources: &[NoiseSource],
    output: NodeIndex,
    freq_hz: f64,
) -> Result<f64, SimError> {
    Ok(output_noise_psd_compiled(compiled, sources, output, freq_hz)?.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mosfet::{resistor_noise_psd, KT};
    use crate::smallsignal::{AcElement, GROUND};

    #[test]
    fn single_resistor_noise_matches_4ktr() {
        // A resistor R to ground: its own noise current through its own
        // resistance gives an output voltage PSD of 4kT·R.
        let r = 10e3;
        let mut ckt = AcCircuit::new(1);
        ckt.add(AcElement::Conductance {
            a: 0,
            b: GROUND,
            g: 1.0 / r,
        });
        let sources = [NoiseSource {
            a: GROUND,
            b: 0,
            psd: resistor_noise_psd(r),
        }];
        let psd = output_noise_psd(&ckt, &sources, 0, 1.0).unwrap();
        let expected = 4.0 * KT * r;
        assert!((psd - expected).abs() / expected < 1e-6);
    }

    #[test]
    fn uncorrelated_sources_add_in_power() {
        let r = 1e3;
        let mut ckt = AcCircuit::new(1);
        ckt.add(AcElement::Conductance {
            a: 0,
            b: GROUND,
            g: 1.0 / r,
        });
        let one = [NoiseSource {
            a: GROUND,
            b: 0,
            psd: 1e-24,
        }];
        let two = [
            NoiseSource {
                a: GROUND,
                b: 0,
                psd: 1e-24,
            },
            NoiseSource {
                a: GROUND,
                b: 0,
                psd: 1e-24,
            },
        ];
        let p1 = output_noise_psd(&ckt, &one, 0, 1.0).unwrap();
        let p2 = output_noise_psd(&ckt, &two, 0, 1.0).unwrap();
        assert!((p2 - 2.0 * p1).abs() / p2 < 1e-12);
        let d = output_noise_density(&ckt, &one, 0, 1.0).unwrap();
        assert!((d * d - p1).abs() / p1 < 1e-12);
    }

    #[test]
    fn zero_psd_sources_are_skipped() {
        let mut ckt = AcCircuit::new(1);
        ckt.add(AcElement::Conductance {
            a: 0,
            b: GROUND,
            g: 1e-3,
        });
        let sources = [NoiseSource {
            a: GROUND,
            b: 0,
            psd: 0.0,
        }];
        assert_eq!(output_noise_psd(&ckt, &sources, 0, 1.0).unwrap(), 0.0);
    }

    #[test]
    fn capacitor_filters_high_frequency_noise() {
        let r = 10e3;
        let c = 1e-9;
        let mut ckt = AcCircuit::new(1);
        ckt.add(AcElement::Conductance {
            a: 0,
            b: GROUND,
            g: 1.0 / r,
        });
        ckt.add(AcElement::Capacitance { a: 0, b: GROUND, c });
        let sources = [NoiseSource {
            a: GROUND,
            b: 0,
            psd: resistor_noise_psd(r),
        }];
        let pole = 1.0 / (2.0 * std::f64::consts::PI * r * c);
        let low = output_noise_psd(&ckt, &sources, 0, pole / 100.0).unwrap();
        let high = output_noise_psd(&ckt, &sources, 0, pole * 100.0).unwrap();
        assert!(high < low / 100.0);
    }
}
