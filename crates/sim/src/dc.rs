//! Newton–Raphson DC operating-point solver for nonlinear resistive networks.
//!
//! The evaluators use this for bias cells whose operating point is not a
//! simple mirror ratio — e.g. the resistor-biased diode reference of the
//! three-stage TIA, where the reference current solves
//! `VDD = I·R_B + V_GS(I)` — and it is exercised independently by the test
//! suite on textbook circuits.
//!
//! Elements are resistors, independent current sources, grounded voltage
//! sources and square-law MOSFETs (either polarity).  The solver iterates
//! Newton steps with voltage-step damping and a `gmin` shunt for robustness.

use crate::compiled::DENSE_FALLBACK_MAX_NODES;
use crate::mosfet::MosDevice;
use crate::solver_stats;
use crate::SimError;
use gcnrl_circuit::{MosModelParams, MosPolarity, MosSizing};
use gcnrl_linalg::sparse::{SparseLu, SparsityPattern};
use gcnrl_linalg::{LuDecomposition, Matrix};
use std::sync::Arc;

/// Node index of a DC circuit; [`DC_GROUND`] is the reference node.
pub type DcNode = usize;

/// The ground / reference node.
pub const DC_GROUND: DcNode = usize::MAX;

/// One element of a DC circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum DcElement {
    /// Linear resistor between `a` and `b`.
    Resistor {
        /// First terminal.
        a: DcNode,
        /// Second terminal.
        b: DcNode,
        /// Resistance in ohms.
        r: f64,
    },
    /// Independent current source pushing `i` amps from `a` into `b`.
    CurrentSource {
        /// Node the current is drawn from.
        a: DcNode,
        /// Node the current is injected into.
        b: DcNode,
        /// Current in amps.
        i: f64,
    },
    /// Ideal voltage source holding `node` at `v` volts relative to ground.
    VoltageSource {
        /// The driven node.
        node: DcNode,
        /// Voltage in volts.
        v: f64,
    },
    /// A square-law MOSFET.
    Mosfet {
        /// Drain node.
        drain: DcNode,
        /// Gate node.
        gate: DcNode,
        /// Source node.
        source: DcNode,
        /// Device polarity.
        polarity: MosPolarity,
        /// Sizing.
        sizing: MosSizing,
        /// Model parameters (must match the polarity).
        model: MosModelParams,
    },
}

/// A DC circuit plus solver configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DcCircuit {
    num_nodes: usize,
    elements: Vec<DcElement>,
    max_iterations: usize,
    tolerance: f64,
}

const GMIN: f64 = 1e-9;
const MAX_STEP_V: f64 = 0.3;

impl DcCircuit {
    /// Creates an empty DC circuit with `num_nodes` non-ground nodes.
    pub fn new(num_nodes: usize) -> Self {
        DcCircuit {
            num_nodes,
            elements: Vec::new(),
            max_iterations: 200,
            tolerance: 1e-9,
        }
    }

    /// Adds an element.
    pub fn add(&mut self, element: DcElement) {
        self.elements.push(element);
    }

    /// Number of non-ground nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn voltage(v: &[f64], node: DcNode) -> f64 {
        if node == DC_GROUND {
            0.0
        } else {
            v[node]
        }
    }

    /// MOSFET drain current and conductances at the given terminal voltages,
    /// expressed for the NMOS convention; PMOS is handled by mirroring.
    fn mos_eval(
        polarity: MosPolarity,
        sizing: MosSizing,
        model: &MosModelParams,
        vd: f64,
        vg: f64,
        vs: f64,
    ) -> (f64, f64, f64) {
        // Returns (id_into_drain, gm, gds) in the sign convention of the
        // actual node voltages (PMOS current flows source -> drain).
        let dev = MosDevice::new(sizing, model);
        let (vgs, vds, sign) = match polarity {
            MosPolarity::Nmos => (vg - vs, vd - vs, 1.0),
            MosPolarity::Pmos => (vs - vg, vs - vd, -1.0),
        };
        let vds_pos = vds.max(0.0);
        let id = dev.id(vgs, vds_pos);
        // Finite-difference small-signal parameters keep the Jacobian
        // consistent with the current equation in all regions.
        let dv = 1e-6;
        let gm = (dev.id(vgs + dv, vds_pos) - id) / dv;
        let gds = (dev.id(vgs, vds_pos + dv) - id) / dv;
        (sign * id, gm.max(0.0), gds.max(0.0))
    }

    /// Structural positions every Newton iteration can possibly stamp, used
    /// to build the shared Jacobian sparsity pattern once per solve.
    fn jacobian_positions(&self) -> Vec<(usize, usize)> {
        let n = self.num_nodes;
        let mut positions: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
        let pair = |positions: &mut Vec<(usize, usize)>, a: DcNode, b: DcNode| {
            if a != DC_GROUND {
                positions.push((a, a));
            }
            if b != DC_GROUND {
                positions.push((b, b));
            }
            if a != DC_GROUND && b != DC_GROUND {
                positions.push((a, b));
                positions.push((b, a));
            }
        };
        for e in &self.elements {
            match e {
                DcElement::Resistor { a, b, .. } => pair(&mut positions, *a, *b),
                DcElement::CurrentSource { .. } | DcElement::VoltageSource { .. } => {}
                DcElement::Mosfet {
                    drain,
                    gate,
                    source,
                    ..
                } => {
                    for row in [*drain, *source] {
                        for col in [*gate, *drain, *source] {
                            if row != DC_GROUND && col != DC_GROUND {
                                positions.push((row, col));
                            }
                        }
                    }
                }
            }
        }
        positions
    }

    /// Assembles the Jacobian and residual at the candidate solution `v` into
    /// the reused buffers (no per-iteration allocation).
    fn assemble_into(&self, v: &[f64], jac: &mut JacobianBuffer, res: &mut [f64]) {
        jac.clear();
        res.fill(0.0);

        for (i, r) in res.iter_mut().enumerate() {
            jac.add(i, i, GMIN);
            *r += GMIN * v[i];
        }

        let stamp_g = |jac: &mut JacobianBuffer, res: &mut [f64], a: DcNode, b: DcNode, g: f64| {
            let va = Self::voltage(v, a);
            let vb = Self::voltage(v, b);
            let i_ab = g * (va - vb);
            if a != DC_GROUND {
                res[a] += i_ab;
                jac.add(a, a, g);
                if b != DC_GROUND {
                    jac.add(a, b, -g);
                }
            }
            if b != DC_GROUND {
                res[b] -= i_ab;
                jac.add(b, b, g);
                if a != DC_GROUND {
                    jac.add(b, a, -g);
                }
            }
        };

        for e in &self.elements {
            match e {
                DcElement::Resistor { a, b, r } => {
                    stamp_g(jac, res, *a, *b, 1.0 / r);
                }
                DcElement::CurrentSource { a, b, i } => {
                    if *a != DC_GROUND {
                        res[*a] += *i;
                    }
                    if *b != DC_GROUND {
                        res[*b] -= *i;
                    }
                }
                DcElement::VoltageSource { .. } => {
                    // Handled after assembly by row substitution.
                }
                DcElement::Mosfet {
                    drain,
                    gate,
                    source,
                    polarity,
                    sizing,
                    model,
                } => {
                    let vd = Self::voltage(v, *drain);
                    let vg = Self::voltage(v, *gate);
                    let vs = Self::voltage(v, *source);
                    let (id, gm, gds) = Self::mos_eval(*polarity, *sizing, model, vd, vg, vs);
                    // Current `id` flows INTO the drain terminal and OUT of the
                    // source terminal (sign already reflects polarity).
                    if *drain != DC_GROUND {
                        res[*drain] += id;
                    }
                    if *source != DC_GROUND {
                        res[*source] -= id;
                    }
                    // Jacobian entries: d(id)/d(vg), d(id)/d(vd), d(id)/d(vs).
                    // The chain rule through the polarity mirroring makes the
                    // signed derivatives identical for NMOS and PMOS:
                    //   d(id_signed)/dVg = +gm, d/dVd = +gds, d/dVs = -(gm+gds).
                    let entries = [(*gate, gm), (*drain, gds), (*source, -(gm + gds))];
                    for (col, dval) in entries {
                        if *drain != DC_GROUND && col != DC_GROUND {
                            jac.add(*drain, col, dval);
                        }
                        if *source != DC_GROUND && col != DC_GROUND {
                            jac.add(*source, col, -dval);
                        }
                    }
                }
            }
        }

        // Voltage sources: replace the KCL row of the driven node by v_node = v.
        for e in &self.elements {
            if let DcElement::VoltageSource { node, v: vsrc } = e {
                if *node != DC_GROUND {
                    jac.zero_row(*node);
                    jac.add(*node, *node, 1.0);
                    res[*node] = v[*node] - vsrc;
                }
            }
        }
    }

    /// Solves for the node voltages.
    ///
    /// The Jacobian structure is compiled once (shared sparsity pattern and
    /// symbolic LU for circuits above the dense-fallback size) and every
    /// Newton iteration restamps values into the same buffers and refactors
    /// numerically — no per-iteration allocation of an `n x n` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DcNoConvergence`] if the residual does not fall
    /// below tolerance within the iteration budget, or
    /// [`SimError::SingularSystem`] if the Jacobian becomes singular.
    pub fn solve(&self, initial: Option<Vec<f64>>) -> Result<Vec<f64>, SimError> {
        let n = self.num_nodes;
        let mut v = initial.unwrap_or_else(|| vec![0.0; n]);
        assert_eq!(v.len(), n, "initial guess length mismatch");

        let mut jac = JacobianBuffer::for_circuit(self)?;
        let mut res = vec![0.0; n];
        let mut residual_norm = f64::INFINITY;
        for _ in 0..self.max_iterations {
            self.assemble_into(&v, &mut jac, &mut res);
            residual_norm = res.iter().map(|r| r.abs()).fold(0.0, f64::max);
            if residual_norm < self.tolerance {
                return Ok(v);
            }
            let delta = jac.factor_and_solve(&res)?;
            for i in 0..n {
                let step = delta[i].clamp(-MAX_STEP_V, MAX_STEP_V);
                v[i] -= step;
            }
        }
        // One last check in case the final update converged.
        self.assemble_into(&v, &mut jac, &mut res);
        let final_norm = res.iter().map(|r| r.abs()).fold(0.0, f64::max);
        if final_norm < self.tolerance {
            Ok(v)
        } else {
            Err(SimError::DcNoConvergence {
                iterations: self.max_iterations,
                residual: residual_norm,
            })
        }
    }
}

/// The reusable linear-solve state of one Newton run: either a dense matrix
/// buffer (small circuits) or slot values over a shared sparsity pattern with
/// a symbolic-once sparse LU (everything else).
enum JacobianBuffer {
    Dense {
        jac: Matrix,
    },
    Sparse {
        pattern: Arc<SparsityPattern>,
        values: Vec<f64>,
        numeric: SparseLu<f64>,
    },
}

impl JacobianBuffer {
    fn for_circuit(circuit: &DcCircuit) -> Result<Self, SimError> {
        let n = circuit.num_nodes;
        if n <= DENSE_FALLBACK_MAX_NODES {
            return Ok(JacobianBuffer::Dense {
                jac: Matrix::zeros(n, n),
            });
        }
        let singular = |_| SimError::SingularSystem { frequency_hz: 0.0 };
        let pattern = Arc::new(
            SparsityPattern::from_positions(n, &circuit.jacobian_positions()).map_err(singular)?,
        );
        // One symbolic analysis per Jacobian structure, shared process-wide
        // with the AC path's cache: repeated bias solves of the same topology
        // only replay the numeric elimination.
        let symbolic = crate::compiled::shared_symbolic(&pattern).map_err(singular)?;
        let numeric = SparseLu::new(symbolic, &pattern).map_err(singular)?;
        let values = vec![0.0; pattern.nnz()];
        Ok(JacobianBuffer::Sparse {
            pattern,
            values,
            numeric,
        })
    }

    fn clear(&mut self) {
        match self {
            JacobianBuffer::Dense { jac } => jac.as_mut_slice().fill(0.0),
            JacobianBuffer::Sparse { values, .. } => values.fill(0.0),
        }
    }

    fn add(&mut self, r: usize, c: usize, v: f64) {
        match self {
            JacobianBuffer::Dense { jac } => jac[(r, c)] += v,
            JacobianBuffer::Sparse {
                pattern, values, ..
            } => {
                let slot = pattern.slot(r, c).expect("stamp position is in pattern");
                values[slot] += v;
            }
        }
    }

    fn zero_row(&mut self, r: usize) {
        match self {
            JacobianBuffer::Dense { jac } => jac.row_mut(r).fill(0.0),
            JacobianBuffer::Sparse {
                pattern, values, ..
            } => values[pattern.row_slots(r)].fill(0.0),
        }
    }

    fn factor_and_solve(&mut self, rhs: &[f64]) -> Result<Vec<f64>, SimError> {
        let singular = |_| SimError::SingularSystem { frequency_hz: 0.0 };
        match self {
            JacobianBuffer::Dense { jac } => {
                solver_stats::record_dense_factor();
                solver_stats::record_dense_solve();
                LuDecomposition::new(jac)
                    .map_err(singular)?
                    .solve(rhs)
                    .map_err(singular)
            }
            JacobianBuffer::Sparse {
                pattern,
                values,
                numeric,
            } => {
                solver_stats::record_sparse_refactor();
                solver_stats::record_sparse_solve();
                numeric.refactor(values).map_err(singular)?;
                let mut x = numeric.solve(rhs).map_err(singular)?;
                // Static (pattern-chosen) pivoting loses accuracy when the
                // elimination grew elements badly — e.g. a Newton iterate
                // whose diagonal is only GMIN against mS-scale gm entries.
                // One step of iterative refinement restores it, mirroring
                // the AC path's safeguard.
                if numeric.growth_sq() > crate::compiled::BENIGN_GROWTH_SQ {
                    let mut residual = rhs.to_vec();
                    for (r, c, s) in pattern.iter() {
                        residual[r] -= values[s] * x[c];
                    }
                    let correction = numeric.solve(&residual).map_err(singular)?;
                    for (xi, ci) in x.iter_mut().zip(&correction) {
                        *xi += *ci;
                    }
                }
                Ok(x)
            }
        }
    }
}

/// Solves the classic resistor-biased diode reference: a resistor `r_bias`
/// from `vdd` to the drain/gate of a diode-connected NMOS.  Returns the
/// reference current in amps.
///
/// # Errors
///
/// Propagates solver errors; falls back to `vdd / r_bias` only through `Err`.
pub fn resistor_diode_reference(
    vdd: f64,
    r_bias: f64,
    sizing: MosSizing,
    model: &MosModelParams,
) -> Result<f64, SimError> {
    // The resistor from VDD to the diode is modelled by its Norton
    // equivalent (current source vdd/r in parallel with r to ground), which
    // keeps the network single-node.
    let mut ckt = DcCircuit::new(1);
    ckt.add(DcElement::CurrentSource {
        a: DC_GROUND,
        b: 0,
        i: vdd / r_bias,
    });
    ckt.add(DcElement::Resistor {
        a: 0,
        b: DC_GROUND,
        r: r_bias,
    });
    ckt.add(DcElement::Mosfet {
        drain: 0,
        gate: 0,
        source: DC_GROUND,
        polarity: MosPolarity::Nmos,
        sizing,
        model: *model,
    });
    let v = ckt.solve(Some(vec![model.vth0 + 0.2]))?;
    let i = (vdd - v[0]) / r_bias;
    Ok(i.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnrl_circuit::TechnologyNode;

    #[test]
    fn resistor_divider_dc() {
        // 1 V source, two equal resistors: middle node at 0.5 V.
        let mut ckt = DcCircuit::new(2);
        ckt.add(DcElement::VoltageSource { node: 0, v: 1.0 });
        ckt.add(DcElement::Resistor { a: 0, b: 1, r: 1e3 });
        ckt.add(DcElement::Resistor {
            a: 1,
            b: DC_GROUND,
            r: 1e3,
        });
        let v = ckt.solve(None).unwrap();
        assert!((v[0] - 1.0).abs() < 1e-6);
        assert!((v[1] - 0.5).abs() < 1e-4);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut ckt = DcCircuit::new(1);
        ckt.add(DcElement::CurrentSource {
            a: DC_GROUND,
            b: 0,
            i: 1e-3,
        });
        ckt.add(DcElement::Resistor {
            a: 0,
            b: DC_GROUND,
            r: 2e3,
        });
        let v = ckt.solve(None).unwrap();
        assert!((v[0] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn diode_connected_mosfet_bias() {
        // Push 100 µA into a diode-connected NMOS and check V_GS = Vth + Vov.
        let node = TechnologyNode::tsmc180();
        let sizing = MosSizing::new(10.0, 0.18, 1);
        let mut ckt = DcCircuit::new(1);
        ckt.add(DcElement::CurrentSource {
            a: DC_GROUND,
            b: 0,
            i: 100e-6,
        });
        ckt.add(DcElement::Mosfet {
            drain: 0,
            gate: 0,
            source: DC_GROUND,
            polarity: MosPolarity::Nmos,
            sizing,
            model: node.nmos,
        });
        let v = ckt.solve(Some(vec![0.6])).unwrap();
        let dev = MosDevice::new(sizing, &node.nmos);
        let expected_vov = dev.vov_for_current(100e-6);
        // CLM makes the exact overdrive slightly smaller than the ideal value.
        assert!(
            (v[0] - (node.nmos.vth0 + expected_vov)).abs() < 0.05,
            "vgs {} vs {}",
            v[0],
            node.nmos.vth0 + expected_vov
        );
    }

    #[test]
    fn resistor_diode_reference_current_is_plausible() {
        let node = TechnologyNode::tsmc180();
        let sizing = MosSizing::new(20.0, 0.5, 1);
        let i = resistor_diode_reference(1.8, 20e3, sizing, &node.nmos).unwrap();
        // The current must be below vdd/r and above (vdd - vth - 0.5)/r.
        assert!(i < 1.8 / 20e3);
        assert!(i > (1.8 - node.nmos.vth0 - 0.5) / 20e3, "i = {i}");
    }

    #[test]
    fn pmos_common_source_pulls_node_up() {
        // PMOS with source at VDD and gate low conducts and pulls its drain
        // (loaded by a resistor to ground) towards VDD.
        let node = TechnologyNode::tsmc180();
        let mut ckt = DcCircuit::new(3);
        ckt.add(DcElement::VoltageSource { node: 0, v: 1.8 }); // vdd
        ckt.add(DcElement::VoltageSource { node: 1, v: 0.8 }); // gate
        ckt.add(DcElement::Mosfet {
            drain: 2,
            gate: 1,
            source: 0,
            polarity: MosPolarity::Pmos,
            sizing: MosSizing::new(20.0, 0.18, 1),
            model: node.pmos,
        });
        ckt.add(DcElement::Resistor {
            a: 2,
            b: DC_GROUND,
            r: 10e3,
        });
        let v = ckt.solve(Some(vec![1.8, 0.8, 0.9])).unwrap();
        assert!(v[2] > 0.5, "drain voltage {}", v[2]);
        assert!(v[2] <= 1.8 + 1e-6);
    }

    #[test]
    fn resistor_ladder_uses_sparse_path_and_matches_analytic_solution() {
        // 8-node ladder (above the dense fallback size): 1 V source through
        // equal resistors to ground; node i sits at 1 - (i+1)/9... with the
        // source node pinned the interior nodes divide linearly.
        let n = 8;
        let mut ckt = DcCircuit::new(n);
        ckt.add(DcElement::VoltageSource { node: 0, v: 1.0 });
        for i in 0..n {
            let next = if i + 1 < n { i + 1 } else { DC_GROUND };
            ckt.add(DcElement::Resistor {
                a: i,
                b: next,
                r: 1e3,
            });
        }
        let v = ckt.solve(None).unwrap();
        for (i, vi) in v.iter().enumerate() {
            let expected = 1.0 - i as f64 / n as f64;
            assert!((vi - expected).abs() < 1e-4, "node {i}: {vi} vs {expected}");
        }
    }

    #[test]
    fn sparse_newton_matches_dense_newton_on_same_network() {
        // The same diode-connected device + ladder solved at two sizes: once
        // padded with extra nodes (sparse path) and once minimal (dense path);
        // the shared sub-network must bias identically.
        let node = TechnologyNode::tsmc180();
        let sizing = MosSizing::new(10.0, 0.18, 1);
        let build = |pad: usize| {
            let mut ckt = DcCircuit::new(1 + pad);
            ckt.add(DcElement::CurrentSource {
                a: DC_GROUND,
                b: 0,
                i: 100e-6,
            });
            ckt.add(DcElement::Mosfet {
                drain: 0,
                gate: 0,
                source: DC_GROUND,
                polarity: MosPolarity::Nmos,
                sizing,
                model: node.nmos,
            });
            for p in 0..pad {
                let prev = if p == 0 { 0 } else { p };
                ckt.add(DcElement::Resistor {
                    a: prev,
                    b: p + 1,
                    r: 10e3,
                });
            }
            ckt
        };
        let dense = build(0).solve(Some(vec![0.6])).unwrap();
        let sparse = build(6).solve(Some(vec![0.6; 7])).unwrap();
        assert!(
            (dense[0] - sparse[0]).abs() < 1e-4,
            "{} vs {}",
            dense[0],
            sparse[0]
        );
    }

    #[test]
    fn non_convergence_is_reported() {
        // A current source into an open node cannot converge beyond MAX
        // voltage... actually gmin makes it converge; force failure with an
        // absurd tolerance instead.
        let mut ckt = DcCircuit::new(1);
        ckt.tolerance = 0.0;
        ckt.add(DcElement::CurrentSource {
            a: DC_GROUND,
            b: 0,
            i: 1e-3,
        });
        ckt.add(DcElement::Resistor {
            a: 0,
            b: DC_GROUND,
            r: 1e3,
        });
        assert!(matches!(
            ckt.solve(None),
            Err(SimError::DcNoConvergence { .. }) | Ok(_)
        ));
    }
}
