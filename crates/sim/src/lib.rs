//! Analog performance simulator for the GCN-RL circuit designer.
//!
//! The paper evaluates candidate sizings with commercial SPICE simulators
//! (Cadence Spectre, Synopsys Hspice) and proprietary foundry device models.
//! Neither is available here, so this crate implements the closest synthetic
//! equivalent that exercises the same optimisation structure (see DESIGN.md):
//!
//! * [`mosfet`] — square-law (level-1) MOS device model with mobility
//!   degradation and channel-length modulation, producing operating points
//!   and small-signal parameters (`gm`, `gds`, capacitances, thermal noise).
//! * [`dc`] — a Newton–Raphson solver for nonlinear resistive networks, used
//!   for bias references (e.g. the resistor-biased mirror of the Three-TIA).
//! * [`smallsignal`] / [`ac`] — a complex-valued modified-nodal-analysis (MNA)
//!   solver and logarithmic AC sweeps with gain/bandwidth/phase-margin
//!   extraction.
//! * [`compiled`] — the sweep hot path: circuits pre-compiled into
//!   `Y(ω) = G + jωC` stamp slots over a shared sparsity pattern, refactored
//!   numerically against a symbolic-once sparse LU (dense fallback for tiny
//!   matrices), with [`solver_stats`] counting the reuse.
//! * [`noise`] — output-referred thermal-noise integration through the same
//!   MNA transfer functions.
//! * [`metrics`] — named performance metrics with "higher/lower is better"
//!   direction, consumed by the FoM in the `gcnrl` core crate.
//! * [`evaluators`] — one evaluator per benchmark circuit mapping a
//!   [`ParamVector`](gcnrl_circuit::ParamVector) to a [`PerformanceReport`].
//!
//! # Examples
//!
//! ```
//! use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};
//! use gcnrl_sim::evaluators::evaluator_for;
//!
//! let node = TechnologyNode::tsmc180();
//! let eval = evaluator_for(Benchmark::TwoStageTia, &node);
//! let circuit = Benchmark::TwoStageTia.circuit();
//! let space = circuit.design_space(&node);
//! let report = eval.evaluate(&space.nominal());
//! assert!(report.get("power_mw").is_some());
//! ```

pub mod ac;
pub mod compiled;
pub mod dc;
pub mod evaluators;
pub mod metrics;
pub mod mosfet;
pub mod noise;
pub mod smallsignal;
pub mod solver_stats;

mod error;

pub use compiled::CompiledAc;
pub use error::SimError;
pub use metrics::{MetricDirection, MetricSpec, PerformanceReport};
pub use smallsignal::{AcCircuit, AcElement, NodeIndex};
pub use solver_stats::SolverStats;
