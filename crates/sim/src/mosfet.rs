//! First-order MOS transistor model.
//!
//! The model is the classic square-law (SPICE level-1) model with two
//! refinements that matter for sizing trade-offs: vertical-field mobility
//! degradation (`Uc`) and channel-length modulation whose strength scales
//! inversely with the drawn length.  It provides both directions the
//! evaluators need: current from voltages (for the DC Newton solver) and
//! overdrive from current (for mirror-ratio bias analysis).

use gcnrl_circuit::{MosModelParams, MosSizing};
use serde::{Deserialize, Serialize};

/// Boltzmann constant times 300 K, in joules.
pub const KT: f64 = 4.14e-21;

/// Gate-overlap capacitance per metre of width, F/m.
const C_OVERLAP_PER_M: f64 = 3.5e-10;
/// Drain/source junction capacitance per metre of width, F/m.
const C_JUNCTION_PER_M: f64 = 5.0e-10;
/// Thermal-noise excess factor (long-channel value is 2/3; short channel is
/// closer to 1, we use an intermediate value).
const GAMMA_NOISE: f64 = 0.85;

/// Bias-dependent small-signal description of one transistor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MosOperatingPoint {
    /// Drain current, amps.
    pub id: f64,
    /// Gate overdrive `Vgs - Vth`, volts.
    pub vov: f64,
    /// Transconductance, siemens.
    pub gm: f64,
    /// Output conductance, siemens.
    pub gds: f64,
    /// Gate–source capacitance, farads.
    pub cgs: f64,
    /// Gate–drain (overlap/Miller) capacitance, farads.
    pub cgd: f64,
    /// Drain–bulk junction capacitance, farads.
    pub cdb: f64,
    /// `true` when the device has enough overdrive and headroom to operate in
    /// saturation with sensible margins.
    pub saturated: bool,
}

impl MosOperatingPoint {
    /// Thermal drain-noise current power spectral density, A²/Hz.
    pub fn thermal_noise_psd(&self) -> f64 {
        4.0 * KT * GAMMA_NOISE * self.gm
    }

    /// Intrinsic gain `gm / gds`.
    pub fn intrinsic_gain(&self) -> f64 {
        if self.gds > 0.0 {
            self.gm / self.gds
        } else {
            f64::INFINITY
        }
    }

    /// Transit frequency `gm / (2π (Cgs + Cgd))`, hertz.
    pub fn ft(&self) -> f64 {
        self.gm / (2.0 * std::f64::consts::PI * (self.cgs + self.cgd))
    }
}

/// A sized transistor of one polarity with its technology model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosDevice<'a> {
    /// Sizing (W, L, M).
    pub sizing: MosSizing,
    /// Technology model parameters for the device polarity.
    pub model: &'a MosModelParams,
}

impl<'a> MosDevice<'a> {
    /// Creates a device from a sizing and a model.
    pub fn new(sizing: MosSizing, model: &'a MosModelParams) -> Self {
        MosDevice { sizing, model }
    }

    /// Effective transconductance factor `k' · (W·M/L)` with mobility
    /// degradation at the given overdrive, A/V².
    pub fn beta(&self, vov: f64) -> f64 {
        let beta0 = self.model.kp() * self.sizing.aspect_ratio();
        beta0 / (1.0 + self.model.uc * vov.max(0.0))
    }

    /// Saturation drain current at gate overdrive `vov` (volts), amps.
    ///
    /// Negative overdrive returns zero (sub-threshold conduction is ignored).
    pub fn id_sat(&self, vov: f64) -> f64 {
        if vov <= 0.0 {
            return 0.0;
        }
        0.5 * self.beta(vov) * vov * vov
    }

    /// Drain current in the triode/saturation model at `(vgs, vds)`, amps,
    /// including channel-length modulation in saturation.
    pub fn id(&self, vgs: f64, vds: f64) -> f64 {
        let vov = vgs - self.model.vth0;
        if vov <= 0.0 {
            return 0.0;
        }
        let beta = self.beta(vov);
        let lambda = self.lambda();
        if vds < vov {
            beta * (vov - vds / 2.0) * vds
        } else {
            0.5 * beta * vov * vov * (1.0 + lambda * (vds - vov))
        }
    }

    /// Channel-length modulation coefficient for this drawn length, 1/V.
    pub fn lambda(&self) -> f64 {
        self.model.lambda_per_um / self.sizing.l_um
    }

    /// Gate overdrive needed to conduct `id` amps in saturation, volts.
    ///
    /// Inverts the square law iteratively because mobility degradation makes
    /// the relationship mildly implicit.
    pub fn vov_for_current(&self, id: f64) -> f64 {
        if id <= 0.0 {
            return 0.0;
        }
        let beta0 = self.model.kp() * self.sizing.aspect_ratio();
        let mut vov = (2.0 * id / beta0).sqrt();
        for _ in 0..20 {
            let beta = self.beta(vov);
            let next = (2.0 * id / beta).sqrt();
            if (next - vov).abs() < 1e-9 {
                return next;
            }
            vov = next;
        }
        vov
    }

    /// Small-signal operating point when conducting `id` amps in saturation
    /// with `vds_headroom` volts of drain–source headroom available.
    ///
    /// The headroom is used for the saturation check: the device is flagged
    /// unsaturated when its required overdrive exceeds the headroom minus a
    /// 50 mV margin.  Very small overdrives are allowed (large devices biased
    /// near weak inversion) but the transconductance is capped at the
    /// weak-inversion limit `Id / (n·Vt)` by flooring the effective overdrive
    /// at 70 mV.
    pub fn operating_point(&self, id: f64, vds_headroom: f64) -> MosOperatingPoint {
        let vov = self.vov_for_current(id);
        let vov_eff = vov.max(0.07);
        let gm = if id > 0.0 { 2.0 * id / vov_eff } else { 0.0 };
        let gds = self.lambda() * id;
        let w_m = self.sizing.effective_width_um() * 1e-6;
        let l_m = self.sizing.l_um * 1e-6;
        let cgs = (2.0 / 3.0) * self.model.cox * w_m * l_m + C_OVERLAP_PER_M * w_m;
        let cgd = C_OVERLAP_PER_M * w_m;
        let cdb = C_JUNCTION_PER_M * w_m;
        let saturated = id > 0.0 && vov <= vds_headroom - 0.05;
        MosOperatingPoint {
            id,
            vov,
            gm,
            gds,
            cgs,
            cgd,
            cdb,
            saturated,
        }
    }
}

/// Thermal noise current PSD of a resistor, A²/Hz.
pub fn resistor_noise_psd(resistance: f64) -> f64 {
    if resistance > 0.0 {
        4.0 * KT / resistance
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnrl_circuit::TechnologyNode;

    fn device(node: &TechnologyNode, w: f64, l: f64, m: u32) -> MosDevice<'_> {
        MosDevice::new(MosSizing::new(w, l, m), &node.nmos)
    }

    #[test]
    fn current_increases_with_width_and_overdrive() {
        let node = TechnologyNode::tsmc180();
        let narrow = device(&node, 1.0, 0.18, 1);
        let wide = device(&node, 10.0, 0.18, 1);
        assert!(wide.id_sat(0.2) > narrow.id_sat(0.2));
        assert!(narrow.id_sat(0.3) > narrow.id_sat(0.2));
        assert_eq!(narrow.id_sat(-0.1), 0.0);
    }

    #[test]
    fn triode_saturation_continuity() {
        let node = TechnologyNode::tsmc180();
        let d = device(&node, 4.0, 0.18, 1);
        let vgs = node.nmos.vth0 + 0.25;
        // At vds == vov the triode and saturation expressions agree (up to CLM).
        let triode = d.id(vgs, 0.25 - 1e-9);
        let sat = d.id(vgs, 0.25);
        assert!((triode - sat).abs() / sat < 1e-3);
        // Saturation current keeps rising slightly with vds (CLM).
        assert!(d.id(vgs, 1.0) > d.id(vgs, 0.3));
    }

    #[test]
    fn vov_for_current_inverts_id_sat() {
        let node = TechnologyNode::n65();
        let d = device(&node, 8.0, 0.13, 2);
        for vov in [0.08, 0.15, 0.3, 0.5] {
            let id = d.id_sat(vov);
            let back = d.vov_for_current(id);
            assert!((back - vov).abs() < 1e-6, "vov {vov} -> {back}");
        }
        assert_eq!(d.vov_for_current(0.0), 0.0);
    }

    #[test]
    fn operating_point_small_signal_relations() {
        let node = TechnologyNode::tsmc180();
        let d = device(&node, 20.0, 0.36, 1);
        let id = 100e-6;
        let op = d.operating_point(id, 0.9);
        assert!(op.saturated);
        // gm = 2 Id / max(Vov, 70 mV)
        assert!((op.gm - 2.0 * id / op.vov.max(0.07)).abs() / op.gm < 1e-12);
        // Longer devices have more intrinsic gain.
        let d_long = device(&node, 20.0, 1.0, 1);
        assert!(d_long.operating_point(id, 0.9).intrinsic_gain() > op.intrinsic_gain());
        assert!(op.ft() > 1e8, "ft unexpectedly low: {}", op.ft());
    }

    #[test]
    fn saturation_flag_reflects_headroom() {
        let node = TechnologyNode::tsmc180();
        let d = device(&node, 1.0, 0.18, 1);
        // Large current through a small device needs a large overdrive -> no headroom.
        let op = d.operating_point(2e-3, 0.3);
        assert!(!op.saturated);
        // Tiny current -> weak inversion is allowed, but gm is capped at the
        // weak-inversion limit 2·Id/70mV.
        let op2 = d.operating_point(1e-9, 0.9);
        assert!(op2.saturated);
        assert!(op2.gm <= 2.0 * 1e-9 / 0.07 + 1e-18);
    }

    #[test]
    fn noise_densities_positive_and_scale() {
        let node = TechnologyNode::tsmc180();
        let d = device(&node, 10.0, 0.18, 1);
        let op = d.operating_point(50e-6, 0.9);
        assert!(op.thermal_noise_psd() > 0.0);
        assert!(resistor_noise_psd(1e3) > resistor_noise_psd(1e6));
        assert_eq!(resistor_noise_psd(0.0), 0.0);
    }

    #[test]
    fn pmos_has_lower_kp_than_nmos() {
        let node = TechnologyNode::tsmc180();
        let n = MosDevice::new(MosSizing::new(4.0, 0.18, 1), &node.nmos);
        let p = MosDevice::new(MosSizing::new(4.0, 0.18, 1), &node.pmos);
        assert!(n.id_sat(0.2) > p.id_sat(0.2));
    }
}
