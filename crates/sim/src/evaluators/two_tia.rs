//! Evaluator for the two-stage transimpedance amplifier (Two-TIA).

use super::common::{mirror_ratio, mos_device, resistance, BiasTable, SmallSignalBuilder};
use super::Evaluator;
use crate::ac::{log_sweep, sweep_compiled, FrequencyResponse};
use crate::metrics::{MetricDirection, MetricSpec, PerformanceReport};
use crate::noise::{output_noise_density_compiled, output_noise_density_via_update, NoiseSource};
use crate::smallsignal::{AcElement, GROUND};
use crate::CompiledAc;
use gcnrl_circuit::{benchmarks, benchmarks::Benchmark, Circuit, ParamVector, TechnologyNode};
use gcnrl_linalg::Complex;

/// Reference bias current injected into the diode-connected input device, amps.
const I_REF: f64 = 25e-6;
/// Spot frequency for input-referred noise, hertz.
const NOISE_FREQ: f64 = 1e6;

/// Metrics reported for the Two-TIA (paper Table II): bandwidth, transimpedance
/// gain, power, input-referred current noise, peaking, and the derived GBW.
const METRICS: [MetricSpec; 6] = [
    MetricSpec {
        name: "bw_ghz",
        unit: "GHz",
        direction: MetricDirection::HigherIsBetter,
    },
    MetricSpec {
        name: "gain_ohm",
        unit: "Ohm",
        direction: MetricDirection::HigherIsBetter,
    },
    MetricSpec {
        name: "power_mw",
        unit: "mW",
        direction: MetricDirection::LowerIsBetter,
    },
    MetricSpec {
        name: "noise_pa_rthz",
        unit: "pA/sqrt(Hz)",
        direction: MetricDirection::LowerIsBetter,
    },
    MetricSpec {
        name: "peaking_db",
        unit: "dB",
        direction: MetricDirection::LowerIsBetter,
    },
    MetricSpec {
        name: "gbw_thz_ohm",
        unit: "THz*Ohm",
        direction: MetricDirection::HigherIsBetter,
    },
];

/// Performance evaluator for the two-stage TIA.
#[derive(Debug, Clone)]
pub struct TwoStageTiaEvaluator {
    circuit: Circuit,
    node: TechnologyNode,
}

impl TwoStageTiaEvaluator {
    /// Creates the evaluator for a given technology node.
    pub fn new(node: TechnologyNode) -> Self {
        TwoStageTiaEvaluator {
            circuit: benchmarks::two_stage_tia(),
            node,
        }
    }

    /// Mirror-ratio bias analysis: the input diode `T1` carries the reference
    /// current, `T2` mirrors it into the first gain node, the PMOS mirror
    /// `T3`/`T4` folds it onto the diode load `T5`, and the output device `T6`
    /// conducts whatever its gate voltage (set by `T5`) commands into `R6`.
    fn bias(&self, params: &ParamVector) -> BiasTable {
        let c = &self.circuit;
        let node = &self.node;
        let vdd = node.vdd;
        let headroom = vdd / 2.0;

        let t1 = mos_device(c, params, node, "T1");
        let t2 = mos_device(c, params, node, "T2");
        let t3 = mos_device(c, params, node, "T3");
        let t4 = mos_device(c, params, node, "T4");
        let t5 = mos_device(c, params, node, "T5");
        let t6 = mos_device(c, params, node, "T6");
        let r6 = resistance(c, params, "R6");

        let id1 = I_REF;
        let id2 = id1 * mirror_ratio(&t2, &t1);
        let id4 = id2 * mirror_ratio(&t4, &t3);
        // T6's gate sits at T5's diode voltage, so it mirrors T5's current.
        let id6 = id4 * mirror_ratio(&t6, &t5);

        let mut table = BiasTable::new();
        table.insert("T1", t1.operating_point(id1, headroom));
        table.insert("T2", t2.operating_point(id2, headroom));
        table.insert("T3", t3.operating_point(id2, headroom));
        table.insert("T4", t4.operating_point(id4, headroom));
        table.insert("T5", t5.operating_point(id4, headroom));
        // The output device's headroom is what the resistive load leaves it.
        let vout_dc = vdd - id6 * r6;
        table.insert("T6", t6.operating_point(id6, vout_dc.max(0.0)));
        if vout_dc < 0.1 || vout_dc > vdd - 0.1 {
            table.feasible = false;
        }
        table.supply_current = id1 + id2 + id4 + id6;
        table
    }
}

impl Evaluator for TwoStageTiaEvaluator {
    fn benchmark(&self) -> Benchmark {
        Benchmark::TwoStageTia
    }

    fn technology(&self) -> &TechnologyNode {
        &self.node
    }

    fn metric_specs(&self) -> &[MetricSpec] {
        &METRICS
    }

    fn evaluate(&self, params: &ParamVector) -> PerformanceReport {
        let bias = self.bias(params);
        let builder = SmallSignalBuilder::new(&self.circuit, &self.node);
        let (mut ac, noise_sources) = builder.build(params, &bias);

        let vin = builder.ac_node("vin");
        let vout = builder.ac_node("vout");
        ac.add(AcElement::CurrentSource {
            a: GROUND,
            b: vin,
            value: Complex::ONE,
        });

        // One compiled circuit serves the sweep, the spot transfer solve and
        // every noise-injection solve: the sparsity pattern and its symbolic
        // factorisation are shared across all of them.
        let Ok(mut sim) = ac.compile() else {
            return PerformanceReport::infeasible();
        };
        let freqs = log_sweep(1e3, 100e9, 12);
        let Ok(resp) = sweep_compiled(&mut sim, vout, &freqs) else {
            return PerformanceReport::infeasible();
        };

        let gain_ohm = resp.dc_gain();
        let bw_hz = resp.bandwidth_3db();
        let peaking_db = resp.peaking_db();
        let power_mw = self.node.vdd * bias.supply_current * 1e3;

        // Input-referred current noise: output voltage noise divided by the
        // mid-band transimpedance, in pA/sqrt(Hz).
        let zt_spot = sim
            .solve_at(NOISE_FREQ)
            .map(|v| v[vout].abs())
            .unwrap_or(gain_ohm)
            .max(1e-3);
        let vn_out = output_noise_density_compiled(&mut sim, &noise_sources, vout, NOISE_FREQ)
            .unwrap_or(0.0);
        let noise_pa = vn_out / zt_spot * 1e12;

        let mut report = PerformanceReport::new();
        report.feasible = bias.feasible;
        report.set("bw_ghz", bw_hz / 1e9);
        report.set("gain_ohm", gain_ohm);
        report.set("power_mw", power_mw);
        report.set("noise_pa_rthz", noise_pa);
        report.set("peaking_db", peaking_db);
        report.set("gbw_thz_ohm", gain_ohm * bw_hz / 1e12);
        report
    }

    fn evaluate_group(
        &self,
        base: &ParamVector,
        candidates: &[ParamVector],
    ) -> Vec<PerformanceReport> {
        let builder = SmallSignalBuilder::new(&self.circuit, &self.node);
        let vin = builder.ac_node("vin");
        let vout = builder.ac_node("vout");
        let compile_one =
            |params: &ParamVector| -> Option<(CompiledAc, Vec<NoiseSource>, BiasTable)> {
                let bias = self.bias(params);
                let (mut ac, noise_sources) = builder.build(params, &bias);
                ac.add(AcElement::CurrentSource {
                    a: GROUND,
                    b: vin,
                    value: Complex::ONE,
                });
                ac.compile().ok().map(|sim| (sim, noise_sources, bias))
            };

        // The base is the shared factorisation anchor; without it (or if the
        // batched sweep fails) every candidate takes the independent path.
        let Some((mut base_sim, _, _)) = compile_one(base) else {
            return candidates.iter().map(|p| self.evaluate(p)).collect();
        };
        let mut sims = Vec::new();
        let mut meta = Vec::new();
        let mut reports: Vec<Option<PerformanceReport>> = Vec::with_capacity(candidates.len());
        for params in candidates {
            match compile_one(params) {
                Some((sim, noise_sources, bias)) => {
                    sims.push(sim);
                    meta.push((reports.len(), noise_sources, bias));
                    reports.push(None);
                }
                None => reports.push(Some(PerformanceReport::infeasible())),
            }
        }

        let freqs = log_sweep(1e3, 100e9, 12);
        let Ok(responses) = base_sim.sweep_batch(vout, &freqs, &mut sims) else {
            return candidates.iter().map(|p| self.evaluate(p)).collect();
        };
        for ((points, sim), (slot, noise_sources, bias)) in
            responses.into_iter().zip(&mut sims).zip(&meta)
        {
            let resp = FrequencyResponse::new(points);
            let gain_ohm = resp.dc_gain();
            let bw_hz = resp.bandwidth_3db();
            let peaking_db = resp.peaking_db();
            let power_mw = self.node.vdd * bias.supply_current * 1e3;

            let zt_spot = base_sim
                .solve_updated_from(sim, NOISE_FREQ)
                .map(|v| v[vout].abs())
                .unwrap_or(gain_ohm)
                .max(1e-3);
            let vn_out = output_noise_density_via_update(
                &mut base_sim,
                sim,
                noise_sources,
                vout,
                NOISE_FREQ,
            )
            .unwrap_or(0.0);
            let noise_pa = vn_out / zt_spot * 1e12;

            let mut report = PerformanceReport::new();
            report.feasible = bias.feasible;
            report.set("bw_ghz", bw_hz / 1e9);
            report.set("gain_ohm", gain_ohm);
            report.set("power_mw", power_mw);
            report.set("noise_pa_rthz", noise_pa);
            report.set("peaking_db", peaking_db);
            report.set("gbw_thz_ohm", gain_ohm * bw_hz / 1e12);
            reports[*slot] = Some(report);
        }
        reports
            .into_iter()
            .map(|r| r.expect("every candidate slot is filled above"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nominal_report(node: &TechnologyNode) -> PerformanceReport {
        let eval = TwoStageTiaEvaluator::new(node.clone());
        let space = eval.circuit.design_space(node);
        eval.evaluate(&space.nominal())
    }

    #[test]
    fn nominal_design_has_physical_metrics() {
        let node = TechnologyNode::tsmc180();
        let r = nominal_report(&node);
        let gain = r.get("gain_ohm").unwrap();
        let bw = r.get("bw_ghz").unwrap();
        let power = r.get("power_mw").unwrap();
        let noise = r.get("noise_pa_rthz").unwrap();
        assert!(gain > 10.0, "gain {gain}");
        assert!(bw > 1e-4 && bw < 1e3, "bw {bw} GHz");
        assert!(power > 1e-3 && power < 1e3, "power {power} mW");
        assert!(noise > 0.0 && noise < 1e6, "noise {noise}");
        assert!(r.get("peaking_db").unwrap() >= 0.0);
    }

    #[test]
    fn wider_output_device_changes_power() {
        let node = TechnologyNode::tsmc180();
        let eval = TwoStageTiaEvaluator::new(node.clone());
        let space = eval.circuit.design_space(&node);
        let nominal = space.nominal();
        let mut actions: Vec<Vec<f64>> =
            space.action_sizes().iter().map(|n| vec![0.0; *n]).collect();
        // Make T6 (index 5) much wider: more mirror current, more power.
        actions[5][0] = 0.9;
        let wide = space.denormalize(&actions);
        let p_nom = eval.evaluate(&nominal).get("power_mw").unwrap();
        let p_wide = eval.evaluate(&wide).get("power_mw").unwrap();
        assert!(p_wide > p_nom, "power {p_wide} should exceed {p_nom}");
    }

    #[test]
    fn larger_feedback_resistor_raises_transimpedance() {
        let node = TechnologyNode::tsmc180();
        let eval = TwoStageTiaEvaluator::new(node.clone());
        let space = eval.circuit.design_space(&node);
        // RF is component index 7; raise/lower it via unit vectors.
        let mut unit_lo = vec![0.5; space.num_parameters()];
        let mut unit_hi = unit_lo.clone();
        let rf_offset: usize = space.action_sizes().iter().take(7).sum();
        unit_lo[rf_offset] = 0.3;
        unit_hi[rf_offset] = 0.9;
        let g_lo = eval
            .evaluate(&space.from_unit(&unit_lo))
            .get("gain_ohm")
            .unwrap();
        let g_hi = eval
            .evaluate(&space.from_unit(&unit_hi))
            .get("gain_ohm")
            .unwrap();
        assert!(g_hi > g_lo, "gain should grow with RF: {g_lo} -> {g_hi}");
    }

    #[test]
    fn grouped_evaluation_matches_individual() {
        let node = TechnologyNode::tsmc180();
        let eval = TwoStageTiaEvaluator::new(node.clone());
        let space = eval.circuit.design_space(&node);
        let base = space.nominal();
        // The rollout shape: the unperturbed action plus small perturbations.
        let mut candidates = vec![base.clone()];
        for j in 0..3 {
            let mut unit = vec![0.5; space.num_parameters()];
            unit[j] = 0.55;
            candidates.push(space.from_unit(&unit));
        }
        let grouped = eval.evaluate_group(&base, &candidates);
        assert_eq!(grouped.len(), candidates.len());
        for (params, group_report) in candidates.iter().zip(&grouped) {
            let individual = eval.evaluate(params);
            assert_eq!(group_report.feasible, individual.feasible);
            for spec in eval.metric_specs() {
                let g = group_report.get(spec.name).unwrap();
                let i = individual.get(spec.name).unwrap();
                assert!(
                    (g - i).abs() <= 1e-6 * (1.0 + i.abs()),
                    "{}: grouped {g} vs individual {i}",
                    spec.name
                );
            }
        }
    }

    #[test]
    fn technology_node_affects_results() {
        let r180 = nominal_report(&TechnologyNode::tsmc180());
        let r45 = nominal_report(&TechnologyNode::n45());
        assert_ne!(r180, r45);
    }
}
