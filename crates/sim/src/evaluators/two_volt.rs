//! Evaluator for the two-stage Miller-compensated voltage amplifier (Two-Volt).

use super::common::{capacitance, mirror_ratio, mos_device, BiasTable, SmallSignalBuilder};
use super::Evaluator;
use crate::ac::{log_sweep, sweep, sweep_compiled, FrequencyResponse};
use crate::metrics::{MetricDirection, MetricSpec, PerformanceReport};
use crate::noise::output_noise_density_compiled;
use gcnrl_circuit::{benchmarks, benchmarks::Benchmark, Circuit, ParamVector, TechnologyNode};

/// Reference current through the diode-connected bias device `TB1`, amps.
const I_REF: f64 = 20e-6;
/// Spot frequency for input-referred noise, hertz.
const NOISE_FREQ: f64 = 1e5;

/// Metrics reported for the Two-Volt amplifier (paper Table III).
const METRICS: [MetricSpec; 7] = [
    MetricSpec {
        name: "bw_mhz",
        unit: "MHz",
        direction: MetricDirection::HigherIsBetter,
    },
    MetricSpec {
        name: "cpm_deg",
        unit: "deg",
        direction: MetricDirection::HigherIsBetter,
    },
    MetricSpec {
        name: "dpm_deg",
        unit: "deg",
        direction: MetricDirection::HigherIsBetter,
    },
    MetricSpec {
        name: "power_mw",
        unit: "mW",
        direction: MetricDirection::LowerIsBetter,
    },
    MetricSpec {
        name: "noise_nv_rthz",
        unit: "nV/sqrt(Hz)",
        direction: MetricDirection::LowerIsBetter,
    },
    MetricSpec {
        name: "gain_kvv",
        unit: "x1000 V/V",
        direction: MetricDirection::HigherIsBetter,
    },
    MetricSpec {
        name: "gbw_thz",
        unit: "THz",
        direction: MetricDirection::HigherIsBetter,
    },
];

/// Performance evaluator for the two-stage voltage amplifier.
#[derive(Debug, Clone)]
pub struct TwoStageVoltageAmpEvaluator {
    circuit: Circuit,
    node: TechnologyNode,
}

impl TwoStageVoltageAmpEvaluator {
    /// Creates the evaluator for a given technology node.
    pub fn new(node: TechnologyNode) -> Self {
        TwoStageVoltageAmpEvaluator {
            circuit: benchmarks::two_stage_voltage_amp(),
            node,
        }
    }

    /// Bias analysis: `TB1` carries the reference, `TB2` mirrors it into the
    /// tail, the input pair splits the tail current, the PMOS mirror carries
    /// the same current, and the second stage is a mirror of the first-stage
    /// load (`T5`) working against the bias mirror (`T6`).
    fn bias(&self, params: &ParamVector) -> BiasTable {
        let c = &self.circuit;
        let node = &self.node;
        let headroom = node.vdd / 2.0;

        let tb1 = mos_device(c, params, node, "TB1");
        let tb2 = mos_device(c, params, node, "TB2");
        let t1 = mos_device(c, params, node, "T1");
        let t2 = mos_device(c, params, node, "T2");
        let t3 = mos_device(c, params, node, "T3");
        let t4 = mos_device(c, params, node, "T4");
        let t5 = mos_device(c, params, node, "T5");
        let t6 = mos_device(c, params, node, "T6");

        let i_tail = I_REF * mirror_ratio(&tb2, &tb1);
        let i_half = i_tail / 2.0;
        // Second stage: T5's gate is at the first-stage output (a |Vgs3| below
        // VDD), so it mirrors T3/T4; T6 mirrors TB1.
        let i5 = i_half * mirror_ratio(&t5, &t4);
        let i6 = I_REF * mirror_ratio(&t6, &tb1);
        // The stage current settles between the two; a gross mismatch pushes
        // one device into triode, which we flag as infeasible.
        let i_stage2 = (i5 * i6).sqrt();
        let balance = if i5 > i6 { i5 / i6 } else { i6 / i5 };

        let mut table = BiasTable::new();
        table.insert("TB1", tb1.operating_point(I_REF, headroom));
        table.insert("TB2", tb2.operating_point(i_tail, headroom / 2.0));
        table.insert("T1", t1.operating_point(i_half, headroom));
        table.insert("T2", t2.operating_point(i_half, headroom));
        table.insert("T3", t3.operating_point(i_half, headroom));
        table.insert("T4", t4.operating_point(i_half, headroom));
        table.insert("T5", t5.operating_point(i_stage2, headroom));
        table.insert("T6", t6.operating_point(i_stage2, headroom));
        if balance > 6.0 {
            table.feasible = false;
        }
        table.supply_current = I_REF + i_tail + i_stage2;
        table
    }

    /// Common-mode phase margin, estimated from the tail-node pole: when the
    /// common-mode path rolls off far beyond the differential unity-gain
    /// frequency the margin saturates at 180° (as it does for most designs in
    /// the paper's Table III).
    fn common_mode_phase_margin(&self, bias: &BiasTable, gbw_hz: f64) -> f64 {
        let (Some(t1), Some(tb2)) = (bias.get("T1"), bias.get("TB2")) else {
            return 0.0;
        };
        let g_tail = 2.0 * t1.gm + tb2.gds;
        let c_tail = 2.0 * t1.cgs + tb2.cdb;
        if c_tail <= 0.0 {
            return 180.0;
        }
        let f_tail = g_tail / (2.0 * std::f64::consts::PI * c_tail);
        let lag = (gbw_hz / f_tail).atan().to_degrees();
        (180.0 - lag).clamp(0.0, 180.0)
    }
}

impl Evaluator for TwoStageVoltageAmpEvaluator {
    fn benchmark(&self) -> Benchmark {
        Benchmark::TwoStageVoltageAmp
    }

    fn technology(&self) -> &TechnologyNode {
        &self.node
    }

    fn metric_specs(&self) -> &[MetricSpec] {
        &METRICS
    }

    fn evaluate(&self, params: &ParamVector) -> PerformanceReport {
        let bias = self.bias(params);
        let builder = SmallSignalBuilder::new(&self.circuit, &self.node);

        // Open-loop differential response: drive both inputs anti-phase.
        let (mut ac_ol, noise_sources) = builder.build(params, &bias);
        let vin_p = builder.ac_node("vin_p");
        let vin_n = builder.ac_node("vin_n");
        let vout = builder.ac_node("vout");
        ac_ol.drive_voltage(vin_p, 0.5);
        ac_ol.drive_voltage(vin_n, -0.5);

        // One compiled circuit serves the open-loop sweep, the spot transfer
        // solve and every noise-injection solve.
        let Ok(mut sim_ol) = ac_ol.compile() else {
            return PerformanceReport::infeasible();
        };
        let freqs = log_sweep(10.0, 10e9, 12);
        let Ok(resp_ol) = sweep_compiled(&mut sim_ol, vout, &freqs) else {
            return PerformanceReport::infeasible();
        };

        // Closed-loop response: drive only the positive input and let the
        // capacitive feedback (CS/CF) set the gain.
        let (mut ac_cl, _) = builder.build(params, &bias);
        ac_cl.drive_voltage(vin_p, 1.0);
        let Ok(resp_cl) = sweep(&ac_cl, vout, &freqs) else {
            return PerformanceReport::infeasible();
        };

        let gain_ol = resp_ol.dc_gain();
        let bw_cl_hz = resp_cl.bandwidth_3db();
        let power_mw = self.node.vdd * bias.supply_current * 1e3;

        // Differential phase margin: loop gain = open-loop gain times the
        // capacitive feedback factor CF / (CF + CS).
        let cs = capacitance(&self.circuit, params, "CS");
        let cf = capacitance(&self.circuit, params, "CF");
        let beta = cf / (cf + cs);
        let loop_points: Vec<(f64, gcnrl_linalg::Complex)> = resp_ol
            .points()
            .iter()
            .map(|(f, v)| (*f, *v * beta))
            .collect();
        let loop_resp = FrequencyResponse::new(loop_points);
        let dpm = loop_resp.phase_margin_deg().unwrap_or(180.0);
        let gbw_hz = gain_ol * bw_cl_hz;
        let cpm = self.common_mode_phase_margin(&bias, gbw_hz);

        // Input-referred voltage noise in nV/sqrt(Hz).
        let a_spot = sim_ol
            .solve_at(NOISE_FREQ)
            .map(|v| v[vout].abs())
            .unwrap_or(gain_ol)
            .max(1e-6);
        let vn_out = output_noise_density_compiled(&mut sim_ol, &noise_sources, vout, NOISE_FREQ)
            .unwrap_or(0.0);
        let noise_nv = vn_out / a_spot * 1e9;

        let mut report = PerformanceReport::new();
        report.feasible = bias.feasible;
        report.set("bw_mhz", bw_cl_hz / 1e6);
        report.set("cpm_deg", cpm);
        report.set("dpm_deg", dpm);
        report.set("power_mw", power_mw);
        report.set("noise_nv_rthz", noise_nv);
        report.set("gain_kvv", gain_ol / 1e3);
        report.set("gbw_thz", gbw_hz / 1e12);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_design_is_a_real_amplifier() {
        let node = TechnologyNode::tsmc180();
        let eval = TwoStageVoltageAmpEvaluator::new(node.clone());
        let space = eval.circuit.design_space(&node);
        let r = eval.evaluate(&space.nominal());
        let gain = r.get("gain_kvv").unwrap();
        assert!(gain > 0.01, "open-loop gain {gain}k");
        let dpm = r.get("dpm_deg").unwrap();
        assert!((0.0..=180.0).contains(&dpm));
        let cpm = r.get("cpm_deg").unwrap();
        assert!((0.0..=180.0).contains(&cpm));
        assert!(r.get("power_mw").unwrap() > 0.0);
        assert!(r.get("bw_mhz").unwrap() > 0.0);
        assert!(r.get("noise_nv_rthz").unwrap() > 0.0);
    }

    #[test]
    fn longer_input_devices_increase_gain() {
        let node = TechnologyNode::tsmc180();
        let eval = TwoStageVoltageAmpEvaluator::new(node.clone());
        let space = eval.circuit.design_space(&node);
        let mut unit = vec![0.5; space.num_parameters()];
        // T1/T2 are components 2 and 3; parameter layout is 3 per transistor.
        let l_index_t1 = space.action_sizes().iter().take(2).sum::<usize>() + 1;
        let l_index_t2 = space.action_sizes().iter().take(3).sum::<usize>() + 1;
        let short = {
            let mut u = unit.clone();
            u[l_index_t1] = 0.05;
            u[l_index_t2] = 0.05;
            eval.evaluate(&space.from_unit(&u)).get("gain_kvv").unwrap()
        };
        unit[l_index_t1] = 0.8;
        unit[l_index_t2] = 0.8;
        let long = eval
            .evaluate(&space.from_unit(&unit))
            .get("gain_kvv")
            .unwrap();
        assert!(
            long > short,
            "gain should rise with input length: {short} -> {long}"
        );
    }

    #[test]
    fn miller_cap_reduces_closed_loop_bandwidth() {
        let node = TechnologyNode::tsmc180();
        let eval = TwoStageVoltageAmpEvaluator::new(node.clone());
        let space = eval.circuit.design_space(&node);
        // CC is component index 8 (first capacitor after the 8 transistors).
        let cc_offset: usize = space.action_sizes().iter().take(8).sum();
        let mut small = vec![0.5; space.num_parameters()];
        let mut large = small.clone();
        small[cc_offset] = 0.1;
        large[cc_offset] = 0.95;
        let bw_small = eval
            .evaluate(&space.from_unit(&small))
            .get("bw_mhz")
            .unwrap();
        let bw_large = eval
            .evaluate(&space.from_unit(&large))
            .get("bw_mhz")
            .unwrap();
        assert!(
            bw_large < bw_small,
            "bw should fall with CC: {bw_small} -> {bw_large}"
        );
    }
}
