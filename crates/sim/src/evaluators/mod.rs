//! Per-benchmark performance evaluators.
//!
//! An [`Evaluator`] is the simulator-facing half of the sizing environment:
//! it maps a concrete [`ParamVector`] to a [`PerformanceReport`] by running a
//! bias analysis (mirror ratios plus the DC Newton solver where needed),
//! building the linearised small-signal circuit, sweeping it with the AC
//! solver, and extracting the same metrics the paper reports for that
//! circuit.

mod common;
mod ldo;
mod three_tia;
mod two_tia;
mod two_volt;

pub use common::{BiasTable, SmallSignalBuilder};
pub use ldo::LdoEvaluator;
pub use three_tia::ThreeStageTiaEvaluator;
pub use two_tia::TwoStageTiaEvaluator;
pub use two_volt::TwoStageVoltageAmpEvaluator;

use crate::metrics::{MetricSpec, PerformanceReport};
use gcnrl_circuit::{benchmarks::Benchmark, ParamVector, TechnologyNode};

/// A deterministic map from candidate sizing to measured performance.
///
/// Implementations must be pure functions of the parameter vector (no hidden
/// state), so that optimisers may evaluate candidates in any order and the
/// learning curves of different methods are comparable.
pub trait Evaluator: Send + Sync {
    /// The benchmark this evaluator models.
    fn benchmark(&self) -> Benchmark;

    /// The technology node the devices are evaluated in.
    fn technology(&self) -> &TechnologyNode;

    /// Static description of every metric the report will contain.
    fn metric_specs(&self) -> &[MetricSpec];

    /// Evaluates one candidate sizing.
    fn evaluate(&self, params: &ParamVector) -> PerformanceReport;

    /// Evaluates a group of candidate sizings clustered around a shared
    /// `base` sizing (the rollout shape: one unperturbed action plus its
    /// perturbations).  The default evaluates each candidate independently;
    /// evaluators with batched solver support override this to factor the
    /// base circuit once per frequency and correct candidate solves through
    /// rank-k updates (see [`CompiledAc::sweep_batch`](crate::CompiledAc::sweep_batch)).
    ///
    /// Results must match per-candidate [`Evaluator::evaluate`] calls to
    /// solver accuracy (~1e-9 on raw voltages), though not bit-exactly.
    fn evaluate_group(
        &self,
        base: &ParamVector,
        candidates: &[ParamVector],
    ) -> Vec<PerformanceReport> {
        let _ = base;
        candidates.iter().map(|p| self.evaluate(p)).collect()
    }
}

/// Builds the evaluator for `benchmark` under technology `node`.
pub fn evaluator_for(benchmark: Benchmark, node: &TechnologyNode) -> Box<dyn Evaluator> {
    match benchmark {
        Benchmark::TwoStageTia => Box::new(TwoStageTiaEvaluator::new(node.clone())),
        Benchmark::TwoStageVoltageAmp => Box::new(TwoStageVoltageAmpEvaluator::new(node.clone())),
        Benchmark::ThreeStageTia => Box::new(ThreeStageTiaEvaluator::new(node.clone())),
        Benchmark::Ldo => Box::new(LdoEvaluator::new(node.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluator_for_builds_all_benchmarks() {
        let node = TechnologyNode::tsmc180();
        for b in Benchmark::ALL {
            let eval = evaluator_for(b, &node);
            assert_eq!(eval.benchmark(), b);
            assert!(!eval.metric_specs().is_empty());
            assert_eq!(eval.technology().name, "180nm");
        }
    }

    #[test]
    fn nominal_designs_produce_reports_with_all_metrics() {
        let node = TechnologyNode::tsmc180();
        for b in Benchmark::ALL {
            let eval = evaluator_for(b, &node);
            let circuit = b.circuit();
            let space = circuit.design_space(&node);
            let report = eval.evaluate(&space.nominal());
            for spec in eval.metric_specs() {
                assert!(
                    report.get(spec.name).is_some(),
                    "{b}: metric {} missing from report",
                    spec.name
                );
            }
        }
    }

    #[test]
    fn evaluation_is_deterministic() {
        let node = TechnologyNode::n65();
        for b in Benchmark::ALL {
            let eval = evaluator_for(b, &node);
            let circuit = b.circuit();
            let space = circuit.design_space(&node);
            let pv = space.nominal();
            assert_eq!(
                eval.evaluate(&pv),
                eval.evaluate(&pv),
                "{b} not deterministic"
            );
        }
    }

    #[test]
    fn extreme_small_devices_are_flagged_infeasible_or_degraded() {
        let node = TechnologyNode::tsmc180();
        let b = Benchmark::TwoStageTia;
        let eval = evaluator_for(b, &node);
        let circuit = b.circuit();
        let space = circuit.design_space(&node);
        // All actions at the extreme lower corner: minimum widths and lengths.
        let actions: Vec<Vec<f64>> = space
            .action_sizes()
            .iter()
            .map(|n| vec![-1.0; *n])
            .collect();
        let report = eval.evaluate(&space.denormalize(&actions));
        let nominal = eval.evaluate(&space.nominal());
        // Either infeasible, or clearly different from the nominal design.
        assert!(!report.feasible || report != nominal);
    }
}
