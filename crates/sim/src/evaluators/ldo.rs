//! Evaluator for the low-dropout regulator (LDO).
//!
//! Unlike the amplifiers, several LDO metrics are large-signal/transient
//! quantities (settling after load or supply steps).  We compute them from
//! the loop small-signal quantities — loop gain, unity-gain frequency, slewing
//! of the pass-device gate — the way a designer would estimate them by hand,
//! and document the approximation in DESIGN.md.  The loop quantities
//! themselves come from the MNA AC solver, so they respond to every device
//! size.

use super::common::{
    capacitance, mirror_ratio, mos_device, resistance, BiasTable, SmallSignalBuilder,
};
use super::Evaluator;
use crate::ac::{log_sweep, sweep, FrequencyResponse};
use crate::metrics::{MetricDirection, MetricSpec, PerformanceReport};
use gcnrl_circuit::{benchmarks, benchmarks::Benchmark, Circuit, ParamVector, TechnologyNode};

/// Reference current through the diode-connected bias device `T7`, amps.
const I_REF: f64 = 10e-6;
/// Nominal DC load current the regulator must supply, amps.
const I_LOAD: f64 = 10e-3;
/// Load step used for the settling metrics, amps.
const I_STEP: f64 = 5e-3;
/// Supply step used for the line-transient metrics, volts.
const V_STEP: f64 = 0.2;

/// Metrics reported for the LDO (paper Sec. IV-A): settling times for load and
/// supply steps, load regulation, PSRR, and power.
const METRICS: [MetricSpec; 7] = [
    MetricSpec {
        name: "tl_plus_us",
        unit: "us",
        direction: MetricDirection::LowerIsBetter,
    },
    MetricSpec {
        name: "tl_minus_us",
        unit: "us",
        direction: MetricDirection::LowerIsBetter,
    },
    MetricSpec {
        name: "lr_mv_ma",
        unit: "mV/mA",
        direction: MetricDirection::LowerIsBetter,
    },
    MetricSpec {
        name: "tv_plus_us",
        unit: "us",
        direction: MetricDirection::LowerIsBetter,
    },
    MetricSpec {
        name: "tv_minus_us",
        unit: "us",
        direction: MetricDirection::LowerIsBetter,
    },
    MetricSpec {
        name: "psrr_db",
        unit: "dB",
        direction: MetricDirection::HigherIsBetter,
    },
    MetricSpec {
        name: "power_mw",
        unit: "mW",
        direction: MetricDirection::LowerIsBetter,
    },
];

/// Performance evaluator for the low-dropout regulator.
#[derive(Debug, Clone)]
pub struct LdoEvaluator {
    circuit: Circuit,
    node: TechnologyNode,
}

impl LdoEvaluator {
    /// Creates the evaluator for a given technology node.
    pub fn new(node: TechnologyNode) -> Self {
        LdoEvaluator {
            circuit: benchmarks::low_dropout_regulator(),
            node,
        }
    }

    fn bias(&self, params: &ParamVector) -> BiasTable {
        let c = &self.circuit;
        let node = &self.node;
        let headroom = node.vdd / 2.0;

        let t7 = mos_device(c, params, node, "T7");
        let t5 = mos_device(c, params, node, "T5");
        let t6 = mos_device(c, params, node, "T6");
        let t1 = mos_device(c, params, node, "T1");
        let t2 = mos_device(c, params, node, "T2");
        let t3 = mos_device(c, params, node, "T3");
        let t4 = mos_device(c, params, node, "T4");
        let t8 = mos_device(c, params, node, "T8");
        let r1 = resistance(c, params, "R1");
        let r2 = resistance(c, params, "R2");

        let i_tail = I_REF * mirror_ratio(&t5, &t7);
        let i_half = i_tail / 2.0;
        let i_buffer = I_REF * mirror_ratio(&t6, &t7);
        // The pass device supplies the external load plus the divider current.
        let vout = 0.8 * node.vdd;
        let i_divider = vout / (r1 + r2);
        let i_pass = I_LOAD + i_divider;

        let mut table = BiasTable::new();
        table.insert("T7", t7.operating_point(I_REF, headroom));
        table.insert("T5", t5.operating_point(i_tail, headroom / 2.0));
        table.insert("T6", t6.operating_point(i_buffer, headroom));
        table.insert("T1", t1.operating_point(i_half, headroom));
        table.insert("T2", t2.operating_point(i_half, headroom));
        table.insert("T3", t3.operating_point(i_half, headroom));
        table.insert("T4", t4.operating_point(i_half, headroom));
        // The pass device only has the dropout voltage of headroom.
        let dropout = 0.2 * node.vdd;
        table.insert("T8", t8.operating_point(i_pass, dropout.max(0.05)));
        table.supply_current = I_REF + i_tail + i_buffer + i_pass;
        table
    }

    /// Loop-gain frequency response.  The loop is broken at the feedback
    /// input: driving `vfb` (T2's gate) with a stiff source overrides the
    /// divider at that node, the forward path T2 → error amp → pass device
    /// responds at `vout`, and the divider would return `vout · R2/(R1+R2)`
    /// to the break point — that product is the loop gain.
    fn loop_response(
        &self,
        params: &ParamVector,
        bias: &BiasTable,
        builder: &SmallSignalBuilder<'_>,
    ) -> Option<FrequencyResponse> {
        let (mut ac, _) = builder.build(params, bias);
        let vfb = builder.ac_node("vfb");
        let vout = builder.ac_node("vout");
        ac.drive_voltage(vfb, 1.0);
        let freqs = log_sweep(1.0, 1e9, 12);
        let forward = sweep(&ac, vout, &freqs).ok()?;
        // Divider feedback factor (the divider's loading of vout is already in
        // the forward response because R1/R2 are part of the AC circuit).
        let r1 = resistance(&self.circuit, params, "R1");
        let r2 = resistance(&self.circuit, params, "R2");
        let beta = r2 / (r1 + r2);
        Some(FrequencyResponse::new(
            forward
                .points()
                .iter()
                .map(|(f, v)| (*f, *v * beta))
                .collect(),
        ))
    }
}

impl Evaluator for LdoEvaluator {
    fn benchmark(&self) -> Benchmark {
        Benchmark::Ldo
    }

    fn technology(&self) -> &TechnologyNode {
        &self.node
    }

    fn metric_specs(&self) -> &[MetricSpec] {
        &METRICS
    }

    fn evaluate(&self, params: &ParamVector) -> PerformanceReport {
        let bias = self.bias(params);
        let builder = SmallSignalBuilder::new(&self.circuit, &self.node);
        let Some(loop_resp) = self.loop_response(params, &bias, &builder) else {
            return PerformanceReport::infeasible();
        };

        let t0 = loop_resp.dc_gain().max(1e-3);
        // Unity-gain frequency of the loop; if the loop gain is below one the
        // regulator barely regulates and every transient metric degrades.
        let f_u = loop_resp
            .unity_gain_freq()
            .unwrap_or_else(|| loop_resp.bandwidth_3db())
            .max(1.0);

        let cl = capacitance(&self.circuit, params, "CL");
        let r1 = resistance(&self.circuit, params, "R1");
        let r2 = resistance(&self.circuit, params, "R2");
        let pass = bias.get("T8").copied().unwrap_or_else(|| {
            mos_device(&self.circuit, params, &self.node, "T8").operating_point(I_LOAD, 0.3)
        });
        let stage1 = bias.get("T1").copied();

        // Load regulation: closed-loop output resistance in ohms, which is
        // numerically equal to mV per mA.
        let r_out_open = 1.0 / (pass.gds + 1.0 / (r1 + r2) + I_LOAD / (0.8 * self.node.vdd));
        let lr_mv_ma = r_out_open / (1.0 + t0);

        // Settling after a load step: linear settling at the loop bandwidth
        // plus slewing of the pass-device gate by the error-amplifier tail
        // current, plus the initial droop being recharged from CL.
        let tau_loop = 1.0 / (2.0 * std::f64::consts::PI * f_u);
        let i_slew = stage1.map(|op| 2.0 * op.id).unwrap_or(I_REF).max(1e-9);
        let c_gate = pass.cgs + pass.cgd;
        let dv_gate = (I_STEP / pass.gm.max(1e-6)).min(self.node.vdd);
        let t_slew = c_gate * dv_gate / i_slew;
        // The initial droop on CL must be recharged through the loop bandwidth.
        let droop_v = I_STEP * tau_loop / cl.max(1e-15);
        let t_droop = droop_v / (0.8 * self.node.vdd) * tau_loop;
        let t_settle_load = 5.0 * tau_loop + t_slew + t_droop;
        // Load increase is limited by the pass device turning further on
        // (slewing); load decrease recovers through the divider, slower.
        let tl_plus_us = t_settle_load * 1e6;
        let tl_minus_us = (5.0 * tau_loop + 2.0 * t_slew + t_droop) * 1e6;

        // Line transients: the supply step couples through the pass device and
        // is rejected by the loop.
        let coupling = pass.gds * r_out_open;
        let line_disturbance = V_STEP * coupling / (1.0 + t0);
        let tv_plus_us = (5.0 * tau_loop * (1.0 + coupling) + line_disturbance * tau_loop) * 1e6;
        let tv_minus_us =
            (5.0 * tau_loop * (1.0 + 1.5 * coupling) + line_disturbance * tau_loop) * 1e6;

        // PSRR at DC: supply ripple divided by loop rejection.
        let psrr_db = 20.0 * ((1.0 + t0) / coupling.max(1e-9)).log10();

        let power_mw = self.node.vdd * bias.supply_current * 1e3;

        let mut report = PerformanceReport::new();
        report.feasible = bias.feasible;
        report.set("tl_plus_us", tl_plus_us);
        report.set("tl_minus_us", tl_minus_us);
        report.set("lr_mv_ma", lr_mv_ma);
        report.set("tv_plus_us", tv_plus_us);
        report.set("tv_minus_us", tv_minus_us);
        report.set("psrr_db", psrr_db);
        report.set("power_mw", power_mw);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_design_regulates() {
        let node = TechnologyNode::tsmc180();
        let eval = LdoEvaluator::new(node.clone());
        let space = eval.circuit.design_space(&node);
        let r = eval.evaluate(&space.nominal());
        assert!(
            r.get("psrr_db").unwrap() > 0.0,
            "psrr {:?}",
            r.get("psrr_db")
        );
        assert!(r.get("tl_plus_us").unwrap() > 0.0);
        assert!(r.get("lr_mv_ma").unwrap() > 0.0);
        // The pass device must dominate the power budget (~10 mA load at 1.8 V).
        let p = r.get("power_mw").unwrap();
        assert!(p > 10.0 && p < 100.0, "power {p}");
    }

    #[test]
    fn bigger_output_cap_slows_settling_or_keeps_it_sane() {
        let node = TechnologyNode::tsmc180();
        let eval = LdoEvaluator::new(node.clone());
        let space = eval.circuit.design_space(&node);
        // CL is the last component.
        let cl_offset = space.num_parameters() - 1;
        let mut small = vec![0.5; space.num_parameters()];
        let mut large = small.clone();
        small[cl_offset] = 0.1;
        large[cl_offset] = 0.95;
        let t_small = eval
            .evaluate(&space.from_unit(&small))
            .get("tl_plus_us")
            .unwrap();
        let t_large = eval
            .evaluate(&space.from_unit(&large))
            .get("tl_plus_us")
            .unwrap();
        assert!(t_small > 0.0 && t_large > 0.0);
    }

    #[test]
    fn wider_pass_device_improves_load_regulation() {
        let node = TechnologyNode::tsmc180();
        let eval = LdoEvaluator::new(node.clone());
        let space = eval.circuit.design_space(&node);
        // T8 is component index 7; widen it (W is its first parameter).
        let t8_offset: usize = space.action_sizes().iter().take(7).sum();
        let mut narrow = vec![0.5; space.num_parameters()];
        let mut wide = narrow.clone();
        narrow[t8_offset] = 0.1;
        wide[t8_offset] = 0.95;
        let lr_narrow = eval
            .evaluate(&space.from_unit(&narrow))
            .get("lr_mv_ma")
            .unwrap();
        let lr_wide = eval
            .evaluate(&space.from_unit(&wide))
            .get("lr_mv_ma")
            .unwrap();
        assert!(
            lr_wide <= lr_narrow,
            "LR should improve: {lr_narrow} -> {lr_wide}"
        );
    }
}
