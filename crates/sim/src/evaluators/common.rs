//! Shared machinery for the benchmark evaluators: bias tables, the generic
//! netlist-to-small-signal builder, and convenience accessors.

use crate::mosfet::{resistor_noise_psd, MosDevice, MosOperatingPoint};
use crate::noise::NoiseSource;
use crate::smallsignal::{AcCircuit, AcElement, NodeIndex, GROUND};
use gcnrl_circuit::{Circuit, ComponentKind, MosPolarity, ParamVector, TechnologyNode};
use std::collections::HashMap;

/// Per-device operating points computed by an evaluator's bias analysis.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BiasTable {
    ops: HashMap<String, MosOperatingPoint>,
    /// Total current drawn from the supply by all branches, amps.
    pub supply_current: f64,
    /// `false` when any device failed its saturation/headroom check.
    pub feasible: bool,
}

impl BiasTable {
    /// Creates an empty, feasible bias table.
    pub fn new() -> Self {
        BiasTable {
            ops: HashMap::new(),
            supply_current: 0.0,
            feasible: true,
        }
    }

    /// Records the operating point of a named transistor and folds its
    /// saturation flag into the global feasibility.
    pub fn insert(&mut self, name: &str, op: MosOperatingPoint) {
        if !op.saturated {
            self.feasible = false;
        }
        self.ops.insert(name.to_owned(), op);
    }

    /// Operating point of a named transistor, if recorded.
    pub fn get(&self, name: &str) -> Option<&MosOperatingPoint> {
        self.ops.get(name)
    }

    /// Number of devices recorded.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` when no devices are recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Builds [`AcCircuit`]s from a netlist, a sizing and a bias table.
///
/// Supply nets are mapped to AC ground; every other net gets a dense node
/// index.  Each transistor contributes its linearised VCCS, output
/// conductance, capacitances and thermal-noise source; resistors and
/// capacitors contribute their value and (for resistors) noise.
#[derive(Debug, Clone)]
pub struct SmallSignalBuilder<'a> {
    circuit: &'a Circuit,
    node: &'a TechnologyNode,
    net_to_ac: Vec<NodeIndex>,
    num_ac_nodes: usize,
}

impl<'a> SmallSignalBuilder<'a> {
    /// Prepares the net-to-node mapping for `circuit`.
    pub fn new(circuit: &'a Circuit, node: &'a TechnologyNode) -> Self {
        let mut net_to_ac = Vec::with_capacity(circuit.num_nets());
        let mut next = 0;
        for net in circuit.nets() {
            if net.is_supply {
                net_to_ac.push(GROUND);
            } else {
                net_to_ac.push(next);
                next += 1;
            }
        }
        SmallSignalBuilder {
            circuit,
            node,
            net_to_ac,
            num_ac_nodes: next,
        }
    }

    /// Number of AC signal nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_ac_nodes
    }

    /// The AC node index of a named net.
    ///
    /// # Panics
    ///
    /// Panics if the net does not exist in the circuit.
    pub fn ac_node(&self, net_name: &str) -> NodeIndex {
        let net = self
            .circuit
            .nets()
            .iter()
            .find(|n| n.name == net_name)
            .unwrap_or_else(|| panic!("unknown net `{net_name}`"));
        self.net_to_ac[net.id.index()]
    }

    /// The technology node used for device models.
    pub fn technology(&self) -> &TechnologyNode {
        self.node
    }

    /// Builds the linearised circuit and its noise sources.
    ///
    /// Transistors missing from `bias` are skipped (treated as off), which the
    /// evaluators use for devices folded into analytic expressions.
    pub fn build(&self, params: &ParamVector, bias: &BiasTable) -> (AcCircuit, Vec<NoiseSource>) {
        let mut ac = AcCircuit::new(self.num_ac_nodes.max(1));
        let mut noise = Vec::new();
        for comp in self.circuit.components() {
            let nodes: Vec<NodeIndex> = comp
                .terminals
                .iter()
                .map(|t| self.net_to_ac[t.index()])
                .collect();
            match comp.kind {
                ComponentKind::Nmos | ComponentKind::Pmos => {
                    let Some(op) = bias.get(&comp.name) else {
                        continue;
                    };
                    let (drain, gate, source) = (nodes[0], nodes[1], nodes[2]);
                    if op.gm > 0.0 {
                        ac.add(AcElement::Vccs {
                            out_p: drain,
                            out_n: source,
                            ctrl_p: gate,
                            ctrl_n: source,
                            gm: op.gm,
                        });
                    }
                    if op.gds > 0.0 {
                        ac.add(AcElement::Conductance {
                            a: drain,
                            b: source,
                            g: op.gds,
                        });
                    }
                    ac.add(AcElement::Capacitance {
                        a: gate,
                        b: source,
                        c: op.cgs,
                    });
                    ac.add(AcElement::Capacitance {
                        a: gate,
                        b: drain,
                        c: op.cgd,
                    });
                    ac.add(AcElement::Capacitance {
                        a: drain,
                        b: GROUND,
                        c: op.cdb,
                    });
                    noise.push(NoiseSource {
                        a: drain,
                        b: source,
                        psd: op.thermal_noise_psd(),
                    });
                }
                ComponentKind::Resistor => {
                    let r = params
                        .get(comp.id)
                        .as_resistance()
                        .expect("resistor component has resistance");
                    ac.add(AcElement::Conductance {
                        a: nodes[0],
                        b: nodes[1],
                        g: 1.0 / r,
                    });
                    noise.push(NoiseSource {
                        a: nodes[0],
                        b: nodes[1],
                        psd: resistor_noise_psd(r),
                    });
                }
                ComponentKind::Capacitor => {
                    let c = params
                        .get(comp.id)
                        .as_capacitance()
                        .expect("capacitor component has capacitance");
                    ac.add(AcElement::Capacitance {
                        a: nodes[0],
                        b: nodes[1],
                        c,
                    });
                }
            }
        }
        (ac, noise)
    }
}

/// Builds the square-law device for a named transistor.
pub(crate) fn mos_device<'a>(
    circuit: &Circuit,
    params: &ParamVector,
    node: &'a TechnologyNode,
    name: &str,
) -> MosDevice<'a> {
    let comp = circuit
        .component_by_name(name)
        .unwrap_or_else(|_| panic!("unknown component `{name}`"));
    let polarity = match comp.kind {
        ComponentKind::Nmos => MosPolarity::Nmos,
        ComponentKind::Pmos => MosPolarity::Pmos,
        other => panic!("component `{name}` of kind {other} is not a transistor"),
    };
    MosDevice::new(
        params.get(comp.id).as_mos().expect("transistor sizing"),
        node.mos(polarity),
    )
}

/// Resistance of a named resistor.
pub(crate) fn resistance(circuit: &Circuit, params: &ParamVector, name: &str) -> f64 {
    let comp = circuit
        .component_by_name(name)
        .unwrap_or_else(|_| panic!("unknown component `{name}`"));
    params
        .get(comp.id)
        .as_resistance()
        .unwrap_or_else(|| panic!("component `{name}` is not a resistor"))
}

/// Capacitance of a named capacitor.
pub(crate) fn capacitance(circuit: &Circuit, params: &ParamVector, name: &str) -> f64 {
    let comp = circuit
        .component_by_name(name)
        .unwrap_or_else(|_| panic!("unknown component `{name}`"));
    params
        .get(comp.id)
        .as_capacitance()
        .unwrap_or_else(|| panic!("component `{name}` is not a capacitor"))
}

/// Ratio of aspect ratios `mirror / diode`, used for current-mirror bias
/// propagation, clamped to a sane range so pathological sizings cannot create
/// absurd branch currents (they are flagged infeasible by the headroom checks
/// instead).
pub(crate) fn mirror_ratio(mirror: &MosDevice<'_>, diode: &MosDevice<'_>) -> f64 {
    (mirror.sizing.aspect_ratio() / diode.sizing.aspect_ratio()).clamp(1e-3, 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnrl_circuit::benchmarks;
    use gcnrl_circuit::MosSizing;

    #[test]
    fn bias_table_tracks_feasibility() {
        let node = TechnologyNode::tsmc180();
        let circuit = benchmarks::two_stage_tia();
        let space = circuit.design_space(&node);
        let pv = space.nominal();
        let dev = mos_device(&circuit, &pv, &node, "T1");
        let mut table = BiasTable::new();
        assert!(table.is_empty());
        table.insert("T1", dev.operating_point(50e-6, 0.9));
        assert!(table.feasible);
        table.insert("T2", dev.operating_point(50e-3, 0.1)); // impossible headroom
        assert!(!table.feasible);
        assert_eq!(table.len(), 2);
        assert!(table.get("T1").is_some());
    }

    #[test]
    fn builder_maps_supplies_to_ground() {
        let node = TechnologyNode::tsmc180();
        let circuit = benchmarks::two_stage_tia();
        let builder = SmallSignalBuilder::new(&circuit, &node);
        // vdd and gnd are supplies; vin/v1/v2/vout are signal nodes.
        assert_eq!(builder.num_nodes(), 4);
        assert!(builder.ac_node("vin") < 4);
    }

    #[test]
    fn build_produces_elements_and_noise_sources() {
        let node = TechnologyNode::tsmc180();
        let circuit = benchmarks::two_stage_tia();
        let space = circuit.design_space(&node);
        let pv = space.nominal();
        let builder = SmallSignalBuilder::new(&circuit, &node);
        let mut bias = BiasTable::new();
        for name in ["T1", "T2", "T3", "T4", "T5", "T6"] {
            let dev = mos_device(&circuit, &pv, &node, name);
            bias.insert(name, dev.operating_point(50e-6, 0.9));
        }
        let (ac, noise) = builder.build(&pv, &bias);
        assert!(ac.elements().len() > 10);
        // 6 transistor noise sources + 2 resistor noise sources.
        assert_eq!(noise.len(), 8);
    }

    #[test]
    #[should_panic(expected = "unknown net")]
    fn unknown_net_panics() {
        let node = TechnologyNode::tsmc180();
        let circuit = benchmarks::two_stage_tia();
        let builder = SmallSignalBuilder::new(&circuit, &node);
        let _ = builder.ac_node("does_not_exist");
    }

    #[test]
    fn mirror_ratio_is_clamped() {
        let node = TechnologyNode::tsmc180();
        let big = MosDevice::new(MosSizing::new(200.0, 0.18, 32), &node.nmos);
        let tiny = MosDevice::new(MosSizing::new(0.2, 4.0, 1), &node.nmos);
        assert!(mirror_ratio(&big, &tiny) <= 1e3);
        assert!(mirror_ratio(&tiny, &big) >= 1e-3);
    }
}
