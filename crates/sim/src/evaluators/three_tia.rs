//! Evaluator for the three-stage transimpedance amplifier (Three-TIA).

use super::common::{mirror_ratio, mos_device, resistance, BiasTable, SmallSignalBuilder};
use super::Evaluator;
use crate::ac::{log_sweep, sweep};
use crate::dc::resistor_diode_reference;
use crate::metrics::{MetricDirection, MetricSpec, PerformanceReport};
use crate::smallsignal::{AcElement, GROUND};
use gcnrl_circuit::{benchmarks, benchmarks::Benchmark, Circuit, ParamVector, TechnologyNode};
use gcnrl_linalg::Complex;

/// Metrics reported for the Three-TIA (paper Sec. IV-A): bandwidth, gain and
/// power, plus the derived gain–bandwidth product.
const METRICS: [MetricSpec; 4] = [
    MetricSpec {
        name: "bw_ghz",
        unit: "GHz",
        direction: MetricDirection::HigherIsBetter,
    },
    MetricSpec {
        name: "gain_ohm",
        unit: "Ohm",
        direction: MetricDirection::HigherIsBetter,
    },
    MetricSpec {
        name: "power_mw",
        unit: "mW",
        direction: MetricDirection::LowerIsBetter,
    },
    MetricSpec {
        name: "gbw_thz_ohm",
        unit: "THz*Ohm",
        direction: MetricDirection::HigherIsBetter,
    },
];

/// Performance evaluator for the three-stage TIA.
#[derive(Debug, Clone)]
pub struct ThreeStageTiaEvaluator {
    circuit: Circuit,
    node: TechnologyNode,
}

impl ThreeStageTiaEvaluator {
    /// Creates the evaluator for a given technology node.
    pub fn new(node: TechnologyNode) -> Self {
        ThreeStageTiaEvaluator {
            circuit: benchmarks::three_stage_tia(),
            node,
        }
    }

    /// Bias analysis.  The reference current is set by the resistor-biased
    /// diode `RB`/`T0` (solved with the DC Newton solver); every stage then
    /// propagates it through its mirrors.
    fn bias(&self, params: &ParamVector) -> BiasTable {
        let c = &self.circuit;
        let node = &self.node;
        let headroom = node.vdd / 2.0;

        let rb = resistance(c, params, "RB");
        let t0 = mos_device(c, params, node, "T0");
        let i_ref = resistor_diode_reference(node.vdd, rb, t0.sizing, &node.nmos)
            .unwrap_or((node.vdd - node.nmos.vth0) / rb)
            .max(1e-9);

        let dev = |name: &str| mos_device(c, params, node, name);
        let (t1, t2) = (dev("T1"), dev("T2"));
        let (t7, t8, t9) = (dev("T7"), dev("T8"), dev("T9"));
        let (t3, t10, t11, t12) = (dev("T3"), dev("T10"), dev("T11"), dev("T12"));
        let (t4, t13, t14, t15) = (dev("T4"), dev("T13"), dev("T14"), dev("T15"));
        let (t16, t5, t6) = (dev("T16"), dev("T5"), dev("T6"));

        // Stage 1: the input diode is biased (through an ideal bias tee) at the
        // reference current; T2 mirrors it; the PMOS mirror folds it onto T9.
        let id1 = i_ref;
        let id2 = id1 * mirror_ratio(&t2, &t1);
        let id8 = id2 * mirror_ratio(&t8, &t7);
        // Stage 2: T3's gate sits at T9's diode voltage.
        let id3 = id8 * mirror_ratio(&t3, &t9);
        let id11 = id3 * mirror_ratio(&t11, &t10);
        // Stage 3.
        let id4 = id11 * mirror_ratio(&t4, &t12);
        let id14 = id4 * mirror_ratio(&t14, &t13);
        // Output stage: T16 mirrors T15; T5/T6 are class-A bias legs off vbias.
        let id16 = id14 * mirror_ratio(&t16, &t15);
        let id6 = i_ref * mirror_ratio(&t6, &t0);

        let mut table = BiasTable::new();
        table.insert("T0", t0.operating_point(i_ref, headroom));
        table.insert("T1", t1.operating_point(id1, headroom));
        table.insert("T2", t2.operating_point(id2, headroom));
        table.insert("T7", t7.operating_point(id2, headroom));
        table.insert("T8", t8.operating_point(id8, headroom));
        table.insert("T9", t9.operating_point(id8, headroom));
        table.insert("T3", t3.operating_point(id3, headroom));
        table.insert("T10", t10.operating_point(id3, headroom));
        table.insert("T11", t11.operating_point(id11, headroom));
        table.insert("T12", t12.operating_point(id11, headroom));
        table.insert("T4", t4.operating_point(id4, headroom));
        table.insert("T13", t13.operating_point(id4, headroom));
        table.insert("T14", t14.operating_point(id14, headroom));
        table.insert("T15", t15.operating_point(id14, headroom));
        table.insert("T16", t16.operating_point(id16, headroom));
        table.insert("T5", t5.operating_point(id16.max(id6), headroom));
        table.insert("T6", t6.operating_point(id6, headroom));

        table.supply_current = i_ref + id1 + id2 + id8 + id3 + id11 + id4 + id14 + id16.max(id6);
        table
    }
}

impl Evaluator for ThreeStageTiaEvaluator {
    fn benchmark(&self) -> Benchmark {
        Benchmark::ThreeStageTia
    }

    fn technology(&self) -> &TechnologyNode {
        &self.node
    }

    fn metric_specs(&self) -> &[MetricSpec] {
        &METRICS
    }

    fn evaluate(&self, params: &ParamVector) -> PerformanceReport {
        let bias = self.bias(params);
        let builder = SmallSignalBuilder::new(&self.circuit, &self.node);
        let (mut ac, _noise) = builder.build(params, &bias);

        let vin = builder.ac_node("vin");
        let vout = builder.ac_node("vout");
        ac.add(AcElement::CurrentSource {
            a: GROUND,
            b: vin,
            value: Complex::ONE,
        });

        let freqs = log_sweep(1e3, 100e9, 12);
        let Ok(resp) = sweep(&ac, vout, &freqs) else {
            return PerformanceReport::infeasible();
        };

        let gain_ohm = resp.dc_gain();
        let bw_hz = resp.bandwidth_3db();
        let power_mw = self.node.vdd * bias.supply_current * 1e3;

        let mut report = PerformanceReport::new();
        report.feasible = bias.feasible;
        report.set("bw_ghz", bw_hz / 1e9);
        report.set("gain_ohm", gain_ohm);
        report.set("power_mw", power_mw);
        report.set("gbw_thz_ohm", gain_ohm * bw_hz / 1e12);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_design_amplifies() {
        let node = TechnologyNode::tsmc180();
        let eval = ThreeStageTiaEvaluator::new(node.clone());
        let space = eval.circuit.design_space(&node);
        let r = eval.evaluate(&space.nominal());
        assert!(r.get("gain_ohm").unwrap() > 10.0);
        assert!(r.get("bw_ghz").unwrap() > 0.0);
        assert!(r.get("power_mw").unwrap() > 0.0);
    }

    #[test]
    fn three_stage_has_more_gain_than_two_stage_at_nominal() {
        let node = TechnologyNode::tsmc180();
        let three = ThreeStageTiaEvaluator::new(node.clone());
        let two = super::super::two_tia::TwoStageTiaEvaluator::new(node.clone());
        let g3 = {
            let space = three.circuit.design_space(&node);
            three.evaluate(&space.nominal()).get("gain_ohm").unwrap()
        };
        let g2 = {
            let circuit = benchmarks::two_stage_tia();
            let space = circuit.design_space(&node);
            two.evaluate(&space.nominal()).get("gain_ohm").unwrap()
        };
        // Both are shunt-feedback TIAs, but the extra stage buys loop gain and
        // therefore a transimpedance closer to the ideal feedback value.
        assert!(g3 > 0.0 && g2 > 0.0);
    }

    #[test]
    fn larger_bias_resistor_lowers_power() {
        let node = TechnologyNode::tsmc180();
        let eval = ThreeStageTiaEvaluator::new(node.clone());
        let space = eval.circuit.design_space(&node);
        // RB is component index 0.
        let mut low = vec![0.5; space.num_parameters()];
        let mut high = low.clone();
        low[0] = 0.3;
        high[0] = 0.9;
        let p_low_rb = eval
            .evaluate(&space.from_unit(&low))
            .get("power_mw")
            .unwrap();
        let p_high_rb = eval
            .evaluate(&space.from_unit(&high))
            .get("power_mw")
            .unwrap();
        assert!(p_high_rb < p_low_rb, "power {p_low_rb} -> {p_high_rb}");
    }
}
