//! Pre-compiled small-signal circuits: `Y(ω) = G + jωC` sweep assembly over
//! a fixed sparsity pattern with symbolic-once LU refactorisation.
//!
//! [`AcCircuit`](crate::AcCircuit) stores a flat element list, and the legacy
//! dense path re-walks it (and re-allocates an `n x n` matrix) at every
//! frequency point.  [`CompiledAc`] does that walk **once**: every element is
//! lowered into frequency-independent conductance stamps `G` and
//! frequency-dependent capacitance stamps `C` aggregated per matrix slot, so
//! a sweep point assembles `Y(ω) = G + jωC` with a single pass over the
//! cached nonzero slots and then numerically refactors against a shared
//! symbolic analysis (see [`gcnrl_linalg::sparse`]).  Circuits at or below
//! [`DENSE_FALLBACK_MAX_NODES`] use a dense factorisation instead — the
//! sparse machinery only pays off once the matrix has meaningful sparsity —
//! but still benefit from the cached stamp assembly.

use crate::smallsignal::{AcCircuit, AcElement, NodeIndex, GMIN, GROUND};
use crate::solver_stats;
use crate::SimError;
use gcnrl_linalg::sparse::{
    CsrMatrix, RankUpdate, SoaLu, SparseLu, SparsityPattern, SymbolicLu, SOA_LANES,
};
use gcnrl_linalg::{CMatrix, CluDecomposition, Complex, LinalgError};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Largest node count still served by the dense fallback backend.
pub const DENSE_FALLBACK_MAX_NODES: usize = 3;

/// Relative residual above which the sparse solve applies one step of
/// iterative refinement (static pattern-chosen pivoting is almost always
/// accurate on MNA systems; the residual check catches the rare exception).
const REFINE_THRESHOLD: f64 = 1e-10;

/// Squared element-growth bound under which a factorisation is considered
/// backward stable and the per-solve residual verification is skipped
/// entirely (growth `1e4`, i.e. a backward error around `n·eps·1e4 ≈ 1e-11`
/// for the node counts at hand).  Shared with the DC Newton solver.
pub(crate) const BENIGN_GROWTH_SQ: f64 = 1e8;

/// Largest number of distinct perturbed *rows* still routed through the
/// Sherman–Morrison–Woodbury update path by [`CompiledAc::sweep_batch`];
/// larger diffs refactor instead (the `k³` capacitance solve and the `n·k`
/// correction stop paying off).
pub const MAX_UPDATE_ROWS: usize = 8;

/// Bound on the process-wide symbolic cache (far above the handful of
/// distinct circuit topologies any run touches; a safety valve, not a limit).
const SYMBOLIC_CACHE_MAX: usize = 256;

/// Bound on the process-wide per-topology template cache (same rationale).
const TEMPLATE_CACHE_MAX: usize = 256;

/// Monotonic logical clock for cache recency: entries stamp the tick on
/// insert and on every hit, and the eviction at capacity removes the entry
/// with the smallest stamp (the coldest) instead of dropping everything.
static CACHE_TICK: AtomicU64 = AtomicU64::new(0);

fn next_cache_tick() -> u64 {
    CACHE_TICK.fetch_add(1, Ordering::Relaxed)
}

/// Removes the least-recently-used entry across all buckets of a tick-stamped
/// cache map (and the bucket itself once empty).
fn evict_coldest<V>(map: &mut HashMap<u64, Vec<(u64, V)>>) {
    let mut coldest: Option<(u64, u64, usize)> = None; // (tick, key, idx)
    for (&key, bucket) in map.iter() {
        for (idx, entry) in bucket.iter().enumerate() {
            if coldest.is_none_or(|(tick, ..)| entry.0 < tick) {
                coldest = Some((entry.0, key, idx));
            }
        }
    }
    if let Some((_, key, idx)) = coldest {
        let bucket = map.get_mut(&key).expect("coldest bucket exists");
        bucket.remove(idx);
        if bucket.is_empty() {
            map.remove(&key);
        }
        solver_stats::record_cache_eviction();
    }
}

type SymbolicEntry = (Arc<SparsityPattern>, Arc<SymbolicLu>);
type SymbolicCache = Mutex<HashMap<u64, Vec<(u64, SymbolicEntry)>>>;

static SYMBOLIC_CACHE: OnceLock<SymbolicCache> = OnceLock::new();

/// Everything about the sparse stamp-slot lowering of one circuit topology
/// that does not depend on element values: the shared sparsity pattern, its
/// symbolic analysis, and the pattern slot of every stamp in the canonical
/// lowering order.  Cached process-wide keyed by the stamp-position sequence,
/// so repeated compiles of the same evaluator (one per candidate evaluation)
/// skip the pattern build, the per-stamp slot searches and the symbolic
/// lookup entirely.
struct AcTemplate {
    /// The stamp positions in canonical lowering order (the cache identity:
    /// two circuits with the same position sequence lower identically).
    positions: Vec<(usize, usize)>,
    pattern: Arc<SparsityPattern>,
    symbolic: Arc<SymbolicLu>,
    /// `slots[i]` is the pattern slot of `positions[i]`.
    slots: Vec<usize>,
}

type TemplateCache = Mutex<HashMap<u64, Vec<(u64, Arc<AcTemplate>)>>>;

static TEMPLATE_CACHE: OnceLock<TemplateCache> = OnceLock::new();

/// Returns the compiled template for the topology whose canonical stamp
/// positions are `positions`, building (and caching) it on first sight.
fn template_for(n: usize, positions: &[(usize, usize)]) -> Result<Arc<AcTemplate>, SimError> {
    let mut hasher = DefaultHasher::new();
    n.hash(&mut hasher);
    positions.hash(&mut hasher);
    let key = hasher.finish();

    let cache = TEMPLATE_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    {
        let mut map = cache.lock().expect("template cache poisoned");
        if let Some(bucket) = map.get_mut(&key) {
            for (tick, t) in bucket {
                if t.pattern.n() == n && t.positions == positions {
                    *tick = next_cache_tick();
                    solver_stats::record_template_hit();
                    return Ok(t.clone());
                }
            }
        }
    }

    // Build outside the lock: pattern construction and symbolic analysis are
    // the expensive parts this cache exists to amortise, and a racing
    // duplicate build is harmless (last writer appends a second equal entry).
    let singular = |_| SimError::SingularSystem { frequency_hz: 0.0 };
    let pattern = Arc::new(SparsityPattern::from_positions(n, positions).map_err(singular)?);
    let slots: Vec<usize> = positions
        .iter()
        .map(|&(r, c)| pattern.slot(r, c).expect("stamp position is in pattern"))
        .collect();
    let symbolic = shared_symbolic(&pattern).map_err(singular)?;
    let template = Arc::new(AcTemplate {
        positions: positions.to_vec(),
        pattern,
        symbolic,
        slots,
    });
    solver_stats::record_template_build();

    let mut map = cache.lock().expect("template cache poisoned");
    if map.values().map(Vec::len).sum::<usize>() >= TEMPLATE_CACHE_MAX {
        evict_coldest(&mut map);
    }
    map.entry(key)
        .or_default()
        .push((next_cache_tick(), template.clone()));
    Ok(template)
}

/// Returns the symbolic analysis for `pattern`, computing it only the first
/// time a pattern is seen in this process.  Every evaluation of the same
/// circuit topology — regardless of sizing — shares one analysis, which is
/// what makes repeated candidate evaluations cheap.  Used by both the AC
/// sweep path and the DC Newton solver.
pub(crate) fn shared_symbolic(
    pattern: &Arc<SparsityPattern>,
) -> Result<Arc<SymbolicLu>, LinalgError> {
    let mut hasher = DefaultHasher::new();
    pattern.n().hash(&mut hasher);
    for (r, c, _) in pattern.iter() {
        r.hash(&mut hasher);
        c.hash(&mut hasher);
    }
    let key = hasher.finish();

    let cache = SYMBOLIC_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("symbolic cache poisoned");
    if let Some(bucket) = map.get_mut(&key) {
        for (tick, (p, s)) in bucket {
            if **p == **pattern {
                *tick = next_cache_tick();
                return Ok(s.clone());
            }
        }
    }
    let symbolic = Arc::new(SymbolicLu::analyze(pattern)?);
    solver_stats::record_symbolic_analysis();
    if map.values().map(Vec::len).sum::<usize>() >= SYMBOLIC_CACHE_MAX {
        evict_coldest(&mut map);
    }
    map.entry(key)
        .or_default()
        .push((next_cache_tick(), (pattern.clone(), symbolic.clone())));
    Ok(symbolic)
}

/// Accumulated `(G, C)` stamp pair for one matrix position.
#[derive(Debug, Clone, Copy, Default)]
struct GcStamp {
    g: f64,
    c: f64,
}

enum Backend {
    /// Dense `G`/`C` images plus a reused assembly matrix; chosen for tiny
    /// systems where sparse bookkeeping costs more than it saves.
    Dense {
        g: Vec<f64>,
        c: Vec<f64>,
        y: CMatrix,
        lu: Option<CluDecomposition>,
    },
    /// Per-slot `G`/`C` images over a shared [`SparsityPattern`] plus the
    /// numeric LU state bound to the once-computed symbolic analysis.
    Sparse {
        g: Vec<f64>,
        c: Vec<f64>,
        matrix: CsrMatrix<Complex>,
        numeric: SparseLu<Complex>,
        /// Lazily-built struct-of-arrays lane state for chunked sweeps; each
        /// lane is bit-identical to `numeric`'s scalar factor/solve.  Boxed:
        /// the lane buffers would otherwise dominate the enum size.
        soa: Option<Box<SoaLu>>,
    },
}

/// A small-signal circuit compiled for repeated solves over a sweep.
pub struct CompiledAc {
    num_nodes: usize,
    rhs: Vec<Complex>,
    backend: Backend,
    factored_at: Option<f64>,
    factor_count: u64,
    /// Solution buffer: holds the RHS before a solve and the solution after.
    x_buf: Vec<Complex>,
    /// Residual / refinement-correction buffer.
    r_buf: Vec<Complex>,
}

impl CompiledAc {
    /// Compiles `circuit`: one element walk producing aggregated `G`/`C`
    /// stamps, the shared sparsity pattern, and (for the sparse backend) the
    /// symbolic LU analysis.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SingularSystem`] if the structure cannot support a
    /// factorisation (never the case for MNA systems, whose diagonal is
    /// structurally complete thanks to the GMIN leakage).
    pub fn compile(circuit: &AcCircuit) -> Result<Self, SimError> {
        let n = circuit.num_nodes().max(1);
        let mut stamps: Vec<(usize, usize, GcStamp)> = Vec::new();
        let mut rhs = vec![Complex::ZERO; n];

        let stamp = |entries: &mut Vec<(usize, usize, GcStamp)>,
                     r: NodeIndex,
                     c: NodeIndex,
                     g: f64,
                     cap: f64| {
            if r != GROUND && c != GROUND {
                entries.push((r, c, GcStamp { g, c: cap }));
            }
        };
        let stamp_pair = |entries: &mut Vec<(usize, usize, GcStamp)>,
                          a: NodeIndex,
                          b: NodeIndex,
                          g: f64,
                          cap: f64| {
            if a != GROUND {
                entries.push((a, a, GcStamp { g, c: cap }));
            }
            if b != GROUND {
                entries.push((b, b, GcStamp { g, c: cap }));
            }
            if a != GROUND && b != GROUND {
                entries.push((a, b, GcStamp { g: -g, c: -cap }));
                entries.push((b, a, GcStamp { g: -g, c: -cap }));
            }
        };

        for i in 0..n {
            stamps.push((i, i, GcStamp { g: GMIN, c: 0.0 }));
        }
        for e in circuit.elements() {
            match *e {
                AcElement::Conductance { a, b, g } => stamp_pair(&mut stamps, a, b, g, 0.0),
                AcElement::Capacitance { a, b, c } => stamp_pair(&mut stamps, a, b, 0.0, c),
                AcElement::Vccs {
                    out_p,
                    out_n,
                    ctrl_p,
                    ctrl_n,
                    gm,
                } => {
                    stamp(&mut stamps, out_p, ctrl_p, gm, 0.0);
                    stamp(&mut stamps, out_p, ctrl_n, -gm, 0.0);
                    stamp(&mut stamps, out_n, ctrl_p, -gm, 0.0);
                    stamp(&mut stamps, out_n, ctrl_n, gm, 0.0);
                }
                AcElement::CurrentSource { a, b, value } => {
                    if b != GROUND {
                        rhs[b] += value;
                    }
                    if a != GROUND {
                        rhs[a] -= value;
                    }
                }
            }
        }

        let backend = if n <= DENSE_FALLBACK_MAX_NODES {
            let mut g = vec![0.0; n * n];
            let mut c = vec![0.0; n * n];
            for &(r, col, s) in &stamps {
                g[r * n + col] += s.g;
                c[r * n + col] += s.c;
            }
            Backend::Dense {
                g,
                c,
                y: CMatrix::zeros(n, n),
                lu: None,
            }
        } else {
            // The stamp *positions* are a pure function of the topology, so
            // the pattern, the symbolic analysis and the per-stamp slot map
            // come from the per-topology template cache; only the value
            // scatter below runs per compile.
            let positions: Vec<(usize, usize)> = stamps.iter().map(|&(r, c, _)| (r, c)).collect();
            let template = template_for(n, &positions)?;
            let mut g = vec![0.0; template.pattern.nnz()];
            let mut c = vec![0.0; template.pattern.nnz()];
            for (&(_, _, s), &slot) in stamps.iter().zip(&template.slots) {
                g[slot] += s.g;
                c[slot] += s.c;
            }
            let numeric = SparseLu::new(template.symbolic.clone(), &template.pattern)
                .map_err(|_| SimError::SingularSystem { frequency_hz: 0.0 })?;
            Backend::Sparse {
                g,
                c,
                matrix: CsrMatrix::zeros(template.pattern.clone()),
                numeric,
                soa: None,
            }
        };

        Ok(CompiledAc {
            num_nodes: n,
            rhs,
            backend,
            factored_at: None,
            factor_count: 0,
            x_buf: vec![Complex::ZERO; n],
            r_buf: vec![Complex::ZERO; n],
        })
    }

    /// Number of signal nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Returns `true` when the sparse backend is active (`false` means the
    /// dense small-matrix fallback was selected).
    pub fn is_sparse(&self) -> bool {
        matches!(self.backend, Backend::Sparse { .. })
    }

    /// Assembles `Y(ω) = G + jωC` over the cached slots and numerically
    /// (re)factorises it.  A repeated call at the current frequency is free.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SingularSystem`] if the factorisation fails.
    pub fn factor_at(&mut self, freq_hz: f64) -> Result<(), SimError> {
        if self.factored_at == Some(freq_hz) {
            return Ok(());
        }
        self.factored_at = None;
        let omega = 2.0 * std::f64::consts::PI * freq_hz;
        match &mut self.backend {
            Backend::Dense { g, c, y, lu } => {
                // Drop the previous factorisation first: a failed refactor
                // must not leave a stale LU that solve_loaded would serve.
                *lu = None;
                {
                    let _assemble = gcnrl_telemetry::span!("sim.assemble.ns");
                    let n = self.num_nodes;
                    for r in 0..n {
                        for col in 0..n {
                            y[(r, col)] = Complex::new(g[r * n + col], omega * c[r * n + col]);
                        }
                    }
                }
                let _factor = gcnrl_telemetry::span!("sim.factor.ns");
                *lu = Some(y.lu().map_err(|_| SimError::SingularSystem {
                    frequency_hz: freq_hz,
                })?);
                solver_stats::record_dense_factor();
            }
            Backend::Sparse {
                g,
                c,
                matrix,
                numeric,
                ..
            } => {
                {
                    let _assemble = gcnrl_telemetry::span!("sim.assemble.ns");
                    for ((v, &gv), &cv) in matrix.values_mut().iter_mut().zip(&*g).zip(&*c) {
                        *v = Complex::new(gv, omega * cv);
                    }
                }
                let _factor = gcnrl_telemetry::span!("sim.factor.ns");
                numeric
                    .refactor(matrix.values())
                    .map_err(|_| SimError::SingularSystem {
                        frequency_hz: freq_hz,
                    })?;
                solver_stats::record_sparse_refactor();
            }
        }
        self.factored_at = Some(freq_hz);
        self.factor_count += 1;
        Ok(())
    }

    /// Number of numeric factorisations this instance has performed (repeat
    /// requests at the current frequency are served without refactoring).
    pub fn factor_count(&self) -> u64 {
        self.factor_count
    }

    /// Solves the RHS currently loaded in `x_buf` in place (allocation-free
    /// on the sparse path), with one step of residual-gated iterative
    /// refinement to keep static pivoting at dense-LU accuracy.
    fn solve_loaded(&mut self) -> Result<(), SimError> {
        let _solve = gcnrl_telemetry::span!("sim.solve.ns");
        let freq = self.factored_at.unwrap_or(0.0);
        let singular = |_| SimError::SingularSystem { frequency_hz: freq };
        match &mut self.backend {
            Backend::Dense { lu, .. } => {
                solver_stats::record_dense_solve();
                let x = lu
                    .as_ref()
                    .ok_or(SimError::SingularSystem { frequency_hz: freq })?
                    .solve(&self.x_buf)
                    .map_err(singular)?;
                self.x_buf.copy_from_slice(&x);
            }
            Backend::Sparse {
                matrix, numeric, ..
            } => {
                solver_stats::record_sparse_solve();
                if numeric.growth_sq() <= BENIGN_GROWTH_SQ {
                    // The factorisation is backward stable: solve directly,
                    // no residual verification needed.
                    return numeric.solve_in_place(&mut self.x_buf).map_err(singular);
                }
                // b is needed for the residual check; stash it in r_buf.
                self.r_buf.copy_from_slice(&self.x_buf);
                numeric.solve_in_place(&mut self.x_buf).map_err(singular)?;
                // r = b - A x, written over the stashed b.  Squared-magnitude
                // comparisons keep `hypot` off the hot path; comparing
                // |r|^2 > t^2 (1 + |b|^2) is conservative (refines at least
                // as often as the |r| > t (1 + |b|) gate would).
                let mut b_sq = 0.0f64;
                let mut resid_sq = 0.0f64;
                {
                    let pattern = matrix.pattern();
                    let values = matrix.values();
                    let (b, x) = (&mut self.r_buf, &self.x_buf);
                    for (r, acc) in b.iter_mut().enumerate() {
                        b_sq = b_sq.max(acc.abs_sq());
                        for (&c, s) in pattern.row(r).iter().zip(pattern.row_slots(r)) {
                            *acc -= values[s] * x[c];
                        }
                        resid_sq = resid_sq.max(acc.abs_sq());
                    }
                }
                if resid_sq > REFINE_THRESHOLD * REFINE_THRESHOLD * (1.0 + b_sq) {
                    numeric.solve_in_place(&mut self.r_buf).map_err(singular)?;
                    for (x, c) in self.x_buf.iter_mut().zip(&self.r_buf) {
                        *x += *c;
                    }
                }
            }
        }
        Ok(())
    }

    /// Solves for all node voltages using the circuit's own sources, against
    /// the current factorisation (see [`CompiledAc::factor_at`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SingularSystem`] if no factorisation is current.
    pub fn solve_sources(&mut self) -> Result<Vec<Complex>, SimError> {
        self.x_buf.copy_from_slice(&self.rhs);
        self.solve_loaded()?;
        Ok(self.x_buf.clone())
    }

    /// Node voltages produced by a unit current injected from `a` into `b`,
    /// ignoring the circuit's own sources; reuses the current factorisation,
    /// which is what makes the noise analysis one-factor-per-frequency.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SingularSystem`] if no factorisation is current.
    pub fn solve_injection(
        &mut self,
        a: NodeIndex,
        b: NodeIndex,
    ) -> Result<Vec<Complex>, SimError> {
        self.solve_injection_loaded(a, b)?;
        Ok(self.x_buf.clone())
    }

    /// Like [`CompiledAc::solve_injection`], but returns only the voltage at
    /// `output` without cloning the solution vector (the noise hot path).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SingularSystem`] if no factorisation is current.
    pub fn injection_gain(
        &mut self,
        a: NodeIndex,
        b: NodeIndex,
        output: NodeIndex,
    ) -> Result<Complex, SimError> {
        self.solve_injection_loaded(a, b)?;
        Ok(self.x_buf[output])
    }

    fn solve_injection_loaded(&mut self, a: NodeIndex, b: NodeIndex) -> Result<(), SimError> {
        self.x_buf.fill(Complex::ZERO);
        if b != GROUND {
            self.x_buf[b] += Complex::ONE;
        }
        if a != GROUND {
            self.x_buf[a] -= Complex::ONE;
        }
        self.solve_loaded()
    }

    /// Factors at `freq_hz` and solves with the circuit's own sources.
    ///
    /// # Errors
    ///
    /// Propagates factorisation and solve failures.
    pub fn solve_at(&mut self, freq_hz: f64) -> Result<Vec<Complex>, SimError> {
        self.factor_at(freq_hz)?;
        self.solve_sources()
    }

    /// Sweeps the transfer function to `output` over `freqs`.
    ///
    /// Sparse circuits assemble and factor up to [`SOA_LANES`] frequency
    /// points per pass through the struct-of-arrays kernels (lane results are
    /// bit-identical to the scalar path); a chunk whose factorisation is
    /// singular or whose element growth exceeds the benign bound falls back
    /// to the scalar per-point path, which reports errors precisely and
    /// applies residual-gated refinement.  Dense circuits always take the
    /// scalar path.
    ///
    /// # Errors
    ///
    /// Propagates the first failing frequency point.
    pub fn sweep_voltages(
        &mut self,
        output: NodeIndex,
        freqs: &[f64],
    ) -> Result<Vec<(f64, Complex)>, SimError> {
        if !self.is_sparse() || freqs.len() < 2 {
            return self.sweep_voltages_scalar(output, freqs);
        }
        let mut points = Vec::with_capacity(freqs.len());
        for chunk in freqs.chunks(SOA_LANES) {
            let lanes = if chunk.len() >= 2 {
                self.soa_chunk_solutions(chunk, std::slice::from_ref(&self.rhs.clone()))?
            } else {
                None
            };
            match lanes {
                Some(sols) => {
                    for (l, &f) in chunk.iter().enumerate() {
                        points.push((f, sols[0][l][output]));
                    }
                }
                None => {
                    for &f in chunk {
                        self.factor_at(f)?;
                        self.x_buf.copy_from_slice(&self.rhs);
                        self.solve_loaded()?;
                        points.push((f, self.x_buf[output]));
                    }
                }
            }
        }
        Ok(points)
    }

    /// The scalar reference sweep: one value-only restamp, numeric refactor
    /// and solve per frequency point.  This is the pre-batching hot path,
    /// kept public as the baseline the rollout benchmarks compare the update
    /// and struct-of-arrays paths against.
    ///
    /// # Errors
    ///
    /// Propagates the first failing frequency point.
    pub fn sweep_voltages_scalar(
        &mut self,
        output: NodeIndex,
        freqs: &[f64],
    ) -> Result<Vec<(f64, Complex)>, SimError> {
        let mut points = Vec::with_capacity(freqs.len());
        for &f in freqs {
            self.factor_at(f)?;
            self.x_buf.copy_from_slice(&self.rhs);
            self.solve_loaded()?;
            points.push((f, self.x_buf[output]));
        }
        Ok(points)
    }

    /// Factors a chunk of frequencies through the struct-of-arrays kernels
    /// and solves every right-hand side in `rhss` against every lane.
    ///
    /// Returns `Ok(None)` when the chunk should take the scalar path instead
    /// (singular lane, or element growth beyond the benign bound where the
    /// scalar path's residual-gated refinement is required); `Ok(Some(sols))`
    /// with `sols[rhs][lane][node]` otherwise.
    fn soa_chunk_solutions(
        &mut self,
        chunk: &[f64],
        rhss: &[Vec<Complex>],
    ) -> Result<Option<Vec<Vec<Vec<Complex>>>>, SimError> {
        let Backend::Sparse {
            g,
            c,
            matrix,
            numeric,
            soa,
        } = &mut self.backend
        else {
            return Ok(None);
        };
        if soa.is_none() {
            match SoaLu::new(numeric.symbolic().clone(), matrix.pattern(), SOA_LANES) {
                Ok(s) => *soa = Some(Box::new(s)),
                Err(_) => return Ok(None),
            }
        }
        let soa = soa.as_mut().expect("lane state initialised above");
        let omegas: Vec<f64> = chunk
            .iter()
            .map(|&f| 2.0 * std::f64::consts::PI * f)
            .collect();
        {
            let _assemble = gcnrl_telemetry::span!("sim.soa_assemble.ns");
            if soa.refactor_gc(g, c, &omegas).is_err() {
                return Ok(None);
            }
        }
        if soa.max_growth_sq() > BENIGN_GROWTH_SQ {
            return Ok(None);
        }
        let active = soa.active() as u64;
        for _ in 0..active {
            solver_stats::record_sparse_refactor();
        }
        self.factor_count += active;
        let _solve = gcnrl_telemetry::span!("sim.solve.ns");
        let mut sols = Vec::with_capacity(rhss.len());
        for rhs in rhss {
            let lanes = soa
                .solve_broadcast(rhs)
                .map_err(|_| SimError::SingularSystem {
                    frequency_hz: chunk[0],
                })?;
            for _ in 0..active {
                solver_stats::record_sparse_solve();
            }
            sols.push(lanes);
        }
        Ok(Some(sols))
    }

    /// Scalar-path equivalent of [`CompiledAc::soa_chunk_solutions`]: one
    /// refactor per frequency, every right-hand side solved against it (with
    /// refinement when growth demands it).  Same `sols[rhs][freq][node]`
    /// layout.
    fn scalar_chunk_solutions(
        &mut self,
        chunk: &[f64],
        rhss: &[Vec<Complex>],
    ) -> Result<Vec<Vec<Vec<Complex>>>, SimError> {
        let mut sols = vec![Vec::with_capacity(chunk.len()); rhss.len()];
        for &f in chunk {
            self.factor_at(f)?;
            let singular = |_| SimError::SingularSystem { frequency_hz: f };
            let Backend::Sparse {
                matrix, numeric, ..
            } = &mut self.backend
            else {
                return Err(SimError::SingularSystem { frequency_hz: f });
            };
            for (out, rhs) in sols.iter_mut().zip(rhss) {
                solver_stats::record_sparse_solve();
                let x = if numeric.growth_sq() <= BENIGN_GROWTH_SQ {
                    numeric.solve(rhs).map_err(singular)?
                } else {
                    numeric.solve_refined(matrix, rhs).map_err(singular)?
                };
                out.push(x);
            }
        }
        Ok(sols)
    }

    /// Per-slot value diff of `candidate` against this base: `(slot, Δg, Δc)`
    /// for every slot whose stamped values differ.  `None` when the two
    /// circuits do not share a sparse backend and sparsity pattern (different
    /// topology — no update relationship exists).
    fn delta_slots(&self, candidate: &CompiledAc) -> Option<Vec<(usize, f64, f64)>> {
        let Backend::Sparse {
            g: bg,
            c: bc,
            matrix: bm,
            ..
        } = &self.backend
        else {
            return None;
        };
        let Backend::Sparse {
            g: cg,
            c: cc,
            matrix: cm,
            ..
        } = &candidate.backend
        else {
            return None;
        };
        if !Arc::ptr_eq(bm.pattern(), cm.pattern()) && bm.pattern() != cm.pattern() {
            return None;
        }
        let mut deltas = Vec::new();
        for (slot, ((&g0, &g1), (&c0, &c1))) in bg.iter().zip(cg).zip(bc.iter().zip(cc)).enumerate()
        {
            if g0 != g1 || c0 != c1 {
                deltas.push((slot, g1 - g0, c1 - c0));
            }
        }
        Some(deltas)
    }

    /// True when `b − (Y_base(ω) + Δ)·x` stays below the refinement
    /// threshold — the acceptance gate of the update path.
    fn update_residual_ok(
        &self,
        upd: &RankUpdate<Complex>,
        x: &[Complex],
        b: &[Complex],
        omega: f64,
    ) -> bool {
        self.update_residual_ok_scratch(upd, x, b, omega, &mut Vec::new())
    }

    /// [`CompiledAc::update_residual_ok`] with a caller-owned scratch buffer
    /// for the matrix-vector product, so the batched sweep's per-candidate
    /// gate allocates nothing.
    fn update_residual_ok_scratch(
        &self,
        upd: &RankUpdate<Complex>,
        x: &[Complex],
        b: &[Complex],
        omega: f64,
        ax: &mut Vec<Complex>,
    ) -> bool {
        let Backend::Sparse { g, c, matrix, .. } = &self.backend else {
            return false;
        };
        ax.clear();
        ax.resize(self.num_nodes, Complex::ZERO);
        for (r, col, slot) in matrix.pattern().iter() {
            ax[r] += Complex::new(g[slot], omega * c[slot]) * x[col];
        }
        if upd.delta_matvec_add(x, ax).is_err() {
            return false;
        }
        let mut b_sq = 0.0f64;
        let mut resid_sq = 0.0f64;
        for (bi, axi) in b.iter().zip(ax.iter()) {
            b_sq = b_sq.max(bi.abs_sq());
            resid_sq = resid_sq.max((*bi - *axi).abs_sq());
        }
        resid_sq <= REFINE_THRESHOLD * REFINE_THRESHOLD * (1.0 + b_sq)
    }

    /// Sweeps every candidate's transfer function to `output` over `freqs`
    /// by exploiting candidate structure around this base circuit.
    ///
    /// Each candidate's stamp values are diffed against the base template
    /// slots: identical candidates share the base solution outright, small
    /// diffs (at most [`MAX_UPDATE_ROWS`] distinct perturbed rows) ride a
    /// Sherman–Morrison–Woodbury correction of the base factorisation, and
    /// large diffs (or different topologies) take their own full-refactor
    /// sweep.  The base factors once per frequency chunk through the
    /// struct-of-arrays kernels and the unit-solve columns are shared by all
    /// update candidates; every corrected solution passes a residual gate and
    /// falls back to a per-candidate full refactor when the correction is
    /// ill-conditioned (counted in
    /// [`solver_stats`](crate::solver_stats::SolverStats::refactor_fallbacks)).
    ///
    /// Results match the per-candidate scalar sweeps to the solver's
    /// residual threshold (≤ ~1e-9 relative) but are not bit-identical on
    /// the update path.
    ///
    /// # Errors
    ///
    /// Propagates the first failing frequency point (of the base or of any
    /// candidate's fallback sweep).
    pub fn sweep_batch(
        &mut self,
        output: NodeIndex,
        freqs: &[f64],
        candidates: &mut [CompiledAc],
    ) -> Result<Vec<Vec<(f64, Complex)>>, SimError> {
        let n = self.num_nodes;
        // Classify every candidate against the base.
        enum Route {
            /// Identical matrix and sources: the base solution is the answer.
            Shared,
            /// Small diff: SMW update (with the candidate's own RHS when the
            /// sources differ).
            Update {
                deltas: Vec<(usize, f64, f64)>,
                own_rhs: bool,
            },
            /// Different topology or large diff: own full sweep.
            Full,
        }
        let routes: Vec<Route> = candidates
            .iter()
            .map(|cand| {
                let Some(deltas) = self.delta_slots(cand) else {
                    return Route::Full;
                };
                let own_rhs = cand.rhs != self.rhs;
                if deltas.is_empty() && !own_rhs {
                    return Route::Shared;
                }
                let rows = self.delta_rows(&deltas);
                if rows.len() <= MAX_UPDATE_ROWS && rows.len() < n {
                    Route::Update { deltas, own_rhs }
                } else {
                    Route::Full
                }
            })
            .collect();

        let mut results: Vec<Vec<(f64, Complex)>> = candidates
            .iter()
            .map(|_| Vec::with_capacity(freqs.len()))
            .collect();
        for (cand, (route, result)) in candidates.iter_mut().zip(routes.iter().zip(&mut results)) {
            if matches!(route, Route::Full) {
                *result = cand.sweep_voltages(output, freqs)?;
            }
        }
        if routes.iter().all(|r| matches!(r, Route::Full)) {
            return Ok(results);
        }

        // Union of perturbed rows: one unit-solve column per row per chunk,
        // shared by every update candidate.
        let mut union_rows: Vec<usize> = Vec::new();
        for route in &routes {
            if let Route::Update { deltas, .. } = route {
                union_rows.extend(self.delta_rows(deltas));
            }
        }
        union_rows.sort_unstable();
        union_rows.dedup();

        let pos = self.slot_positions();
        // Per-candidate delta coordinates resolved once: `(row, col, Δg, Δc)`
        // (only the value `Δg + jωΔc` depends on the frequency).
        let coords: Vec<Vec<(usize, usize, f64, f64)>> = routes
            .iter()
            .map(|route| match route {
                Route::Update { deltas, .. } => deltas
                    .iter()
                    .map(|&(slot, dg, dc)| {
                        let (r, col) = pos[slot];
                        (r, col, dg, dc)
                    })
                    .collect(),
                _ => Vec::new(),
            })
            .collect();

        // RHS batch (frequency-independent): [0] the base sources, then the
        // unit vectors of the row union, then each differing candidate RHS.
        let mut rhss: Vec<Vec<Complex>> = Vec::with_capacity(1 + union_rows.len());
        rhss.push(self.rhs.clone());
        for &r in &union_rows {
            let mut e = vec![Complex::ZERO; n];
            e[r] = Complex::ONE;
            rhss.push(e);
        }
        let mut own_rhs_slot: HashMap<usize, usize> = HashMap::new();
        for (i, route) in routes.iter().enumerate() {
            if let Route::Update { own_rhs: true, .. } = route {
                own_rhs_slot.insert(i, rhss.len());
                rhss.push(candidates[i].rhs.clone());
            }
        }

        // Scratch reused across every (candidate, frequency) correction so
        // the inner loop is allocation-free after the first pass.
        let mut w_flat: Vec<Complex> = Vec::new();
        let mut dvals: Vec<(usize, usize, Complex)> = Vec::new();
        let mut x: Vec<Complex> = Vec::new();
        let mut t_scratch: Vec<Complex> = Vec::new();
        let mut ax_scratch: Vec<Complex> = Vec::new();
        let mut upd_scratch: Option<RankUpdate<Complex>> = None;

        for chunk in freqs.chunks(SOA_LANES) {
            let sols = match self.soa_chunk_solutions(chunk, &rhss)? {
                Some(sols) => sols,
                None => self.scalar_chunk_solutions(chunk, &rhss)?,
            };

            // One span per chunk: the whole correction stage of these lanes.
            let _span = gcnrl_telemetry::span!("sim.update_solve.ns");
            for (l, &f) in chunk.iter().enumerate() {
                let omega = 2.0 * std::f64::consts::PI * f;
                // Shared W columns for this frequency, column-major n × k.
                w_flat.clear();
                for j in 0..union_rows.len() {
                    w_flat.extend_from_slice(&sols[1 + j][l]);
                }
                for (i, route) in routes.iter().enumerate() {
                    match route {
                        Route::Full => {}
                        Route::Shared => results[i].push((f, sols[0][l][output])),
                        Route::Update { own_rhs, .. } => {
                            dvals.clear();
                            dvals.extend(
                                coords[i].iter().map(|&(r, col, dg, dc)| {
                                    (r, col, Complex::new(dg, omega * dc))
                                }),
                            );
                            let rhs_idx = if *own_rhs { own_rhs_slot[&i] } else { 0 };
                            let planned = match &mut upd_scratch {
                                Some(upd) => upd
                                    .replan_with_columns(n, &dvals, &union_rows, &w_flat)
                                    .is_ok(),
                                slot => match RankUpdate::plan_with_columns(
                                    n,
                                    &dvals,
                                    union_rows.clone(),
                                    w_flat.clone(),
                                ) {
                                    Ok(upd) => {
                                        *slot = Some(upd);
                                        true
                                    }
                                    Err(_) => false,
                                },
                            };
                            let corrected = planned && {
                                let upd = upd_scratch.as_ref().expect("planned above");
                                x.clear();
                                x.extend_from_slice(&sols[rhs_idx][l]);
                                upd.correct_with_scratch(&mut x, &mut t_scratch).is_ok()
                                    && self.update_residual_ok_scratch(
                                        upd,
                                        &x,
                                        &rhss[rhs_idx],
                                        omega,
                                        &mut ax_scratch,
                                    )
                            };
                            if corrected {
                                solver_stats::record_update_hit();
                                results[i].push((f, x[output]));
                            } else {
                                // Ill-conditioned or residual-gated: this
                                // candidate pays a full refactor at this
                                // frequency.
                                solver_stats::record_refactor_fallback();
                                let cand = &mut candidates[i];
                                cand.factor_at(f)?;
                                cand.x_buf.copy_from_slice(&cand.rhs);
                                cand.solve_loaded()?;
                                results[i].push((f, cand.x_buf[output]));
                            }
                        }
                    }
                }
            }
        }
        Ok(results)
    }

    /// Distinct original rows touched by a slot-delta list.
    fn delta_rows(&self, deltas: &[(usize, f64, f64)]) -> Vec<usize> {
        let pos = self.slot_positions();
        let mut rows: Vec<usize> = deltas.iter().map(|&(slot, ..)| pos[slot].0).collect();
        rows.sort_unstable();
        rows.dedup();
        rows
    }

    /// `(row, col)` of every pattern slot (sparse backend only).
    fn slot_positions(&self) -> Vec<(usize, usize)> {
        match &self.backend {
            Backend::Sparse { matrix, .. } => {
                matrix.pattern().iter().map(|(r, c, _)| (r, c)).collect()
            }
            Backend::Dense { .. } => Vec::new(),
        }
    }

    /// Solves `candidate`'s node voltages at `freq_hz` through this base's
    /// factorisation via a rank-k update when the candidate differs in few
    /// slots, falling back to the candidate's own solve otherwise.  The spot
    /// analogue of [`CompiledAc::sweep_batch`] (used by the evaluators for
    /// single-frequency figures such as the noise spot gain).
    ///
    /// # Errors
    ///
    /// Propagates factorisation and solve failures.
    pub fn solve_updated_from(
        &mut self,
        candidate: &mut CompiledAc,
        freq_hz: f64,
    ) -> Result<Vec<Complex>, SimError> {
        let Some(deltas) = self.delta_slots(candidate) else {
            return candidate.solve_at(freq_hz);
        };
        if deltas.is_empty() && candidate.rhs == self.rhs {
            return self.solve_at(freq_hz);
        }
        let rows = self.delta_rows(&deltas);
        if rows.len() > MAX_UPDATE_ROWS || rows.len() >= self.num_nodes {
            return candidate.solve_at(freq_hz);
        }
        self.factor_at(freq_hz)?;
        let omega = 2.0 * std::f64::consts::PI * freq_hz;
        let pos = self.slot_positions();
        let corrected = {
            let _span = gcnrl_telemetry::span!("sim.update_solve.ns");
            let dvals: Vec<(usize, usize, Complex)> = deltas
                .iter()
                .map(|&(slot, dg, dc)| {
                    let (r, col) = pos[slot];
                    (r, col, Complex::new(dg, omega * dc))
                })
                .collect();
            let Backend::Sparse { numeric, .. } = &self.backend else {
                unreachable!("delta_slots implies a sparse backend");
            };
            solver_stats::record_sparse_solve();
            RankUpdate::plan(numeric, &dvals)
                .and_then(|upd| {
                    let mut x = numeric.solve(&candidate.rhs)?;
                    upd.correct(&mut x)?;
                    Ok((upd, x))
                })
                .ok()
                .and_then(|(upd, x)| {
                    self.update_residual_ok(&upd, &x, &candidate.rhs, omega)
                        .then_some(x)
                })
        };
        match corrected {
            Some(x) => {
                solver_stats::record_update_hit();
                Ok(x)
            }
            None => {
                solver_stats::record_refactor_fallback();
                candidate.solve_at(freq_hz)
            }
        }
    }

    /// Plans a rank-k injection correction for `candidate` against this
    /// base's current factorisation at `freq_hz` (the noise path: many
    /// injection solves per frequency share one plan).
    ///
    /// Returns `Ok(None)` when no update relationship exists or the plan is
    /// ill-conditioned — the caller should use the candidate's own
    /// factor-once path (recording the fallback if an update was attempted).
    pub(crate) fn injection_update_plan(
        &mut self,
        candidate: &CompiledAc,
        freq_hz: f64,
    ) -> Result<Option<RankUpdate<Complex>>, SimError> {
        let Some(deltas) = self.delta_slots(candidate) else {
            return Ok(None);
        };
        let rows = self.delta_rows(&deltas);
        if rows.len() > MAX_UPDATE_ROWS || rows.len() >= self.num_nodes {
            return Ok(None);
        }
        self.factor_at(freq_hz)?;
        let omega = 2.0 * std::f64::consts::PI * freq_hz;
        let pos = self.slot_positions();
        let dvals: Vec<(usize, usize, Complex)> = deltas
            .iter()
            .map(|&(slot, dg, dc)| {
                let (r, col) = pos[slot];
                (r, col, Complex::new(dg, omega * dc))
            })
            .collect();
        let Backend::Sparse { numeric, .. } = &self.backend else {
            unreachable!("delta_slots implies a sparse backend");
        };
        match RankUpdate::plan(numeric, &dvals) {
            Ok(upd) => Ok(Some(upd)),
            Err(_) => {
                solver_stats::record_refactor_fallback();
                Ok(None)
            }
        }
    }

    /// Solves an injection right-hand side through the base factorisation
    /// and corrects it with `upd` (companion of
    /// [`CompiledAc::injection_update_plan`]); applies the residual gate.
    ///
    /// Returns `Ok(None)` when the gate rejects the corrected solution.
    pub(crate) fn solve_injection_updated(
        &mut self,
        upd: &RankUpdate<Complex>,
        a: NodeIndex,
        b: NodeIndex,
        freq_hz: f64,
    ) -> Result<Option<Vec<Complex>>, SimError> {
        let _span = gcnrl_telemetry::span!("sim.update_solve.ns");
        let omega = 2.0 * std::f64::consts::PI * freq_hz;
        let mut rhs = vec![Complex::ZERO; self.num_nodes];
        if b != GROUND {
            rhs[b] += Complex::ONE;
        }
        if a != GROUND {
            rhs[a] -= Complex::ONE;
        }
        let Backend::Sparse { numeric, .. } = &self.backend else {
            return Ok(None);
        };
        solver_stats::record_sparse_solve();
        let singular = |_| SimError::SingularSystem {
            frequency_hz: freq_hz,
        };
        let mut x = numeric.solve(&rhs).map_err(singular)?;
        upd.correct(&mut x).map_err(singular)?;
        if self.update_residual_ok(upd, &x, &rhs, omega) {
            solver_stats::record_update_hit();
            Ok(Some(x))
        } else {
            solver_stats::record_refactor_fallback();
            Ok(None)
        }
    }
}

impl AcCircuit {
    /// Compiles the circuit for repeated solves (see [`CompiledAc`]).
    ///
    /// # Errors
    ///
    /// Propagates [`CompiledAc::compile`] failures.
    pub fn compile(&self) -> Result<CompiledAc, SimError> {
        CompiledAc::compile(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smallsignal::AcElement;

    /// RC ladder with `n` nodes driven by a current source at node 0.
    fn ladder(n: usize) -> AcCircuit {
        let mut ckt = AcCircuit::new(n);
        for i in 0..n {
            let prev = if i == 0 { GROUND } else { i - 1 };
            ckt.add(AcElement::Conductance {
                a: prev,
                b: i,
                g: 1e-3,
            });
            ckt.add(AcElement::Capacitance {
                a: i,
                b: GROUND,
                c: 1e-12,
            });
        }
        ckt.add(AcElement::CurrentSource {
            a: GROUND,
            b: 0,
            value: Complex::ONE,
        });
        ckt
    }

    #[test]
    fn compiled_matches_dense_reference_across_sizes() {
        for n in [1usize, 2, 3, 4, 8, 17] {
            let ckt = ladder(n);
            let mut compiled = ckt.compile().unwrap();
            assert_eq!(compiled.is_sparse(), n > DENSE_FALLBACK_MAX_NODES);
            for freq in [1.0, 1e6, 1e9] {
                let reference = ckt.solve(freq).unwrap();
                let fast = compiled.solve_at(freq).unwrap();
                for (a, b) in reference.iter().zip(&fast) {
                    assert!((*a - *b).abs() < 1e-9 * (1.0 + a.abs()), "n={n} f={freq}");
                }
            }
        }
    }

    #[test]
    fn injection_matches_dense_reference() {
        let ckt = ladder(6);
        let mut compiled = ckt.compile().unwrap();
        compiled.factor_at(2e6).unwrap();
        let fast = compiled.solve_injection(GROUND, 3).unwrap();
        let reference = ckt.solve_injection(2e6, GROUND, 3).unwrap();
        for (a, b) in reference.iter().zip(&fast) {
            assert!((*a - *b).abs() < 1e-9 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn repeated_factor_at_same_frequency_is_cached() {
        let ckt = ladder(5);
        let mut compiled = ckt.compile().unwrap();
        compiled.factor_at(1e6).unwrap();
        compiled.factor_at(1e6).unwrap();
        assert_eq!(compiled.factor_count(), 1);
        compiled.factor_at(2e6).unwrap();
        assert_eq!(compiled.factor_count(), 2);
    }

    #[test]
    fn sweep_voltages_matches_pointwise_solves() {
        let ckt = ladder(7);
        let mut compiled = ckt.compile().unwrap();
        let freqs = [1.0, 1e3, 1e6, 1e9];
        let swept = compiled.sweep_voltages(2, &freqs).unwrap();
        for (f, v) in swept {
            let reference = ckt.solve(f).unwrap()[2];
            assert!((v - reference).abs() < 1e-9 * (1.0 + reference.abs()));
        }
    }

    #[test]
    fn repeated_compiles_of_the_same_topology_hit_the_template_cache() {
        let ckt = ladder(9);
        let _ = ckt.compile().unwrap(); // first compile builds (or finds) the template
        let before = solver_stats::snapshot();
        let compiled = ckt.compile().unwrap();
        let after = solver_stats::snapshot();
        assert!(compiled.is_sparse());
        assert!(
            after.template_hits > before.template_hits,
            "second compile of an identical topology must be a template hit"
        );
    }

    #[test]
    fn template_reuse_across_sizings_matches_the_dense_reference() {
        // Same topology, different element values: the cached template is
        // shared while the stamped values differ, and both agree with the
        // dense reference.
        let build = |g: f64, c: f64| {
            let mut ckt = AcCircuit::new(6);
            for i in 0..6 {
                let prev = if i == 0 { GROUND } else { i - 1 };
                ckt.add(AcElement::Conductance { a: prev, b: i, g });
                ckt.add(AcElement::Capacitance { a: i, b: GROUND, c });
            }
            ckt.add(AcElement::CurrentSource {
                a: GROUND,
                b: 0,
                value: Complex::ONE,
            });
            ckt
        };
        for (g, c) in [(1e-3, 1e-12), (5e-4, 3e-13), (2e-2, 8e-12)] {
            let ckt = build(g, c);
            let mut compiled = ckt.compile().unwrap();
            for f in [1e2, 1e6, 1e9] {
                let fast = compiled.solve_at(f).unwrap();
                let reference = ckt.solve(f).unwrap();
                for (a, b) in reference.iter().zip(&fast) {
                    assert!(
                        (*a - *b).abs() < 1e-9 * (1.0 + a.abs()),
                        "g={g} c={c} f={f}"
                    );
                }
            }
        }
    }

    #[test]
    fn soa_sweep_is_bit_identical_to_scalar_sweep() {
        // The struct-of-arrays chunk path must not change a single bit of
        // the sweep relative to the scalar per-point reference, including
        // over a partial tail chunk (11 points = one full chunk + 3 lanes).
        let ckt = ladder(10);
        let mut soa = ckt.compile().unwrap();
        let mut scalar = ckt.compile().unwrap();
        let freqs: Vec<f64> = (0..11).map(|i| 10f64.powi(i)).collect();
        let fast = soa.sweep_voltages(3, &freqs).unwrap();
        let reference = scalar.sweep_voltages_scalar(3, &freqs).unwrap();
        assert_eq!(fast.len(), reference.len());
        for ((f0, v0), (f1, v1)) in fast.iter().zip(&reference) {
            assert_eq!(f0, f1);
            assert_eq!(v0.re.to_bits(), v1.re.to_bits(), "re differs at {f0} Hz");
            assert_eq!(v0.im.to_bits(), v1.im.to_bits(), "im differs at {f0} Hz");
        }
    }

    /// `ladder(n)` with the grounded conductance and capacitance at `node`
    /// scaled — the same slots as the base, different values (a sizing
    /// perturbation, the rollout-candidate shape).
    fn perturbed_ladder(n: usize, node: usize, scale: f64) -> AcCircuit {
        let mut ckt = AcCircuit::new(n);
        for i in 0..n {
            let prev = if i == 0 { GROUND } else { i - 1 };
            ckt.add(AcElement::Conductance {
                a: prev,
                b: i,
                g: 1e-3,
            });
            let c = if i == node { 1e-12 * scale } else { 1e-12 };
            ckt.add(AcElement::Capacitance { a: i, b: GROUND, c });
        }
        ckt.add(AcElement::CurrentSource {
            a: GROUND,
            b: 0,
            value: Complex::ONE,
        });
        ckt
    }

    #[test]
    fn sweep_batch_matches_per_candidate_scalar_sweeps() {
        let n = 8;
        let output = 4;
        let freqs: Vec<f64> = (0..10).map(|i| 10f64.powi(i)).collect();
        let mut base = ladder(n).compile().unwrap();

        // One of each route: identical (shared), two small perturbations
        // (update path, different rows), and a different topology (full).
        let mut different = ladder(n);
        different.add(AcElement::Conductance {
            a: 2,
            b: 6,
            g: 5e-4,
        });
        let circuits = [
            ladder(n),
            perturbed_ladder(n, 2, 3.0),
            perturbed_ladder(n, 5, 0.25),
            different,
        ];
        let mut candidates: Vec<CompiledAc> =
            circuits.iter().map(|c| c.compile().unwrap()).collect();

        let before = solver_stats::snapshot();
        let batch = base.sweep_batch(output, &freqs, &mut candidates).unwrap();
        let after = solver_stats::snapshot();
        assert!(
            after.update_hits > before.update_hits,
            "perturbed candidates must ride the update path"
        );

        for (ckt, swept) in circuits.iter().zip(&batch) {
            let mut reference = ckt.compile().unwrap();
            let expect = reference.sweep_voltages_scalar(output, &freqs).unwrap();
            assert_eq!(swept.len(), expect.len());
            for ((f0, v0), (f1, v1)) in swept.iter().zip(&expect) {
                assert_eq!(f0, f1);
                assert!(
                    (*v0 - *v1).abs() < 1e-9 * (1.0 + v1.abs()),
                    "batch diverges from scalar sweep at {f0} Hz: {v0:?} vs {v1:?}"
                );
            }
        }
    }

    #[test]
    fn sweep_batch_rank0_candidate_with_different_sources_is_exact() {
        // Same matrix, different current source: a rank-0 update with the
        // candidate's own RHS — the base solve of that RHS, exactly.
        let n = 8;
        let freqs = [1e3, 1e6, 1e9];
        let mut base = ladder(n).compile().unwrap();
        let mut ckt = AcCircuit::new(n);
        for i in 0..n {
            let prev = if i == 0 { GROUND } else { i - 1 };
            ckt.add(AcElement::Conductance {
                a: prev,
                b: i,
                g: 1e-3,
            });
            ckt.add(AcElement::Capacitance {
                a: i,
                b: GROUND,
                c: 1e-12,
            });
        }
        ckt.add(AcElement::CurrentSource {
            a: GROUND,
            b: 0,
            value: Complex::new(0.0, 2.0),
        });
        let mut candidates = vec![ckt.compile().unwrap()];
        let batch = base.sweep_batch(3, &freqs, &mut candidates).unwrap();
        let mut reference = ckt.compile().unwrap();
        for (f, v) in &batch[0] {
            let expect = reference.solve_at(*f).unwrap()[3];
            assert!((*v - expect).abs() <= 1e-12 * (1.0 + expect.abs()));
        }
    }

    #[test]
    fn solve_updated_from_matches_candidate_solve() {
        let mut base = ladder(9).compile().unwrap();
        let ckt = perturbed_ladder(9, 4, 2.0);
        let mut candidate = ckt.compile().unwrap();
        let before = solver_stats::snapshot();
        let x = base.solve_updated_from(&mut candidate, 1e6).unwrap();
        let after = solver_stats::snapshot();
        assert!(after.update_hits > before.update_hits);
        let expect = ckt.compile().unwrap().solve_at(1e6).unwrap();
        for (a, b) in x.iter().zip(&expect) {
            assert!((*a - *b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn template_cache_evicts_cold_entries_instead_of_clearing() {
        // More distinct topologies than the cache holds: a 26-node ladder
        // plus one extra conductance over a distinct node pair each gives
        // 325 distinct patterns.  The cache must evict (counter moves) and
        // the most recently used topology must survive the churn.
        let n = 26;
        let variant = |a: usize, b: usize| {
            let mut ckt = ladder(n);
            ckt.add(AcElement::Conductance { a, b, g: 1e-5 });
            ckt
        };
        let before = solver_stats::snapshot();
        let mut last = (0, 1);
        let mut count = 0;
        'outer: for a in 0..n {
            for b in (a + 1)..n {
                let _ = variant(a, b).compile().unwrap();
                last = (a, b);
                count += 1;
                if count > TEMPLATE_CACHE_MAX + 8 {
                    break 'outer;
                }
            }
        }
        let churned = solver_stats::snapshot();
        assert!(
            churned.cache_evictions > before.cache_evictions,
            "filling past capacity must evict cold entries"
        );
        // The hottest (last-inserted) topology is still cached.
        let hits_before = solver_stats::snapshot().template_hits;
        let _ = variant(last.0, last.1).compile().unwrap();
        assert!(
            solver_stats::snapshot().template_hits > hits_before,
            "most recently used entry must survive eviction"
        );
    }

    #[test]
    fn vccs_circuit_compiles_and_agrees() {
        // Common-source stage with enough nodes to hit the sparse backend.
        let mut ckt = AcCircuit::new(5);
        ckt.drive_voltage(0, 1.0);
        ckt.add(AcElement::Vccs {
            out_p: 1,
            out_n: GROUND,
            ctrl_p: 0,
            ctrl_n: GROUND,
            gm: 1e-3,
        });
        for i in 1..5 {
            ckt.add(AcElement::Conductance {
                a: i - 1,
                b: i,
                g: 1e-4,
            });
            ckt.add(AcElement::Capacitance {
                a: i,
                b: GROUND,
                c: 1e-13,
            });
        }
        let mut compiled = ckt.compile().unwrap();
        assert!(compiled.is_sparse());
        for f in [10.0, 1e7] {
            let fast = compiled.solve_at(f).unwrap();
            let reference = ckt.solve(f).unwrap();
            for (a, b) in reference.iter().zip(&fast) {
                assert!((*a - *b).abs() < 1e-9 * (1.0 + a.abs()));
            }
        }
    }
}
