//! Pre-compiled small-signal circuits: `Y(ω) = G + jωC` sweep assembly over
//! a fixed sparsity pattern with symbolic-once LU refactorisation.
//!
//! [`AcCircuit`](crate::AcCircuit) stores a flat element list, and the legacy
//! dense path re-walks it (and re-allocates an `n x n` matrix) at every
//! frequency point.  [`CompiledAc`] does that walk **once**: every element is
//! lowered into frequency-independent conductance stamps `G` and
//! frequency-dependent capacitance stamps `C` aggregated per matrix slot, so
//! a sweep point assembles `Y(ω) = G + jωC` with a single pass over the
//! cached nonzero slots and then numerically refactors against a shared
//! symbolic analysis (see [`gcnrl_linalg::sparse`]).  Circuits at or below
//! [`DENSE_FALLBACK_MAX_NODES`] use a dense factorisation instead — the
//! sparse machinery only pays off once the matrix has meaningful sparsity —
//! but still benefit from the cached stamp assembly.

use crate::smallsignal::{AcCircuit, AcElement, NodeIndex, GMIN, GROUND};
use crate::solver_stats;
use crate::SimError;
use gcnrl_linalg::sparse::{CsrMatrix, SparseLu, SparsityPattern, SymbolicLu};
use gcnrl_linalg::{CMatrix, CluDecomposition, Complex, LinalgError};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

/// Largest node count still served by the dense fallback backend.
pub const DENSE_FALLBACK_MAX_NODES: usize = 3;

/// Relative residual above which the sparse solve applies one step of
/// iterative refinement (static pattern-chosen pivoting is almost always
/// accurate on MNA systems; the residual check catches the rare exception).
const REFINE_THRESHOLD: f64 = 1e-10;

/// Squared element-growth bound under which a factorisation is considered
/// backward stable and the per-solve residual verification is skipped
/// entirely (growth `1e4`, i.e. a backward error around `n·eps·1e4 ≈ 1e-11`
/// for the node counts at hand).  Shared with the DC Newton solver.
pub(crate) const BENIGN_GROWTH_SQ: f64 = 1e8;

/// Bound on the process-wide symbolic cache (far above the handful of
/// distinct circuit topologies any run touches; a safety valve, not a limit).
const SYMBOLIC_CACHE_MAX: usize = 256;

/// Bound on the process-wide per-topology template cache (same rationale).
const TEMPLATE_CACHE_MAX: usize = 256;

type SymbolicCache = Mutex<HashMap<u64, Vec<(Arc<SparsityPattern>, Arc<SymbolicLu>)>>>;

static SYMBOLIC_CACHE: OnceLock<SymbolicCache> = OnceLock::new();

/// Everything about the sparse stamp-slot lowering of one circuit topology
/// that does not depend on element values: the shared sparsity pattern, its
/// symbolic analysis, and the pattern slot of every stamp in the canonical
/// lowering order.  Cached process-wide keyed by the stamp-position sequence,
/// so repeated compiles of the same evaluator (one per candidate evaluation)
/// skip the pattern build, the per-stamp slot searches and the symbolic
/// lookup entirely.
struct AcTemplate {
    /// The stamp positions in canonical lowering order (the cache identity:
    /// two circuits with the same position sequence lower identically).
    positions: Vec<(usize, usize)>,
    pattern: Arc<SparsityPattern>,
    symbolic: Arc<SymbolicLu>,
    /// `slots[i]` is the pattern slot of `positions[i]`.
    slots: Vec<usize>,
}

type TemplateCache = Mutex<HashMap<u64, Vec<Arc<AcTemplate>>>>;

static TEMPLATE_CACHE: OnceLock<TemplateCache> = OnceLock::new();

/// Returns the compiled template for the topology whose canonical stamp
/// positions are `positions`, building (and caching) it on first sight.
fn template_for(n: usize, positions: &[(usize, usize)]) -> Result<Arc<AcTemplate>, SimError> {
    let mut hasher = DefaultHasher::new();
    n.hash(&mut hasher);
    positions.hash(&mut hasher);
    let key = hasher.finish();

    let cache = TEMPLATE_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    {
        let map = cache.lock().expect("template cache poisoned");
        if let Some(bucket) = map.get(&key) {
            for t in bucket {
                if t.pattern.n() == n && t.positions == positions {
                    solver_stats::record_template_hit();
                    return Ok(t.clone());
                }
            }
        }
    }

    // Build outside the lock: pattern construction and symbolic analysis are
    // the expensive parts this cache exists to amortise, and a racing
    // duplicate build is harmless (last writer appends a second equal entry).
    let singular = |_| SimError::SingularSystem { frequency_hz: 0.0 };
    let pattern = Arc::new(SparsityPattern::from_positions(n, positions).map_err(singular)?);
    let slots: Vec<usize> = positions
        .iter()
        .map(|&(r, c)| pattern.slot(r, c).expect("stamp position is in pattern"))
        .collect();
    let symbolic = shared_symbolic(&pattern).map_err(singular)?;
    let template = Arc::new(AcTemplate {
        positions: positions.to_vec(),
        pattern,
        symbolic,
        slots,
    });
    solver_stats::record_template_build();

    let mut map = cache.lock().expect("template cache poisoned");
    if map.values().map(Vec::len).sum::<usize>() >= TEMPLATE_CACHE_MAX {
        map.clear();
    }
    map.entry(key).or_default().push(template.clone());
    Ok(template)
}

/// Returns the symbolic analysis for `pattern`, computing it only the first
/// time a pattern is seen in this process.  Every evaluation of the same
/// circuit topology — regardless of sizing — shares one analysis, which is
/// what makes repeated candidate evaluations cheap.  Used by both the AC
/// sweep path and the DC Newton solver.
pub(crate) fn shared_symbolic(
    pattern: &Arc<SparsityPattern>,
) -> Result<Arc<SymbolicLu>, LinalgError> {
    let mut hasher = DefaultHasher::new();
    pattern.n().hash(&mut hasher);
    for (r, c, _) in pattern.iter() {
        r.hash(&mut hasher);
        c.hash(&mut hasher);
    }
    let key = hasher.finish();

    let cache = SYMBOLIC_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("symbolic cache poisoned");
    if let Some(bucket) = map.get(&key) {
        for (p, s) in bucket {
            if **p == **pattern {
                return Ok(s.clone());
            }
        }
    }
    let symbolic = Arc::new(SymbolicLu::analyze(pattern)?);
    solver_stats::record_symbolic_analysis();
    if map.values().map(Vec::len).sum::<usize>() >= SYMBOLIC_CACHE_MAX {
        map.clear();
    }
    map.entry(key)
        .or_default()
        .push((pattern.clone(), symbolic.clone()));
    Ok(symbolic)
}

/// Accumulated `(G, C)` stamp pair for one matrix position.
#[derive(Debug, Clone, Copy, Default)]
struct GcStamp {
    g: f64,
    c: f64,
}

enum Backend {
    /// Dense `G`/`C` images plus a reused assembly matrix; chosen for tiny
    /// systems where sparse bookkeeping costs more than it saves.
    Dense {
        g: Vec<f64>,
        c: Vec<f64>,
        y: CMatrix,
        lu: Option<CluDecomposition>,
    },
    /// Per-slot `G`/`C` images over a shared [`SparsityPattern`] plus the
    /// numeric LU state bound to the once-computed symbolic analysis.
    Sparse {
        g: Vec<f64>,
        c: Vec<f64>,
        matrix: CsrMatrix<Complex>,
        numeric: SparseLu<Complex>,
    },
}

/// A small-signal circuit compiled for repeated solves over a sweep.
pub struct CompiledAc {
    num_nodes: usize,
    rhs: Vec<Complex>,
    backend: Backend,
    factored_at: Option<f64>,
    factor_count: u64,
    /// Solution buffer: holds the RHS before a solve and the solution after.
    x_buf: Vec<Complex>,
    /// Residual / refinement-correction buffer.
    r_buf: Vec<Complex>,
}

impl CompiledAc {
    /// Compiles `circuit`: one element walk producing aggregated `G`/`C`
    /// stamps, the shared sparsity pattern, and (for the sparse backend) the
    /// symbolic LU analysis.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SingularSystem`] if the structure cannot support a
    /// factorisation (never the case for MNA systems, whose diagonal is
    /// structurally complete thanks to the GMIN leakage).
    pub fn compile(circuit: &AcCircuit) -> Result<Self, SimError> {
        let n = circuit.num_nodes().max(1);
        let mut stamps: Vec<(usize, usize, GcStamp)> = Vec::new();
        let mut rhs = vec![Complex::ZERO; n];

        let stamp = |entries: &mut Vec<(usize, usize, GcStamp)>,
                     r: NodeIndex,
                     c: NodeIndex,
                     g: f64,
                     cap: f64| {
            if r != GROUND && c != GROUND {
                entries.push((r, c, GcStamp { g, c: cap }));
            }
        };
        let stamp_pair = |entries: &mut Vec<(usize, usize, GcStamp)>,
                          a: NodeIndex,
                          b: NodeIndex,
                          g: f64,
                          cap: f64| {
            if a != GROUND {
                entries.push((a, a, GcStamp { g, c: cap }));
            }
            if b != GROUND {
                entries.push((b, b, GcStamp { g, c: cap }));
            }
            if a != GROUND && b != GROUND {
                entries.push((a, b, GcStamp { g: -g, c: -cap }));
                entries.push((b, a, GcStamp { g: -g, c: -cap }));
            }
        };

        for i in 0..n {
            stamps.push((i, i, GcStamp { g: GMIN, c: 0.0 }));
        }
        for e in circuit.elements() {
            match *e {
                AcElement::Conductance { a, b, g } => stamp_pair(&mut stamps, a, b, g, 0.0),
                AcElement::Capacitance { a, b, c } => stamp_pair(&mut stamps, a, b, 0.0, c),
                AcElement::Vccs {
                    out_p,
                    out_n,
                    ctrl_p,
                    ctrl_n,
                    gm,
                } => {
                    stamp(&mut stamps, out_p, ctrl_p, gm, 0.0);
                    stamp(&mut stamps, out_p, ctrl_n, -gm, 0.0);
                    stamp(&mut stamps, out_n, ctrl_p, -gm, 0.0);
                    stamp(&mut stamps, out_n, ctrl_n, gm, 0.0);
                }
                AcElement::CurrentSource { a, b, value } => {
                    if b != GROUND {
                        rhs[b] += value;
                    }
                    if a != GROUND {
                        rhs[a] -= value;
                    }
                }
            }
        }

        let backend = if n <= DENSE_FALLBACK_MAX_NODES {
            let mut g = vec![0.0; n * n];
            let mut c = vec![0.0; n * n];
            for &(r, col, s) in &stamps {
                g[r * n + col] += s.g;
                c[r * n + col] += s.c;
            }
            Backend::Dense {
                g,
                c,
                y: CMatrix::zeros(n, n),
                lu: None,
            }
        } else {
            // The stamp *positions* are a pure function of the topology, so
            // the pattern, the symbolic analysis and the per-stamp slot map
            // come from the per-topology template cache; only the value
            // scatter below runs per compile.
            let positions: Vec<(usize, usize)> = stamps.iter().map(|&(r, c, _)| (r, c)).collect();
            let template = template_for(n, &positions)?;
            let mut g = vec![0.0; template.pattern.nnz()];
            let mut c = vec![0.0; template.pattern.nnz()];
            for (&(_, _, s), &slot) in stamps.iter().zip(&template.slots) {
                g[slot] += s.g;
                c[slot] += s.c;
            }
            let numeric = SparseLu::new(template.symbolic.clone(), &template.pattern)
                .map_err(|_| SimError::SingularSystem { frequency_hz: 0.0 })?;
            Backend::Sparse {
                g,
                c,
                matrix: CsrMatrix::zeros(template.pattern.clone()),
                numeric,
            }
        };

        Ok(CompiledAc {
            num_nodes: n,
            rhs,
            backend,
            factored_at: None,
            factor_count: 0,
            x_buf: vec![Complex::ZERO; n],
            r_buf: vec![Complex::ZERO; n],
        })
    }

    /// Number of signal nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Returns `true` when the sparse backend is active (`false` means the
    /// dense small-matrix fallback was selected).
    pub fn is_sparse(&self) -> bool {
        matches!(self.backend, Backend::Sparse { .. })
    }

    /// Assembles `Y(ω) = G + jωC` over the cached slots and numerically
    /// (re)factorises it.  A repeated call at the current frequency is free.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SingularSystem`] if the factorisation fails.
    pub fn factor_at(&mut self, freq_hz: f64) -> Result<(), SimError> {
        if self.factored_at == Some(freq_hz) {
            return Ok(());
        }
        self.factored_at = None;
        let omega = 2.0 * std::f64::consts::PI * freq_hz;
        match &mut self.backend {
            Backend::Dense { g, c, y, lu } => {
                // Drop the previous factorisation first: a failed refactor
                // must not leave a stale LU that solve_loaded would serve.
                *lu = None;
                {
                    let _assemble = gcnrl_telemetry::span!("sim.assemble.ns");
                    let n = self.num_nodes;
                    for r in 0..n {
                        for col in 0..n {
                            y[(r, col)] = Complex::new(g[r * n + col], omega * c[r * n + col]);
                        }
                    }
                }
                let _factor = gcnrl_telemetry::span!("sim.factor.ns");
                *lu = Some(y.lu().map_err(|_| SimError::SingularSystem {
                    frequency_hz: freq_hz,
                })?);
                solver_stats::record_dense_factor();
            }
            Backend::Sparse {
                g,
                c,
                matrix,
                numeric,
            } => {
                {
                    let _assemble = gcnrl_telemetry::span!("sim.assemble.ns");
                    for ((v, &gv), &cv) in matrix.values_mut().iter_mut().zip(&*g).zip(&*c) {
                        *v = Complex::new(gv, omega * cv);
                    }
                }
                let _factor = gcnrl_telemetry::span!("sim.factor.ns");
                numeric
                    .refactor(matrix.values())
                    .map_err(|_| SimError::SingularSystem {
                        frequency_hz: freq_hz,
                    })?;
                solver_stats::record_sparse_refactor();
            }
        }
        self.factored_at = Some(freq_hz);
        self.factor_count += 1;
        Ok(())
    }

    /// Number of numeric factorisations this instance has performed (repeat
    /// requests at the current frequency are served without refactoring).
    pub fn factor_count(&self) -> u64 {
        self.factor_count
    }

    /// Solves the RHS currently loaded in `x_buf` in place (allocation-free
    /// on the sparse path), with one step of residual-gated iterative
    /// refinement to keep static pivoting at dense-LU accuracy.
    fn solve_loaded(&mut self) -> Result<(), SimError> {
        let _solve = gcnrl_telemetry::span!("sim.solve.ns");
        let freq = self.factored_at.unwrap_or(0.0);
        let singular = |_| SimError::SingularSystem { frequency_hz: freq };
        match &mut self.backend {
            Backend::Dense { lu, .. } => {
                solver_stats::record_dense_solve();
                let x = lu
                    .as_ref()
                    .ok_or(SimError::SingularSystem { frequency_hz: freq })?
                    .solve(&self.x_buf)
                    .map_err(singular)?;
                self.x_buf.copy_from_slice(&x);
            }
            Backend::Sparse {
                matrix, numeric, ..
            } => {
                solver_stats::record_sparse_solve();
                if numeric.growth_sq() <= BENIGN_GROWTH_SQ {
                    // The factorisation is backward stable: solve directly,
                    // no residual verification needed.
                    return numeric.solve_in_place(&mut self.x_buf).map_err(singular);
                }
                // b is needed for the residual check; stash it in r_buf.
                self.r_buf.copy_from_slice(&self.x_buf);
                numeric.solve_in_place(&mut self.x_buf).map_err(singular)?;
                // r = b - A x, written over the stashed b.  Squared-magnitude
                // comparisons keep `hypot` off the hot path; comparing
                // |r|^2 > t^2 (1 + |b|^2) is conservative (refines at least
                // as often as the |r| > t (1 + |b|) gate would).
                let mut b_sq = 0.0f64;
                let mut resid_sq = 0.0f64;
                {
                    let pattern = matrix.pattern();
                    let values = matrix.values();
                    let (b, x) = (&mut self.r_buf, &self.x_buf);
                    for (r, acc) in b.iter_mut().enumerate() {
                        b_sq = b_sq.max(acc.abs_sq());
                        for (&c, s) in pattern.row(r).iter().zip(pattern.row_slots(r)) {
                            *acc -= values[s] * x[c];
                        }
                        resid_sq = resid_sq.max(acc.abs_sq());
                    }
                }
                if resid_sq > REFINE_THRESHOLD * REFINE_THRESHOLD * (1.0 + b_sq) {
                    numeric.solve_in_place(&mut self.r_buf).map_err(singular)?;
                    for (x, c) in self.x_buf.iter_mut().zip(&self.r_buf) {
                        *x += *c;
                    }
                }
            }
        }
        Ok(())
    }

    /// Solves for all node voltages using the circuit's own sources, against
    /// the current factorisation (see [`CompiledAc::factor_at`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SingularSystem`] if no factorisation is current.
    pub fn solve_sources(&mut self) -> Result<Vec<Complex>, SimError> {
        self.x_buf.copy_from_slice(&self.rhs);
        self.solve_loaded()?;
        Ok(self.x_buf.clone())
    }

    /// Node voltages produced by a unit current injected from `a` into `b`,
    /// ignoring the circuit's own sources; reuses the current factorisation,
    /// which is what makes the noise analysis one-factor-per-frequency.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SingularSystem`] if no factorisation is current.
    pub fn solve_injection(
        &mut self,
        a: NodeIndex,
        b: NodeIndex,
    ) -> Result<Vec<Complex>, SimError> {
        self.solve_injection_loaded(a, b)?;
        Ok(self.x_buf.clone())
    }

    /// Like [`CompiledAc::solve_injection`], but returns only the voltage at
    /// `output` without cloning the solution vector (the noise hot path).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SingularSystem`] if no factorisation is current.
    pub fn injection_gain(
        &mut self,
        a: NodeIndex,
        b: NodeIndex,
        output: NodeIndex,
    ) -> Result<Complex, SimError> {
        self.solve_injection_loaded(a, b)?;
        Ok(self.x_buf[output])
    }

    fn solve_injection_loaded(&mut self, a: NodeIndex, b: NodeIndex) -> Result<(), SimError> {
        self.x_buf.fill(Complex::ZERO);
        if b != GROUND {
            self.x_buf[b] += Complex::ONE;
        }
        if a != GROUND {
            self.x_buf[a] -= Complex::ONE;
        }
        self.solve_loaded()
    }

    /// Factors at `freq_hz` and solves with the circuit's own sources.
    ///
    /// # Errors
    ///
    /// Propagates factorisation and solve failures.
    pub fn solve_at(&mut self, freq_hz: f64) -> Result<Vec<Complex>, SimError> {
        self.factor_at(freq_hz)?;
        self.solve_sources()
    }

    /// Sweeps the transfer function to `output` over `freqs`: one value-only
    /// restamp and numeric refactor per point against the shared symbolic
    /// analysis, with all solve buffers reused across points.
    ///
    /// # Errors
    ///
    /// Propagates the first failing frequency point.
    pub fn sweep_voltages(
        &mut self,
        output: NodeIndex,
        freqs: &[f64],
    ) -> Result<Vec<(f64, Complex)>, SimError> {
        let mut points = Vec::with_capacity(freqs.len());
        for &f in freqs {
            self.factor_at(f)?;
            self.x_buf.copy_from_slice(&self.rhs);
            self.solve_loaded()?;
            points.push((f, self.x_buf[output]));
        }
        Ok(points)
    }
}

impl AcCircuit {
    /// Compiles the circuit for repeated solves (see [`CompiledAc`]).
    ///
    /// # Errors
    ///
    /// Propagates [`CompiledAc::compile`] failures.
    pub fn compile(&self) -> Result<CompiledAc, SimError> {
        CompiledAc::compile(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smallsignal::AcElement;

    /// RC ladder with `n` nodes driven by a current source at node 0.
    fn ladder(n: usize) -> AcCircuit {
        let mut ckt = AcCircuit::new(n);
        for i in 0..n {
            let prev = if i == 0 { GROUND } else { i - 1 };
            ckt.add(AcElement::Conductance {
                a: prev,
                b: i,
                g: 1e-3,
            });
            ckt.add(AcElement::Capacitance {
                a: i,
                b: GROUND,
                c: 1e-12,
            });
        }
        ckt.add(AcElement::CurrentSource {
            a: GROUND,
            b: 0,
            value: Complex::ONE,
        });
        ckt
    }

    #[test]
    fn compiled_matches_dense_reference_across_sizes() {
        for n in [1usize, 2, 3, 4, 8, 17] {
            let ckt = ladder(n);
            let mut compiled = ckt.compile().unwrap();
            assert_eq!(compiled.is_sparse(), n > DENSE_FALLBACK_MAX_NODES);
            for freq in [1.0, 1e6, 1e9] {
                let reference = ckt.solve(freq).unwrap();
                let fast = compiled.solve_at(freq).unwrap();
                for (a, b) in reference.iter().zip(&fast) {
                    assert!((*a - *b).abs() < 1e-9 * (1.0 + a.abs()), "n={n} f={freq}");
                }
            }
        }
    }

    #[test]
    fn injection_matches_dense_reference() {
        let ckt = ladder(6);
        let mut compiled = ckt.compile().unwrap();
        compiled.factor_at(2e6).unwrap();
        let fast = compiled.solve_injection(GROUND, 3).unwrap();
        let reference = ckt.solve_injection(2e6, GROUND, 3).unwrap();
        for (a, b) in reference.iter().zip(&fast) {
            assert!((*a - *b).abs() < 1e-9 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn repeated_factor_at_same_frequency_is_cached() {
        let ckt = ladder(5);
        let mut compiled = ckt.compile().unwrap();
        compiled.factor_at(1e6).unwrap();
        compiled.factor_at(1e6).unwrap();
        assert_eq!(compiled.factor_count(), 1);
        compiled.factor_at(2e6).unwrap();
        assert_eq!(compiled.factor_count(), 2);
    }

    #[test]
    fn sweep_voltages_matches_pointwise_solves() {
        let ckt = ladder(7);
        let mut compiled = ckt.compile().unwrap();
        let freqs = [1.0, 1e3, 1e6, 1e9];
        let swept = compiled.sweep_voltages(2, &freqs).unwrap();
        for (f, v) in swept {
            let reference = ckt.solve(f).unwrap()[2];
            assert!((v - reference).abs() < 1e-9 * (1.0 + reference.abs()));
        }
    }

    #[test]
    fn repeated_compiles_of_the_same_topology_hit_the_template_cache() {
        let ckt = ladder(9);
        let _ = ckt.compile().unwrap(); // first compile builds (or finds) the template
        let before = solver_stats::snapshot();
        let compiled = ckt.compile().unwrap();
        let after = solver_stats::snapshot();
        assert!(compiled.is_sparse());
        assert!(
            after.template_hits > before.template_hits,
            "second compile of an identical topology must be a template hit"
        );
    }

    #[test]
    fn template_reuse_across_sizings_matches_the_dense_reference() {
        // Same topology, different element values: the cached template is
        // shared while the stamped values differ, and both agree with the
        // dense reference.
        let build = |g: f64, c: f64| {
            let mut ckt = AcCircuit::new(6);
            for i in 0..6 {
                let prev = if i == 0 { GROUND } else { i - 1 };
                ckt.add(AcElement::Conductance { a: prev, b: i, g });
                ckt.add(AcElement::Capacitance { a: i, b: GROUND, c });
            }
            ckt.add(AcElement::CurrentSource {
                a: GROUND,
                b: 0,
                value: Complex::ONE,
            });
            ckt
        };
        for (g, c) in [(1e-3, 1e-12), (5e-4, 3e-13), (2e-2, 8e-12)] {
            let ckt = build(g, c);
            let mut compiled = ckt.compile().unwrap();
            for f in [1e2, 1e6, 1e9] {
                let fast = compiled.solve_at(f).unwrap();
                let reference = ckt.solve(f).unwrap();
                for (a, b) in reference.iter().zip(&fast) {
                    assert!(
                        (*a - *b).abs() < 1e-9 * (1.0 + a.abs()),
                        "g={g} c={c} f={f}"
                    );
                }
            }
        }
    }

    #[test]
    fn vccs_circuit_compiles_and_agrees() {
        // Common-source stage with enough nodes to hit the sparse backend.
        let mut ckt = AcCircuit::new(5);
        ckt.drive_voltage(0, 1.0);
        ckt.add(AcElement::Vccs {
            out_p: 1,
            out_n: GROUND,
            ctrl_p: 0,
            ctrl_n: GROUND,
            gm: 1e-3,
        });
        for i in 1..5 {
            ckt.add(AcElement::Conductance {
                a: i - 1,
                b: i,
                g: 1e-4,
            });
            ckt.add(AcElement::Capacitance {
                a: i,
                b: GROUND,
                c: 1e-13,
            });
        }
        let mut compiled = ckt.compile().unwrap();
        assert!(compiled.is_sparse());
        for f in [10.0, 1e7] {
            let fast = compiled.solve_at(f).unwrap();
            let reference = ckt.solve(f).unwrap();
            for (a, b) in reference.iter().zip(&fast) {
                assert!((*a - *b).abs() < 1e-9 * (1.0 + a.abs()));
            }
        }
    }
}
