//! Distributed trace context, explicit span handles and the flight recorder.
//!
//! The [`span!`](crate::span) guards instrument *one process*. This module
//! adds the causal glue between processes: a [`TraceContext`] (trace id +
//! span id) that rides the serve wire so a server-side span can parent under
//! the client span that caused it, an explicit [`SpanHandle`] for the
//! request path (the client's per-batch RPC span, the sharded fan-out root,
//! the server's per-request segment), and an in-process ring-buffer **flight
//! recorder** keeping the last N completed request trees for `/traces` and
//! the `GCNRL_SLOW_MS` slow-request log.
//!
//! # Determinism
//!
//! Ids are derived from counters, never from wall clocks or RNGs:
//!
//! * a **trace id** hashes the owning session name and a per-backend request
//!   counter (FNV-1a), so re-running a deterministic workload re-produces
//!   the same trace ids;
//! * a **span id** hashes `(trace id, parent id, span name, process-wide
//!   sequence)` — unique within a trace across cooperating processes (the
//!   parent chain differs per process) without any global coordination.
//!
//! Recording only touches a mutex-guarded ring buffer and atomics — results
//! stay bit-identical with tracing (and the recorder) on or off.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Environment knob: capacity (completed request trees) of the in-process
/// flight recorder ring buffer. Unset/empty keeps the default of 64.
pub const FLIGHT_RECORDER_ENV_VAR: &str = "GCNRL_FLIGHT_RECORDER";

/// Environment knob: slow-request threshold in milliseconds. When set, any
/// finalized request segment lasting at least this long dumps its full span
/// tree to stderr (and bumps the `trace.slow_requests` counter).
pub const SLOW_MS_ENV_VAR: &str = "GCNRL_SLOW_MS";

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv1a_bytes(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

fn fnv1a_u64(hash: u64, value: u64) -> u64 {
    fnv1a_bytes(hash, &value.to_le_bytes())
}

/// The causal identity one request carries across the wire: which trace it
/// belongs to and which span is its parent on the sending side. Small and
/// `Copy`, serialised as a plain JSON object on v5 `EvalBatch`/`CacheQuery`
/// frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceContext {
    /// Identity of the whole request tree (shared by every span of it, in
    /// every process it touches).
    pub trace_id: u64,
    /// Span id of the sender-side span that caused this work — the parent
    /// the receiver's spans link under.
    pub span_id: u64,
}

thread_local! {
    /// The ambient context stack of this thread: `SpanHandle::enter` and
    /// traced `span!` guards push, their drops pop. `TraceContext::current`
    /// reads the top.
    static CONTEXT: RefCell<Vec<TraceContext>> = const { RefCell::new(Vec::new()) };
}

impl TraceContext {
    /// The innermost active context on this thread, if any — what a child
    /// span parents under and what outgoing requests attach to their frames.
    pub fn current() -> Option<TraceContext> {
        CONTEXT.with(|stack| stack.borrow().last().copied())
    }
}

pub(crate) fn push_context(ctx: TraceContext) {
    CONTEXT.with(|stack| stack.borrow_mut().push(ctx));
}

pub(crate) fn pop_context() {
    CONTEXT.with(|stack| {
        stack.borrow_mut().pop();
    });
}

/// Derives a deterministic trace id from a session name and that session's
/// request counter (FNV-1a; never zero, so zero can mean "absent" in
/// renderers that want a sentinel).
pub fn trace_id_for(session: &str, request: u64) -> u64 {
    let hash = fnv1a_u64(fnv1a_bytes(FNV_OFFSET, session.as_bytes()), request);
    if hash == 0 {
        FNV_OFFSET
    } else {
        hash
    }
}

/// Process-wide span sequence — the only per-process state behind span ids.
fn next_span_seq() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    SEQ.fetch_add(1, Ordering::Relaxed) + 1
}

/// Derives the id of a child span opened under `parent` (used by the
/// context-aware [`SpanGuard`](crate::SpanGuard) drop path).
pub(crate) fn child_span_id(parent: TraceContext, name: &str) -> u64 {
    derive_span_id(parent.trace_id, parent.span_id, name)
}

fn derive_span_id(trace_id: u64, parent: u64, name: &str) -> u64 {
    let mut hash = fnv1a_u64(FNV_OFFSET, trace_id);
    hash = fnv1a_u64(hash, parent);
    hash = fnv1a_bytes(hash, name.as_bytes());
    hash = fnv1a_u64(hash, next_span_seq());
    if hash == 0 {
        FNV_OFFSET
    } else {
        hash
    }
}

/// One completed span as the flight recorder stores it (and as `/traces`
/// serialises it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Span name (the histogram name of the layer).
    pub name: String,
    /// Trace the span belongs to.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id; `None` for the request root.
    pub parent_id: Option<u64>,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Wall duration in nanoseconds.
    pub dur_ns: u64,
}

/// One completed request tree held by the flight recorder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceTree {
    /// Identity of the tree.
    pub trace_id: u64,
    /// Every recorded span of the trace (this process's view), in completion
    /// order. Children complete before their parents, so a parent follows
    /// its children.
    pub spans: Vec<SpanRecord>,
}

impl TraceTree {
    /// Renders the tree as an indented text timeline (parents first), used
    /// by the slow-request log. Spans whose parent was not recorded in this
    /// process (a remote parent) render as roots.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace {:016x}: {} spans",
            self.trace_id,
            self.spans.len()
        );
        let known: Vec<u64> = self.spans.iter().map(|s| s.span_id).collect();
        let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
        let mut roots: Vec<&SpanRecord> = Vec::new();
        for span in &self.spans {
            match span.parent_id {
                Some(parent) if known.contains(&parent) => {
                    children.entry(parent).or_default().push(span);
                }
                _ => roots.push(span),
            }
        }
        fn emit(
            out: &mut String,
            span: &SpanRecord,
            children: &BTreeMap<u64, Vec<&SpanRecord>>,
            depth: usize,
        ) {
            use std::fmt::Write as _;
            let _ = writeln!(
                out,
                "{:indent$}{} {:.3}ms (span {:016x})",
                "",
                span.name,
                span.dur_ns as f64 / 1e6,
                span.span_id,
                indent = depth * 2,
            );
            if let Some(kids) = children.get(&span.span_id) {
                let mut kids = kids.clone();
                kids.sort_by_key(|s| s.start_ns);
                for kid in kids {
                    emit(out, kid, children, depth + 1);
                }
            }
        }
        roots.sort_by_key(|s| s.start_ns);
        for root in roots {
            emit(&mut out, root, &children, 1);
        }
        out
    }
}

/// The flight recorder: spans of in-flight traces accumulate in `active`;
/// when a trace's local segment finalizes, they move into the bounded ring.
struct Recorder {
    active: BTreeMap<u64, Vec<SpanRecord>>,
    ring: VecDeque<TraceTree>,
    capacity: usize,
    slow_ns: Option<u64>,
}

/// Cap on distinct in-flight traces — a backstop against contexts whose
/// finalizing segment never completes (e.g. a peer that died mid-request).
const MAX_ACTIVE_TRACES: usize = 256;

fn recorder() -> &'static Mutex<Recorder> {
    static RECORDER: OnceLock<Mutex<Recorder>> = OnceLock::new();
    RECORDER.get_or_init(|| {
        Mutex::new(Recorder {
            active: BTreeMap::new(),
            ring: VecDeque::new(),
            capacity: crate::env_usize(FLIGHT_RECORDER_ENV_VAR)
                .unwrap_or(64)
                .max(1),
            slow_ns: crate::env_usize(SLOW_MS_ENV_VAR).map(|ms| ms as u64 * 1_000_000),
        })
    })
}

fn record_into_recorder(record: SpanRecord, finalize: bool) {
    let mut rec = recorder().lock().expect("flight recorder lock");
    let trace_id = record.trace_id;
    let slow = finalize && rec.slow_ns.is_some_and(|ns| record.dur_ns >= ns);
    if !finalize {
        if !rec.active.contains_key(&trace_id) && rec.active.len() >= MAX_ACTIVE_TRACES {
            rec.active.pop_first();
        }
        rec.active.entry(trace_id).or_default().push(record);
        return;
    }
    // Finalize: this process's segment of the trace is complete — move the
    // accumulated spans into the ring, merging with an existing entry for
    // the same trace (several segments of one trace can complete in one
    // process: the in-process sharded tests run client and servers
    // together, and a fan-out touches several shards).
    let mut spans = rec.active.remove(&trace_id).unwrap_or_default();
    spans.push(record);
    if let Some(existing) = rec.ring.iter_mut().find(|t| t.trace_id == trace_id) {
        existing.spans.extend(spans);
    } else {
        while rec.ring.len() >= rec.capacity {
            rec.ring.pop_front();
        }
        rec.ring.push_back(TraceTree { trace_id, spans });
    }
    if slow {
        let tree = rec
            .ring
            .iter()
            .find(|t| t.trace_id == trace_id)
            .cloned()
            .expect("slow trace just recorded");
        drop(rec);
        crate::global().counter("trace.slow_requests").inc();
        eprintln!(
            "[gcnrl-telemetry] slow request ({SLOW_MS_ENV_VAR}):\n{}",
            tree.render()
        );
    }
}

/// The most recent completed request trees, oldest first (bounded by
/// `GCNRL_FLIGHT_RECORDER`, default 64). Always recording — independent of
/// `GCNRL_TRACE` — so `/traces` works on any live process.
pub fn recent_traces() -> Vec<TraceTree> {
    let rec = recorder().lock().expect("flight recorder lock");
    rec.ring.iter().cloned().collect()
}

/// [`recent_traces`] rendered as a JSON array — the `/traces` endpoint body.
pub fn recent_traces_json() -> String {
    serde_json::to_string(&recent_traces()).unwrap_or_else(|_| "[]".to_owned())
}

/// Records one completed span into the flight recorder (and, when tracing
/// is enabled, the JSONL sink). Shared by [`SpanHandle::finish`] and the
/// context-aware [`SpanGuard`](crate::SpanGuard) drop path.
#[allow(clippy::too_many_arguments)]
pub(crate) fn record_span(
    name: &str,
    trace_id: u64,
    span_id: u64,
    parent_id: Option<u64>,
    start_ns: u64,
    dur_ns: u64,
    fields: &str,
    finalize: bool,
) {
    if crate::trace_enabled() {
        crate::trace::write_event_with_ids(
            name,
            start_ns,
            dur_ns,
            fields,
            Some((trace_id, span_id, parent_id)),
        );
    }
    record_into_recorder(
        SpanRecord {
            name: name.to_owned(),
            trace_id,
            span_id,
            parent_id,
            start_ns,
            dur_ns,
        },
        finalize,
    );
}

/// An explicit span on the distributed request path. Unlike the scoped
/// [`span!`](crate::span) guard, a handle can outlive its creating scope
/// (it is `Send` — the server carries one through its task queue while a
/// request is in flight) and is finished exactly once, by [`finish`] or
/// drop.
///
/// Three constructors encode where the parent lives:
///
/// * [`SpanHandle::root`] — a new trace (the client edge); finalizes its
///   trace on finish.
/// * [`SpanHandle::child_of`] — the parent is a live span *in this
///   process*; the parent's own finish finalizes the trace.
/// * [`SpanHandle::remote`] — the parent is in *another process* (its
///   context arrived over the wire); finish finalizes this process's
///   segment of the trace.
///
/// [`finish`]: SpanHandle::finish
#[derive(Debug)]
pub struct SpanHandle {
    name: &'static str,
    trace_id: u64,
    span_id: u64,
    parent_id: Option<u64>,
    start: Instant,
    start_ns: u64,
    finalize: bool,
    finished: bool,
}

impl SpanHandle {
    fn open(name: &'static str, trace_id: u64, parent_id: Option<u64>, finalize: bool) -> Self {
        SpanHandle {
            name,
            trace_id,
            span_id: derive_span_id(trace_id, parent_id.unwrap_or(0), name),
            parent_id,
            start: Instant::now(),
            start_ns: crate::trace::now_ns(),
            finalize,
            finished: false,
        }
    }

    /// Opens the root span of a new trace (see [`trace_id_for`] for the id
    /// derivation).
    pub fn root(name: &'static str, trace_id: u64) -> Self {
        SpanHandle::open(name, trace_id, None, true)
    }

    /// Opens a span under a parent living in this process.
    pub fn child_of(name: &'static str, parent: TraceContext) -> Self {
        SpanHandle::open(name, parent.trace_id, Some(parent.span_id), false)
    }

    /// Opens a span whose parent lives in another process — the receiving
    /// edge of a wire [`TraceContext`]. Finishing it finalizes this
    /// process's segment of the trace into the flight recorder.
    pub fn remote(name: &'static str, parent: TraceContext) -> Self {
        SpanHandle::open(name, parent.trace_id, Some(parent.span_id), true)
    }

    /// The context child spans (local or remote) parent under.
    pub fn context(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: self.span_id,
        }
    }

    /// Pushes this span onto the thread's ambient context stack, so
    /// [`span!`](crate::span) guards and outgoing requests in the enclosed
    /// scope parent under it. The returned guard pops on drop.
    pub fn enter(&self) -> ContextGuard {
        push_context(self.context());
        ContextGuard { _priv: () }
    }

    /// Completes the span: records its duration into the global histogram
    /// of the same name, appends a JSONL event when tracing is active, and
    /// files it with the flight recorder (finalizing the trace segment for
    /// root/remote spans). Idempotent; also runs on drop.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let duration = self.start.elapsed();
        crate::global()
            .histogram(self.name)
            .record_duration(duration);
        record_span(
            self.name,
            self.trace_id,
            self.span_id,
            self.parent_id,
            self.start_ns,
            duration.as_nanos().min(u64::MAX as u128) as u64,
            "",
            self.finalize,
        );
    }
}

impl Drop for SpanHandle {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Pops one ambient-context entry on drop (returned by
/// [`SpanHandle::enter`]). Not `Send`: the pop must happen on the thread
/// that pushed.
pub struct ContextGuard {
    _priv: (),
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        pop_context();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_deterministic_and_nonzero() {
        assert_eq!(trace_id_for("s", 1), trace_id_for("s", 1));
        assert_ne!(trace_id_for("s", 1), trace_id_for("s", 2));
        assert_ne!(trace_id_for("a", 1), trace_id_for("b", 1));
        assert_ne!(trace_id_for("s", 1), 0);
    }

    #[test]
    fn span_handles_link_parent_to_child_across_enter() {
        let trace_id = trace_id_for("link-test", 1);
        let reports_before = recent_traces()
            .iter()
            .filter(|t| t.trace_id == trace_id)
            .count();
        assert_eq!(reports_before, 0);
        let mut root = SpanHandle::root("test.ctx.root.ns", trace_id);
        let root_ctx = root.context();
        {
            let _entered = root.enter();
            assert_eq!(TraceContext::current(), Some(root_ctx));
            let child = SpanHandle::child_of("test.ctx.child.ns", root_ctx);
            assert_eq!(child.context().trace_id, trace_id);
            assert_ne!(child.context().span_id, root_ctx.span_id);
        }
        assert!(TraceContext::current().is_none() || TraceContext::current() != Some(root_ctx));
        root.finish();
        let trees = recent_traces();
        let tree = trees
            .iter()
            .find(|t| t.trace_id == trace_id)
            .expect("finalized trace lands in the ring");
        assert_eq!(tree.spans.len(), 2);
        let root_span = tree
            .spans
            .iter()
            .find(|s| s.name == "test.ctx.root.ns")
            .expect("root span recorded");
        let child_span = tree
            .spans
            .iter()
            .find(|s| s.name == "test.ctx.child.ns")
            .expect("child span recorded");
        assert_eq!(root_span.parent_id, None);
        assert_eq!(child_span.parent_id, Some(root_span.span_id));
        assert!(!tree.render().is_empty());
    }

    #[test]
    fn remote_segments_merge_into_one_ring_entry() {
        let trace_id = trace_id_for("merge-test", 9);
        // A "server-side" segment finalizes first...
        let ctx = TraceContext {
            trace_id,
            span_id: 0xdead,
        };
        SpanHandle::remote("test.ctx.segment.ns", ctx).finish();
        // ...then the "client" root of the same trace.
        SpanHandle::root("test.ctx.root2.ns", trace_id).finish();
        let trees = recent_traces();
        let matching: Vec<_> = trees.iter().filter(|t| t.trace_id == trace_id).collect();
        assert_eq!(matching.len(), 1, "segments of one trace share one entry");
        assert_eq!(matching[0].spans.len(), 2);
    }

    #[test]
    fn traces_render_as_json() {
        SpanHandle::root("test.ctx.json.ns", trace_id_for("json-test", 1)).finish();
        let json = recent_traces_json();
        assert!(json.starts_with('['), "{json}");
        assert!(json.contains("\"trace_id\""), "{json}");
    }
}
