//! Strict parsing of the `GCNRL_*` configuration environment variables.
//!
//! The config readers used to fall back to their defaults when a variable was
//! set but malformed (`GCNRL_WORKERS=four` silently ran with the default
//! worker count), which turns a typo in a CI matrix or a launch script into a
//! silently wrong experiment. Every knob now goes through these helpers,
//! which distinguish *unset* (use the default) from *unparseable* (fail
//! loudly with the variable name and the offending value). They live here —
//! the bottom of the crate graph — so every layer shares one contract;
//! `gcnrl_exec` re-exports [`env_usize`] for its existing call sites.

use std::net::SocketAddr;

/// Reads `name` as a `usize`.
///
/// Returns `None` when the variable is unset or empty (the caller keeps its
/// default).
///
/// # Panics
///
/// Panics with the variable name and the rejected value when the variable is
/// set but not a non-negative integer — a misconfigured run must not proceed
/// with silently substituted defaults.
pub fn env_usize(name: &str) -> Option<usize> {
    let value = std::env::var(name).ok()?;
    if value.is_empty() {
        return None;
    }
    match value.trim().parse() {
        Ok(parsed) => Some(parsed),
        Err(_) => panic!(
            "invalid {name}={value:?}: expected a non-negative integer \
             (unset the variable to use the default)"
        ),
    }
}

/// Reads `name` as a non-empty string (`None` when unset or empty).
pub fn env_string(name: &str) -> Option<String> {
    std::env::var(name).ok().filter(|value| !value.is_empty())
}

/// Reads `name` as a socket address (`host:port`).
///
/// Returns `None` when the variable is unset or empty.
///
/// # Panics
///
/// Panics with the variable name and the rejected value when the variable is
/// set but does not parse as a socket address.
pub fn env_socket_addr(name: &str) -> Option<SocketAddr> {
    let value = env_string(name)?;
    match value.trim().parse() {
        Ok(parsed) => Some(parsed),
        Err(_) => panic!(
            "invalid {name}={value:?}: expected a socket address like \
              127.0.0.1:9187 (unset the variable to disable)"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_and_empty_fall_back_to_the_default() {
        std::env::remove_var("GCNRL_TEST_UNSET_KNOB");
        assert_eq!(env_usize("GCNRL_TEST_UNSET_KNOB"), None);
        assert_eq!(env_string("GCNRL_TEST_UNSET_KNOB"), None);
        assert_eq!(env_socket_addr("GCNRL_TEST_UNSET_KNOB"), None);
        std::env::set_var("GCNRL_TEST_EMPTY_KNOB", "");
        assert_eq!(env_usize("GCNRL_TEST_EMPTY_KNOB"), None);
        assert_eq!(env_string("GCNRL_TEST_EMPTY_KNOB"), None);
        assert_eq!(env_socket_addr("GCNRL_TEST_EMPTY_KNOB"), None);
    }

    #[test]
    fn valid_values_parse_with_surrounding_whitespace() {
        std::env::set_var("GCNRL_TEST_VALID_KNOB", " 42 ");
        assert_eq!(env_usize("GCNRL_TEST_VALID_KNOB"), Some(42));
    }

    #[test]
    fn valid_socket_addrs_parse() {
        std::env::set_var("GCNRL_TEST_ADDR_KNOB", "127.0.0.1:9187");
        assert_eq!(
            env_socket_addr("GCNRL_TEST_ADDR_KNOB"),
            Some("127.0.0.1:9187".parse().unwrap())
        );
    }

    #[test]
    #[should_panic(expected = "invalid GCNRL_TEST_BAD_KNOB=\"four\"")]
    fn malformed_values_panic_with_the_name_and_value() {
        std::env::set_var("GCNRL_TEST_BAD_KNOB", "four");
        let _ = env_usize("GCNRL_TEST_BAD_KNOB");
    }

    #[test]
    #[should_panic(expected = "invalid GCNRL_TEST_NEGATIVE_KNOB=\"-3\"")]
    fn negative_values_are_rejected() {
        std::env::set_var("GCNRL_TEST_NEGATIVE_KNOB", "-3");
        let _ = env_usize("GCNRL_TEST_NEGATIVE_KNOB");
    }

    #[test]
    #[should_panic(expected = "invalid GCNRL_TEST_BAD_ADDR=\"localhost\"")]
    fn malformed_socket_addrs_panic() {
        std::env::set_var("GCNRL_TEST_BAD_ADDR", "localhost");
        let _ = env_socket_addr("GCNRL_TEST_BAD_ADDR");
    }
}
