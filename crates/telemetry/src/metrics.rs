//! The metrics registry: named counters, gauges and fixed-bucket histograms.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Number of buckets in every [`Histogram`]: powers of two from `1` up to
/// `2^(HISTOGRAM_BUCKETS - 2)`, plus a final overflow bucket. The fixed,
/// log-spaced layout is what makes snapshots deterministic and mergeable
/// across processes — two histograms with the same name always share bucket
/// boundaries.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// Upper bound (exclusive) of bucket `index`; the last bucket is unbounded.
fn bucket_bound(index: usize) -> Option<u64> {
    if index + 1 < HISTOGRAM_BUCKETS {
        Some(1u64 << index)
    } else {
        None
    }
}

/// The bucket a raw value lands in: `value < 2^index`, capped at the
/// overflow bucket.
fn bucket_index(value: u64) -> usize {
    let bits = (u64::BITS - value.leading_zeros()) as usize;
    bits.min(HISTOGRAM_BUCKETS - 1)
}

/// A monotonically increasing counter (relaxed atomic; lock-free).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `delta` to the counter.
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins signed gauge (relaxed atomic; lock-free).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increments the gauge by one (e.g. a connection opened).
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrements the gauge by one (e.g. a connection closed).
    pub fn dec(&self) {
        self.add(-1);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A fixed-bucket, log-spaced histogram over `u64` values. Duration
/// histograms (the `*.ns` metric names) record nanoseconds; occupancy
/// histograms record plain counts. Recording is three relaxed atomic adds —
/// no lock, no allocation.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one raw value.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (the convention for `*.ns`
    /// histograms).
    pub fn record_duration(&self, duration: Duration) {
        self.record(duration.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }
}

/// A serializable point-in-time copy of one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts ([`HISTOGRAM_BUCKETS`] entries; bucket
    /// `i` holds values `< 2^i`, the last bucket is unbounded).
    pub buckets: Vec<u64>,
    /// Sum of every recorded value.
    pub sum: u64,
    /// Number of recorded values.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bucket bound covering quantile `q` in `[0, 1]` — e.g.
    /// `quantile(0.99)` is the smallest bucket boundary below which at least
    /// 99% of observations fall. Returns `u64::MAX` for the overflow bucket
    /// and 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank.max(1) {
                return bucket_bound(i).unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }

    /// Accumulates `other` into `self` (bucket-wise; the shared fixed bucket
    /// layout is what makes this exact).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.count += other.count;
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A registry of named metrics. Registration takes a lock (once per call
/// site — handles are cached); recording through the returned handles is
/// lock-free. Most code uses the process-wide [`global`] registry via the
/// [`span!`](crate::span) macro.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let metrics = self.metrics.lock().expect("metrics registry lock");
        f.debug_struct("MetricsRegistry")
            .field("metrics", &metrics.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.register(name, || Metric::Counter(Arc::new(Counter::default()))) {
            Metric::Counter(counter) => counter,
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.register(name, || Metric::Gauge(Arc::new(Gauge::default()))) {
            Metric::Gauge(gauge) => gauge,
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// The histogram named `name`, created on first use. Duration histograms
    /// are named `*.ns` by convention and record nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.register(name, || Metric::Histogram(Arc::new(Histogram::default()))) {
            Metric::Histogram(histogram) => histogram,
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    fn register(&self, name: &str, create: impl FnOnce() -> Metric) -> Metric {
        let mut metrics = self.metrics.lock().expect("metrics registry lock");
        let metric = metrics.entry(name.to_owned()).or_insert_with(create);
        match metric {
            Metric::Counter(c) => Metric::Counter(Arc::clone(c)),
            Metric::Gauge(g) => Metric::Gauge(Arc::clone(g)),
            Metric::Histogram(h) => Metric::Histogram(Arc::clone(h)),
        }
    }

    /// A deterministic (name-ordered) point-in-time copy of every metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let metrics = self.metrics.lock().expect("metrics registry lock");
        let mut snapshot = RegistrySnapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => snapshot.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snapshot.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => snapshot.histograms.push((name.clone(), h.snapshot())),
            }
        }
        snapshot
    }

    /// Renders every metric in Prometheus text exposition format (0.0.4).
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }

    /// Zeroes every metric (bench-harness bookkeeping between phases; the
    /// handles stay registered and valid).
    pub fn reset(&self) {
        let metrics = self.metrics.lock().expect("metrics registry lock");
        for metric in metrics.values() {
            match metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }
}

/// A serializable, mergeable, deterministically ordered copy of a
/// [`MetricsRegistry`] — what rides the wire `Metrics` frame and lands in
/// the `BENCH_*.json` reports.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// `(name, count)` pairs, name-ordered.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, name-ordered.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` pairs, name-ordered.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl RegistrySnapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Accumulates `other` into `self`: counters and histograms add, gauges
    /// keep the other side's value (last write wins, matching live gauge
    /// semantics). Metrics only present in `other` are appended; the result
    /// is re-sorted by name so merged snapshots stay deterministic.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (name, value) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine += value,
                None => self.counters.push((name.clone(), *value)),
            }
        }
        for (name, value) in &other.gauges {
            match self.gauges.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine = *value,
                None => self.gauges.push((name.clone(), *value)),
            }
        }
        for (name, theirs) in &other.histograms {
            match self.histograms.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => mine.merge(theirs),
                None => self.histograms.push((name.clone(), theirs.clone())),
            }
        }
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Renders the snapshot in Prometheus text exposition format (0.0.4).
    /// Metric names have `.`/`-` mapped to `_`; a `{label="..."}` suffix
    /// built by [`labeled`] passes through untouched, and every member of a
    /// labeled family shares one `# HELP` + `# TYPE` header pair. Histogram
    /// `le` labels are raw bucket bounds (nanoseconds for `*.ns`
    /// histograms) and are merged into the family's own labels.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut last_family: Option<String> = None;
        let mut type_header = |out: &mut String, family: &str, kind: &str| {
            if last_family.as_deref() != Some(family) {
                let _ = writeln!(out, "# HELP {family} {}", help_for(family));
                let _ = writeln!(out, "# TYPE {family} {kind}");
                last_family = Some(family.to_owned());
            }
        };
        for (name, value) in &self.counters {
            let (family, labels) = prometheus_parts(name);
            type_header(&mut out, &family, "counter");
            let _ = writeln!(out, "{family}{} {value}", render_labels(&labels));
        }
        for (name, value) in &self.gauges {
            let (family, labels) = prometheus_parts(name);
            type_header(&mut out, &family, "gauge");
            let _ = writeln!(out, "{family}{} {value}", render_labels(&labels));
        }
        for (name, hist) in &self.histograms {
            let (family, labels) = prometheus_parts(name);
            type_header(&mut out, &family, "histogram");
            let mut cumulative = 0u64;
            for (i, &n) in hist.buckets.iter().enumerate() {
                cumulative += n;
                let le = match bucket_bound(i) {
                    Some(bound) => bound.to_string(),
                    None => "+Inf".to_owned(),
                };
                let mut with_le = labels.clone();
                with_le.push(("le".to_owned(), le));
                let _ = writeln!(
                    out,
                    "{family}_bucket{} {cumulative}",
                    render_labels(&with_le)
                );
            }
            let suffix = render_labels(&labels);
            let _ = writeln!(out, "{family}_sum{suffix} {}", hist.sum);
            let _ = writeln!(out, "{family}_count{suffix} {}", hist.count);
        }
        out
    }
}

/// Builds the registry name of one member of a labeled metric family:
/// `labeled("serve.connections", &[("shard", "0")])` →
/// `serve.connections{shard="0"}`. Members of a family are ordinary,
/// independently registered metrics — the label block is part of the name —
/// so snapshots stay name-ordered, deterministic and mergeable with no new
/// machinery; [`RegistrySnapshot::render_prometheus`] re-parses the block
/// into proper `{label="..."}` exposition syntax. Pass labels in a fixed
/// order at every call site: the name is the identity.
pub fn labeled(family: &str, labels: &[(&str, &str)]) -> String {
    use std::fmt::Write as _;
    let mut name = String::from(family);
    name.push('{');
    for (i, (key, value)) in labels.iter().enumerate() {
        if i > 0 {
            name.push(',');
        }
        let _ = write!(name, "{key}=\"{}\"", escape_label_value(value));
    }
    name.push('}');
    name
}

/// Escapes a label value for both the registry-name label block and the
/// Prometheus exposition: backslash, double quote and newline become
/// `\\`, `\"` and `\n` (the exposition format forbids raw newlines inside
/// label values).
fn escape_label_value(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// One-line `# HELP` text for a sanitised Prometheus family. Families the
/// workspace records today get a real description; anything else gets a
/// generic line derived from its naming convention so the exposition is
/// always well-formed.
fn help_for(family: &str) -> &'static str {
    match family {
        "serve_connections" => "Client connections accepted by the serve tier.",
        "serve_requests" => "EvalBatch requests processed by the serve tier.",
        "serve_pipeline_depth" => "In-flight pipelined requests per connection.",
        "serve_handshake_ns" => "Serve handshake latency in nanoseconds.",
        "serve_request_ns" => "Server-side request latency in nanoseconds.",
        "serve_rpc_ns" => "Client-observed serve RPC latency in nanoseconds.",
        "serve_peer_queries" => "Peer cache queries issued to owner shards.",
        "serve_peer_fills" => "Cache entries pulled from peer shards.",
        "serve_peer_pull_ns" => "Peer cache pull latency in nanoseconds.",
        "serve_cache_query_ns" => "Owner-side peer cache-query latency in nanoseconds.",
        "serve_shard_requests" => "Sub-batches routed to a shard by the sharded backend.",
        "serve_shard_failovers" => "Shard failovers taken by the sharded backend.",
        "sharded_evaluate_ns" => "End-to-end sharded evaluate_batch latency in nanoseconds.",
        "exec_batch_ns" => "Engine batch execution latency in nanoseconds.",
        "trace_slow_requests" => "Request trees slower than GCNRL_SLOW_MS.",
        _ => {
            if family.ends_with("_ns") {
                "Latency histogram in nanoseconds."
            } else {
                "Workspace metric (see crate docs for the naming scheme)."
            }
        }
    }
}

/// Splits a registry name into its sanitised Prometheus family and parsed
/// `(label, value)` pairs (empty when the name carries no label block).
fn prometheus_parts(name: &str) -> (String, Vec<(String, String)>) {
    let (base, block) = match name.split_once('{') {
        Some((base, rest)) => (base, rest.strip_suffix('}').unwrap_or(rest)),
        None => (name, ""),
    };
    let family = base.replace(['.', '-'], "_");
    let mut labels = Vec::new();
    let mut rest = block;
    while let Some((key, tail)) = rest.split_once("=\"") {
        // Values are escaped by `labeled`; scan to the closing unescaped quote.
        let mut value = String::new();
        let mut chars = tail.char_indices();
        let mut end = tail.len();
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => {
                    if let Some((_, escaped)) = chars.next() {
                        value.push(if escaped == 'n' { '\n' } else { escaped });
                    }
                }
                '"' => {
                    end = i + 1;
                    break;
                }
                other => value.push(other),
            }
        }
        labels.push((key.trim_start_matches(',').replace(['.', '-'], "_"), value));
        rest = &tail[end.min(tail.len())..];
    }
    (family, labels)
}

/// Renders parsed labels back into `{key="value"}` exposition syntax
/// (empty string for an unlabeled metric).
fn render_labels(labels: &[(String, String)]) -> String {
    use std::fmt::Write as _;
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (key, value)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{key}=\"{}\"", escape_label_value(value));
    }
    out.push('}');
    out
}

/// The process-wide registry every layer of the stack records into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_log_spaced_buckets() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Bound(i) is exclusive: every value in bucket i is < bound(i).
        for value in [0u64, 1, 7, 1000, 123_456_789] {
            let i = bucket_index(value);
            if let Some(bound) = bucket_bound(i) {
                assert!(value < bound, "{value} escapes bucket {i}");
            }
            if i > 0 {
                assert!(value >= bucket_bound(i - 1).unwrap());
            }
        }
    }

    #[test]
    fn histogram_snapshot_counts_sum_and_quantiles() {
        let hist = Histogram::default();
        for value in [10u64, 100, 100, 1000, 100_000] {
            hist.record(value);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 101_210);
        assert!((snap.mean() - 20_242.0).abs() < 1e-9);
        // All five values fall below 2^17 = 131072.
        assert_eq!(snap.quantile(1.0), 1 << 17);
        // The median observation (100) lands in the bucket bounded by 128.
        assert_eq!(snap.quantile(0.5), 128);
        assert_eq!(HistogramSnapshot::default().quantile(0.99), 0);
    }

    #[test]
    fn histogram_merge_is_exact_bucketwise_addition() {
        let a = Histogram::default();
        let b = Histogram::default();
        let both = Histogram::default();
        for value in [5u64, 50, 500] {
            a.record(value);
            both.record(value);
        }
        for value in [7u64, 70, 700, 7000] {
            b.record(value);
            both.record(value);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
    }

    #[test]
    fn registry_snapshot_is_name_ordered_and_mergeable() {
        let registry = MetricsRegistry::new();
        registry.counter("zeta.events").add(3);
        registry.counter("alpha.events").add(1);
        registry.gauge("queue.depth").set(-2);
        registry.histogram("lat.ns").record(1000);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counters,
            vec![
                ("alpha.events".to_owned(), 1),
                ("zeta.events".to_owned(), 3)
            ]
        );
        assert_eq!(snap.gauge("queue.depth"), Some(-2));
        assert_eq!(snap.histogram("lat.ns").unwrap().count, 1);
        assert_eq!(snap.histogram("missing"), None);

        let other = MetricsRegistry::new();
        other.counter("alpha.events").add(10);
        other.counter("beta.events").add(5);
        other.gauge("queue.depth").set(9);
        other.histogram("lat.ns").record(2000);
        let mut merged = snap.clone();
        merged.merge(&other.snapshot());
        assert_eq!(merged.counter("alpha.events"), Some(11));
        assert_eq!(merged.counter("beta.events"), Some(5));
        assert_eq!(merged.gauge("queue.depth"), Some(9));
        assert_eq!(merged.histogram("lat.ns").unwrap().count, 2);
        let names: Vec<&String> = merged.counters.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["alpha.events", "beta.events", "zeta.events"]);
    }

    #[test]
    fn snapshots_serialize_and_round_trip() {
        let registry = MetricsRegistry::new();
        registry.counter("c").add(7);
        registry.gauge("g").set(-3);
        registry.histogram("h.ns").record(42);
        let snap = registry.snapshot();
        let json = serde_json::to_string(&snap).expect("serialize snapshot");
        let back: RegistrySnapshot = serde_json::from_str(&json).expect("deserialize snapshot");
        assert_eq!(back, snap);
    }

    #[test]
    fn prometheus_rendering_has_cumulative_buckets_and_sane_names() {
        let registry = MetricsRegistry::new();
        registry.counter("serve.connections").add(2);
        registry.gauge("service.queue-depth").set(4);
        let hist = registry.histogram("exec.batch.ns");
        hist.record(3); // bucket le=4
        hist.record(100); // bucket le=128
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE serve_connections counter"));
        assert!(text.contains("serve_connections 2"));
        assert!(text.contains("service_queue_depth 4"));
        assert!(text.contains("# TYPE exec_batch_ns histogram"));
        // Buckets are cumulative: the le=4 line holds 1, every bound at or
        // beyond 128 holds both observations, and +Inf closes at the count.
        assert!(text.contains("exec_batch_ns_bucket{le=\"4\"} 1"));
        assert!(text.contains("exec_batch_ns_bucket{le=\"128\"} 2"));
        assert!(text.contains("exec_batch_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("exec_batch_ns_sum 103"));
        assert!(text.contains("exec_batch_ns_count 2"));
    }

    #[test]
    fn labeled_families_render_with_label_syntax_and_one_type_header() {
        assert_eq!(
            labeled("serve.connections", &[("shard", "0")]),
            "serve.connections{shard=\"0\"}"
        );
        let registry = MetricsRegistry::new();
        registry
            .gauge(&labeled("serve.connections", &[("shard", "a:1")]))
            .set(3);
        registry
            .gauge(&labeled("serve.connections", &[("shard", "b:2")]))
            .set(5);
        let hist = registry.histogram(&labeled(
            "serve.pipeline-depth",
            &[("shard", "a:1"), ("session", "t0")],
        ));
        hist.record(2);
        let text = registry.render_prometheus();
        assert!(
            text.contains("serve_connections{shard=\"a:1\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("serve_connections{shard=\"b:2\"} 5"),
            "{text}"
        );
        // One TYPE header covers the whole family.
        assert_eq!(text.matches("# TYPE serve_connections gauge").count(), 1);
        // Histogram members merge their own labels with the `le` bound and
        // carry them on _sum/_count too.
        assert!(
            text.contains("serve_pipeline_depth_bucket{shard=\"a:1\",session=\"t0\",le=\"4\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("serve_pipeline_depth_count{shard=\"a:1\",session=\"t0\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn labeled_snapshots_stay_deterministic_and_mergeable() {
        let a = MetricsRegistry::new();
        a.counter(&labeled("peer.fills", &[("shard", "1")])).add(2);
        a.counter(&labeled("peer.fills", &[("shard", "0")])).add(1);
        let b = MetricsRegistry::new();
        b.counter(&labeled("peer.fills", &[("shard", "1")])).add(10);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("peer.fills{shard=\"0\"}"), Some(1));
        assert_eq!(merged.counter("peer.fills{shard=\"1\"}"), Some(12));
        let names: Vec<&String> = merged.counters.iter().map(|(n, _)| n).collect();
        assert_eq!(
            names,
            ["peer.fills{shard=\"0\"}", "peer.fills{shard=\"1\"}"]
        );
    }

    #[test]
    fn labeled_values_escape_quotes_and_backslashes() {
        let name = labeled("m", &[("path", "a\\b\"c")]);
        let (family, labels) = prometheus_parts(&name);
        assert_eq!(family, "m");
        assert_eq!(labels, vec![("path".to_owned(), "a\\b\"c".to_owned())]);
    }

    #[test]
    fn labeled_names_are_the_identity_so_equal_labels_collide_on_purpose() {
        let registry = MetricsRegistry::new();
        // Same family + same labels → the same underlying metric: `labeled`
        // builds a deterministic name and the registry dedupes by name.
        registry
            .counter(&labeled("hits.total", &[("shard", "0")]))
            .add(1);
        registry
            .counter(&labeled("hits.total", &[("shard", "0")]))
            .add(2);
        // A raw name spelled exactly like the mangled one aliases too — the
        // label block is part of the name, not separate machinery.
        registry.counter("hits.total{shard=\"0\"}").add(4);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("hits.total{shard=\"0\"}"), Some(7));
        assert_eq!(snap.counters.len(), 1, "one member, not three: {snap:?}");
        // Label order is significant: a permuted spelling is a distinct
        // member (call sites must pass labels in a fixed order).
        registry
            .counter(&labeled("two.total", &[("a", "1"), ("b", "2")]))
            .inc();
        registry
            .counter(&labeled("two.total", &[("b", "2"), ("a", "1")]))
            .inc();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("two.total{a=\"1\",b=\"2\"}"), Some(1));
        assert_eq!(snap.counter("two.total{b=\"2\",a=\"1\"}"), Some(1));
    }

    #[test]
    fn labels_round_trip_through_merge_and_prometheus_rendering() {
        let a = MetricsRegistry::new();
        let tricky = "line1\nline2\\end\"q\"";
        a.counter(&labeled("io.errors", &[("path", tricky)])).add(3);
        let b = MetricsRegistry::new();
        b.counter(&labeled("io.errors", &[("path", tricky)])).add(4);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        // The mangled names match exactly, so the merge sums the member.
        let name = labeled("io.errors", &[("path", tricky)]);
        assert_eq!(merged.counter(&name), Some(7));
        // The parsed label value is byte-identical to the original.
        let (family, labels) = prometheus_parts(&name);
        assert_eq!(family, "io_errors");
        assert_eq!(labels, vec![("path".to_owned(), tricky.to_owned())]);
        // The rendered exposition escapes newline/backslash/quote and never
        // leaks a raw newline into a label value.
        let text = merged.render_prometheus();
        assert!(
            text.contains("io_errors{path=\"line1\\nline2\\\\end\\\"q\\\"\"} 7"),
            "{text}"
        );
        assert!(!text.contains("line1\nline2"), "raw newline leaked: {text}");
    }

    #[test]
    fn prometheus_rendering_emits_help_lines_per_family() {
        let registry = MetricsRegistry::new();
        registry
            .counter(&labeled("serve.connections", &[("shard", "0")]))
            .inc();
        registry
            .counter(&labeled("serve.connections", &[("shard", "1")]))
            .inc();
        registry.histogram("custom.solve.ns").record(5);
        registry.gauge("some.depth").set(1);
        let text = registry.render_prometheus();
        // Known families get their curated text; one HELP per family,
        // directly above the TYPE line.
        assert!(
            text.contains(
                "# HELP serve_connections Client connections accepted by the serve tier.\n\
                 # TYPE serve_connections counter"
            ),
            "{text}"
        );
        assert_eq!(text.matches("# HELP serve_connections").count(), 1);
        // Unknown families fall back by naming convention.
        assert!(
            text.contains("# HELP custom_solve_ns Latency histogram in nanoseconds."),
            "{text}"
        );
        assert!(
            text.contains("# HELP some_depth Workspace metric"),
            "{text}"
        );
    }

    #[test]
    fn kind_mismatch_panics_instead_of_aliasing() {
        let registry = MetricsRegistry::new();
        registry.counter("shared.name").inc();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            registry.histogram("shared.name")
        }));
        assert!(err.is_err(), "a counter must not alias as a histogram");
    }

    #[test]
    fn reset_zeroes_but_keeps_existing_handles_valid() {
        let registry = MetricsRegistry::new();
        let counter = registry.counter("events");
        let hist = registry.histogram("lat.ns");
        counter.add(5);
        hist.record(10);
        registry.reset();
        assert_eq!(counter.get(), 0);
        assert_eq!(registry.snapshot().histogram("lat.ns").unwrap().count, 0);
        counter.inc();
        assert_eq!(registry.snapshot().counter("events"), Some(1));
    }
}
