//! Span tracing: scoped guards and the `GCNRL_TRACE` JSONL sink.
//!
//! When `GCNRL_TRACE=<path>` is set (or a test installs a sink via
//! [`set_trace_file`]), every completed span appends one JSON line:
//!
//! ```json
//! {"name":"exec.batch.ns","start_ns":12345,"dur_ns":678,"fields":{"size":"32"}}
//! ```
//!
//! `start_ns` counts from a per-process epoch (the first span or trace-state
//! read), `dur_ns` is the span's wall duration, and `fields` holds the
//! `key = value` pairs given to [`span!`](crate::span) (values rendered as
//! strings). The file is line-buffered and flushed per event, so a crash
//! loses at most the line being written.
//!
//! The enabled/disabled decision is one relaxed atomic load; when disabled,
//! spans take no lock and allocate nothing.

use crate::Histogram;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock};
use std::time::Instant;

/// The environment variable naming the JSONL trace file.
pub const TRACE_ENV_VAR: &str = "GCNRL_TRACE";

static TRACE_ACTIVE: AtomicBool = AtomicBool::new(false);
static TRACE_INIT: Once = Once::new();

fn sink() -> &'static Mutex<Option<BufWriter<File>>> {
    static SINK: OnceLock<Mutex<Option<BufWriter<File>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process's trace epoch.
pub(crate) fn now_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Lazily applies `GCNRL_TRACE` the first time any span asks. Strict knob
/// contract: unset/empty disables tracing, an uncreatable path panics.
fn ensure_env_init() {
    TRACE_INIT.call_once(|| {
        if let Some(path) = crate::env_string(TRACE_ENV_VAR) {
            if let Err(error) = install_sink(Path::new(&path)) {
                panic!(
                    "invalid {TRACE_ENV_VAR}={path:?}: cannot open the trace file \
                     (unset the variable to disable tracing): {error}"
                );
            }
        }
    });
}

fn install_sink(path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    *sink().lock().expect("trace sink lock") = Some(BufWriter::new(file));
    TRACE_ACTIVE.store(true, Ordering::Release);
    Ok(())
}

/// Whether span tracing is currently enabled (one relaxed atomic load after
/// the first call has applied `GCNRL_TRACE`).
pub fn trace_enabled() -> bool {
    ensure_env_init();
    TRACE_ACTIVE.load(Ordering::Relaxed)
}

/// Redirects the trace sink to `path`, truncating it — the programmatic
/// override of `GCNRL_TRACE` that lets tests toggle tracing within one
/// process.
///
/// # Errors
///
/// Returns the file-creation error; the previous sink stays active.
pub fn set_trace_file(path: impl AsRef<Path>) -> std::io::Result<()> {
    ensure_env_init();
    install_sink(path.as_ref())
}

/// Disables tracing and flushes and closes the current sink, if any.
pub fn disable_trace() {
    ensure_env_init();
    TRACE_ACTIVE.store(false, Ordering::Release);
    if let Some(mut writer) = sink().lock().expect("trace sink lock").take() {
        let _ = writer.flush();
    }
}

/// Appends one event line to the active sink (no-op when tracing is off —
/// racing a [`disable_trace`] is benign, the event is simply dropped).
fn write_event(name: &str, start_ns: u64, dur_ns: u64, fields: &str) {
    write_event_with_ids(name, start_ns, dur_ns, fields, None);
}

/// Like [`write_event`], optionally appending the distributed-tracing ids
/// as extra top-level keys: `trace_id`, `span_id` and (when the parent is
/// known) `parent_id`. Events without a context keep the original schema
/// byte-for-byte; `tracecheck` accepts both (extra keys pass through).
pub(crate) fn write_event_with_ids(
    name: &str,
    start_ns: u64,
    dur_ns: u64,
    fields: &str,
    ids: Option<(u64, u64, Option<u64>)>,
) {
    let mut guard = sink().lock().expect("trace sink lock");
    if let Some(writer) = guard.as_mut() {
        let ids = match ids {
            Some((trace_id, span_id, Some(parent_id))) => {
                format!(",\"trace_id\":{trace_id},\"span_id\":{span_id},\"parent_id\":{parent_id}")
            }
            Some((trace_id, span_id, None)) => {
                format!(",\"trace_id\":{trace_id},\"span_id\":{span_id}")
            }
            None => String::new(),
        };
        let _ = writeln!(
            writer,
            "{{\"name\":{},\"start_ns\":{start_ns},\"dur_ns\":{dur_ns},\"fields\":{{{fields}}}{ids}}}",
            crate::json_string(name),
        );
        let _ = writer.flush();
    }
}

/// The guard returned by [`span!`](crate::span): on drop it records its
/// lifetime into the named histogram and, when tracing is active, appends
/// one JSONL event. Construction when tracing is disabled is two `Instant`
/// reads — no lock, no allocation.
pub struct SpanGuard {
    name: &'static str,
    hist: Arc<Histogram>,
    start: Instant,
    /// Pre-rendered `"key":"value"` members; `None` means tracing was off at
    /// span entry (fields were never rendered).
    fields: Option<String>,
    start_ns: u64,
    /// `(trace_id, span_id, parent_id)` when an ambient [`TraceContext`]
    /// was active at entry: the span joins the distributed trace as a child
    /// (its own context is pushed for the scope, popped on drop, and the
    /// completed span is filed with the flight recorder).
    ///
    /// [`TraceContext`]: crate::TraceContext
    ctx: Option<(u64, u64, u64)>,
}

impl SpanGuard {
    /// Opens a span (used by the [`span!`](crate::span) macro; prefer the
    /// macro, which caches the histogram handle per call site).
    pub fn enter(name: &'static str, hist: Arc<Histogram>, fields: Option<String>) -> Self {
        let traced = trace_enabled();
        let ctx = crate::context::TraceContext::current().map(|parent| {
            let span_id = crate::context::child_span_id(parent, name);
            crate::context::push_context(crate::context::TraceContext {
                trace_id: parent.trace_id,
                span_id,
            });
            (parent.trace_id, span_id, parent.span_id)
        });
        SpanGuard {
            name,
            hist,
            start: Instant::now(),
            fields: match fields {
                Some(fields) => Some(fields),
                None if traced => Some(String::new()),
                None => None,
            },
            start_ns: if traced || ctx.is_some() { now_ns() } else { 0 },
            ctx,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let duration = self.start.elapsed();
        self.hist.record_duration(duration);
        let dur_ns = duration.as_nanos().min(u64::MAX as u128) as u64;
        if let Some((trace_id, span_id, parent_id)) = self.ctx {
            crate::context::pop_context();
            crate::context::record_span(
                self.name,
                trace_id,
                span_id,
                Some(parent_id),
                self.start_ns,
                dur_ns,
                self.fields.as_deref().unwrap_or(""),
                false,
            );
        } else if let Some(fields) = self.fields.take() {
            write_event(self.name, self.start_ns, dur_ns, &fields);
        }
    }
}

/// Emits one trace event with explicit timing and lazily rendered fields —
/// for call sites whose field values are only known at the end of the
/// measured region (a span guard captures fields at entry). The closure
/// runs only when tracing is active.
pub fn trace_event(
    name: &str,
    start: Instant,
    duration: std::time::Duration,
    fields: impl FnOnce() -> Vec<(&'static str, String)>,
) {
    if !trace_enabled() {
        return;
    }
    let rendered = fields()
        .iter()
        .map(|(key, value)| crate::json_field(key, value))
        .collect::<Vec<_>>()
        .join(",");
    let start_ns = start
        .checked_duration_since(epoch())
        .map_or(0, |d| d.as_nanos().min(u64::MAX as u128) as u64);
    write_event(
        name,
        start_ns,
        duration.as_nanos().min(u64::MAX as u128) as u64,
        &rendered,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test owns the whole global-sink lifecycle: tests in this binary
    // run concurrently, and the sink is process-wide state.
    #[test]
    fn spans_write_schema_valid_jsonl_and_disable_stops_them() {
        let path = std::env::temp_dir().join("gcnrl_telemetry_trace_test.jsonl");
        let _ = std::fs::remove_file(&path);
        assert!(!trace_enabled(), "tracing must start disabled in tests");
        set_trace_file(&path).expect("install trace sink");
        assert!(trace_enabled());
        {
            let _span = crate::span!("test.traced.ns");
        }
        {
            let _span = crate::span!("test.traced.ns", batch = 3, kind = "unit \"quoted\"");
        }
        trace_event(
            "test.explicit.ns",
            Instant::now(),
            std::time::Duration::from_micros(5),
            || vec![("size", "7".to_owned())],
        );
        disable_trace();
        assert!(!trace_enabled());
        {
            let _span = crate::span!("test.untraced.ns");
        }
        let text = std::fs::read_to_string(&path).expect("read trace file");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "exactly the traced spans: {text}");
        for line in &lines {
            let event = serde_json::parse_value(line).expect("schema-valid JSON");
            let obj = match event {
                serde::Value::Map(entries) => entries,
                other => panic!("expected an object, got {other:?}"),
            };
            for key in ["name", "start_ns", "dur_ns", "fields"] {
                assert!(obj.iter().any(|(k, _)| k == key), "missing {key}: {line}");
            }
        }
        assert!(lines[0].contains("\"test.traced.ns\""));
        assert!(lines[1].contains("\"batch\":\"3\""));
        assert!(lines[1].contains("unit \\\"quoted\\\""));
        assert!(lines[2].contains("\"test.explicit.ns\""));
        assert!(!text.contains("test.untraced"));
        // The histograms recorded either way.
        let snap = crate::global().snapshot();
        assert_eq!(snap.histogram("test.traced.ns").unwrap().count, 2);
        assert_eq!(snap.histogram("test.untraced.ns").unwrap().count, 1);
        let _ = std::fs::remove_file(&path);
    }
}
