//! # gcnrl-telemetry — process-wide metrics, latency histograms and spans
//!
//! Every layer of the stack (solver, engine, session service, network serve
//! tier, trainers) keeps its own summary stats, but none of them answer
//! "where did the time go, per layer, under load". This crate is the shared
//! instrumentation substrate they all record into:
//!
//! * [`MetricsRegistry`] — a process-wide registry of named [`Counter`]s,
//!   [`Gauge`]s and fixed-bucket log-spaced latency [`Histogram`]s. Handles
//!   are `Arc`s over atomics: recording is lock-free and allocation-free, so
//!   instrumentation stays off the hot path. Snapshots
//!   ([`RegistrySnapshot`]) are deterministic (name-ordered), serializable
//!   and mergeable, and render to Prometheus text exposition format.
//! * [`span!`] — a scoped guard that records its lifetime into the named
//!   histogram and, when `GCNRL_TRACE=<path>` is set, appends one structured
//!   JSONL event (name, start, duration, optional `key = value` fields) to a
//!   per-process trace file for offline flame/timeline analysis. When
//!   tracing is disabled the guard takes no lock and performs no allocation.
//! * [`TraceContext`] / [`SpanHandle`] — distributed request tracing: a
//!   deterministic `(trace_id, span_id)` pair rides the serve wire so spans
//!   in different processes link into one request tree, and an in-process
//!   ring-buffer **flight recorder** keeps the last N completed trees
//!   ([`recent_traces`], the `/traces` endpoint) with a `GCNRL_SLOW_MS`
//!   slow-request log.
//! * [`env_usize`] / [`env_socket_addr`] — strict `GCNRL_*` knob parsing
//!   (unset/empty keeps the default, malformed panics), shared by every
//!   crate that reads configuration from the environment.
//!
//! Telemetry never perturbs results: recording only touches atomics and the
//! trace file, so every bit-identical determinism guarantee in the workspace
//! holds with tracing on or off.
//!
//! # Example
//!
//! ```
//! use gcnrl_telemetry::span;
//!
//! fn factor_matrix() {
//!     let _span = span!("sim.factor.ns");
//!     // ... work timed into the `sim.factor.ns` histogram ...
//! }
//! factor_matrix();
//! let snapshot = gcnrl_telemetry::global().snapshot();
//! assert_eq!(snapshot.histogram("sim.factor.ns").unwrap().count, 1);
//! ```

mod context;
mod env;
mod metrics;
mod trace;

pub use context::{
    recent_traces, recent_traces_json, trace_id_for, ContextGuard, SpanHandle, SpanRecord,
    TraceContext, TraceTree, FLIGHT_RECORDER_ENV_VAR, SLOW_MS_ENV_VAR,
};
pub use env::{env_socket_addr, env_string, env_usize};
pub use metrics::{
    global, labeled, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry,
    RegistrySnapshot, HISTOGRAM_BUCKETS,
};
pub use trace::{
    disable_trace, set_trace_file, trace_enabled, trace_event, SpanGuard, TRACE_ENV_VAR,
};

/// Times the enclosing scope into the named histogram of the global
/// registry, and emits a trace event when `GCNRL_TRACE` is active.
///
/// ```
/// use gcnrl_telemetry::span;
/// {
///     let _span = span!("exec.simulate.ns");
///     // ... timed work ...
/// }
/// let _span = span!("exec.batch.ns", size = 32, hits = 7);
/// ```
///
/// The histogram handle is resolved once per call site (a `OnceLock`
/// behind the macro), so a hot loop pays two `Instant` reads and three
/// relaxed atomic adds per span — no lock, no allocation. Field values are
/// only rendered (via `Display`) when tracing is enabled.
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static __GCNRL_SPAN_HIST: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        let hist =
            __GCNRL_SPAN_HIST.get_or_init(|| $crate::global().histogram($name));
        $crate::SpanGuard::enter($name, ::std::sync::Arc::clone(hist), ::std::option::Option::None)
    }};
    ($name:literal, $($key:ident = $value:expr),+ $(,)?) => {{
        static __GCNRL_SPAN_HIST: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        let hist =
            __GCNRL_SPAN_HIST.get_or_init(|| $crate::global().histogram($name));
        let fields = if $crate::trace_enabled() {
            let mut rendered = ::std::string::String::new();
            $(
                if !rendered.is_empty() {
                    rendered.push(',');
                }
                rendered.push_str(&$crate::json_field(stringify!($key), &$value));
            )+
            ::std::option::Option::Some(rendered)
        } else {
            ::std::option::Option::None
        };
        $crate::SpanGuard::enter($name, ::std::sync::Arc::clone(hist), fields)
    }};
}

/// Renders one `"key":"value"` JSON member for a trace event (values go
/// through `Display`, then JSON string escaping). Used by [`span!`]; not
/// part of the stable API surface.
#[doc(hidden)]
pub fn json_field(key: &str, value: &dyn std::fmt::Display) -> String {
    format!("{}:{}", json_string(key), json_string(&value.to_string()))
}

/// JSON-escapes `text` into a quoted string literal.
#[doc(hidden)]
pub fn json_string(text: &str) -> String {
    serde_json::to_string(&text.to_owned()).unwrap_or_else(|_| "\"\"".to_owned())
}
