//! Dense linear-algebra kernel used throughout the GCN-RL circuit designer.
//!
//! The crate provides exactly the pieces the rest of the workspace needs and
//! nothing more:
//!
//! * [`Matrix`] — a dense, row-major `f64` matrix with the usual algebra,
//!   used by the neural-network crate and the Gaussian-process baseline.
//! * [`Complex`] and [`CMatrix`] — complex scalars and matrices used by the
//!   AC small-signal solver (modified nodal analysis) in `gcnrl-sim`.
//! * [`LuDecomposition`] / [`CluDecomposition`] — LU factorisation with
//!   partial pivoting for real and complex systems.
//! * [`Cholesky`] — factorisation of symmetric positive-definite matrices,
//!   used by the Bayesian-optimisation baseline.
//! * [`sparse`] — CSR matrices and a sparse LU whose symbolic analysis is
//!   computed once per sparsity pattern and reused across numeric
//!   refactorisations; this is the hot path of the MNA solvers in `gcnrl-sim`.
//!
//! # Examples
//!
//! ```
//! use gcnrl_linalg::{Matrix, LuDecomposition};
//!
//! # fn main() -> Result<(), gcnrl_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let lu = LuDecomposition::new(&a)?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + 1.0 * x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

mod cholesky;
mod cmatrix;
mod complex;
mod error;
mod lu;
mod matrix;
pub mod sparse;
mod vector;

pub use cholesky::Cholesky;
pub use cmatrix::{CMatrix, CluDecomposition};
pub use complex::Complex;
pub use error::LinalgError;
pub use lu::LuDecomposition;
pub use matrix::Matrix;
pub use vector::{dot, norm2, scale, vec_add, vec_sub};
