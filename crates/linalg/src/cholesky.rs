use crate::{LinalgError, Matrix};

/// Cholesky factorisation `A = L L^T` of a symmetric positive-definite matrix.
///
/// The Gaussian-process surrogate in the Bayesian-optimisation baseline uses
/// this to solve against the kernel matrix and to compute its log-determinant.
///
/// # Examples
///
/// ```
/// use gcnrl_linalg::{Matrix, Cholesky};
///
/// # fn main() -> Result<(), gcnrl_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let chol = Cholesky::new(&a)?;
/// let x = chol.solve(&[2.0, 1.0])?;
/// // verify A x = b
/// let b = a.matvec(&x)?;
/// assert!((b[0] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor, stored densely.
    l: Matrix,
}

impl Cholesky {
    /// Factorises the symmetric positive-definite matrix `a`.
    ///
    /// Only the lower triangle of `a` is read.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidDimensions`] if `a` is not square, or
    /// [`LinalgError::NotPositiveDefinite`] if a non-positive pivot appears.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::InvalidDimensions {
                reason: "Cholesky factorisation requires a square matrix",
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { index: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor `L`.
    pub fn lower(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[i];
            for (j, yj) in y.iter().enumerate().take(i) {
                acc -= self.l[(i, j)] * yj;
            }
            y[i] = acc / self.l[(i, i)];
        }
        // L^T x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for (j, xj) in x.iter().enumerate().skip(i + 1) {
                acc -= self.l[(j, i)] * xj;
            }
            x[i] = acc / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Log-determinant of the original matrix `A`, i.e. `2 * sum(ln L_ii)`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_reconstructs_matrix() {
        let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]])
            .unwrap();
        let chol = Cholesky::new(&a).unwrap();
        let l = chol.lower();
        let back = l.matmul(&l.transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((back[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn solve_matches_direct() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x = Cholesky::new(&a).unwrap().solve(&[1.0, 2.0]).unwrap();
        let b = a.matvec(&x).unwrap();
        assert!((b[0] - 1.0).abs() < 1e-12);
        assert!((b[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_positive_definite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        assert!(Cholesky::new(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn log_det_matches_lu_det() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
        let chol = Cholesky::new(&a).unwrap();
        let det = crate::LuDecomposition::new(&a).unwrap().det();
        assert!((chol.log_det() - det.ln()).abs() < 1e-12);
    }

    #[test]
    fn solve_wrong_length_errors() {
        let a = Matrix::identity(3);
        let chol = Cholesky::new(&a).unwrap();
        assert!(chol.solve(&[1.0]).is_err());
    }
}
