//! Small free-function helpers for `Vec<f64>` arithmetic.
//!
//! These keep call sites in the optimisers readable without pulling in a full
//! vector type.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Element-wise sum `a + b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn vec_add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "vector addition requires equal lengths");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Element-wise difference `a - b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn vec_sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(
        a.len(),
        b.len(),
        "vector subtraction requires equal lengths"
    );
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Scalar multiple `s * a`.
pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|x| x * s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn add_sub_scale() {
        assert_eq!(vec_add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(vec_sub(&[1.0, 2.0], &[3.0, 4.0]), vec![-2.0, -2.0]);
        assert_eq!(scale(&[1.0, -2.0], 2.0), vec![2.0, -4.0]);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
