use crate::{LinalgError, Matrix};

/// LU factorisation with partial pivoting of a real square matrix.
///
/// Used by the DC Newton–Raphson solver in `gcnrl-sim`, where the Jacobian is
/// factorised once per Newton iteration and solved against the residual.
///
/// # Examples
///
/// ```
/// use gcnrl_linalg::{Matrix, LuDecomposition};
///
/// # fn main() -> Result<(), gcnrl_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let x = LuDecomposition::new(&a)?.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    lu: Matrix,
    perm: Vec<usize>,
    sign: f64,
}

impl LuDecomposition {
    /// Factorises `a`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidDimensions`] if `a` is not square, or
    /// [`LinalgError::Singular`] if the matrix is numerically singular.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::InvalidDimensions {
                reason: "LU factorisation requires a square matrix",
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for k in 0..n {
            let mut pivot_row = k;
            let mut pivot_mag = lu[(k, k)].abs();
            for r in (k + 1)..n {
                if lu[(r, k)].abs() > pivot_mag {
                    pivot_mag = lu[(r, k)].abs();
                    pivot_row = r;
                }
            }
            if pivot_mag < 1e-300 {
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                for c in 0..n {
                    let tmp = lu[(k, c)];
                    lu[(k, c)] = lu[(pivot_row, c)];
                    lu[(pivot_row, c)] = tmp;
                }
                perm.swap(k, pivot_row);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for r in (k + 1)..n {
                let factor = lu[(r, k)] / pivot;
                lu[(r, k)] = factor;
                for c in (k + 1)..n {
                    let sub = factor * lu[(k, c)];
                    lu[(r, c)] -= sub;
                }
            }
        }
        Ok(LuDecomposition { lu, perm, sign })
    }

    /// Dimension of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b` for `x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[self.perm[i]];
            for (j, yj) in y.iter().enumerate().take(i) {
                acc -= self.lu[(i, j)] * yj;
            }
            y[i] = acc;
        }
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for (j, xj) in x.iter().enumerate().skip(i + 1) {
                acc -= self.lu[(i, j)] * xj;
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the factorised matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Computes the inverse matrix by solving against the identity columns.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (which cannot occur for a successfully
    /// factorised matrix of matching dimension).
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        for c in 0..n {
            let mut e = vec![0.0; n];
            e[c] = 1.0;
            let col = self.solve(&e)?;
            for r in 0..n {
                inv[(r, c)] = col[r];
            }
        }
        Ok(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_2x2() {
        let a = Matrix::from_rows(&[&[3.0, 2.0], &[1.0, 4.0]]).unwrap();
        let x = LuDecomposition::new(&a)
            .unwrap()
            .solve(&[7.0, 9.0])
            .unwrap();
        // 3x + 2y = 7, x + 4y = 9 -> x = 1, y = 2
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_matching_rhs() {
        let a = Matrix::identity(3);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn determinant_matches_cofactor_expansion() {
        let a =
            Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 10.0]]).unwrap();
        let det = LuDecomposition::new(&a).unwrap().det();
        assert!((det - -3.0).abs() < 1e-10);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = LuDecomposition::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(LuDecomposition::new(&a).is_err());
    }

    #[test]
    fn pivoting_zero_diagonal() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = LuDecomposition::new(&a)
            .unwrap()
            .solve(&[2.0, 5.0])
            .unwrap();
        assert!((x[0] - 5.0).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
    }
}
