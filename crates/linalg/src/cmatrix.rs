use crate::{Complex, LinalgError};
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of [`Complex`] values.
///
/// This is the system matrix type used by the AC modified-nodal-analysis
/// solver in `gcnrl-sim`, where the admittance matrix is assembled at each
/// frequency point and solved against one or more excitation vectors.
///
/// # Examples
///
/// ```
/// use gcnrl_linalg::{CMatrix, Complex};
///
/// # fn main() -> Result<(), gcnrl_linalg::LinalgError> {
/// let mut a = CMatrix::zeros(2, 2);
/// a[(0, 0)] = Complex::new(2.0, 0.0);
/// a[(1, 1)] = Complex::new(0.0, 1.0);
/// let lu = a.lu()?;
/// let x = lu.solve(&[Complex::ONE, Complex::ONE])?;
/// assert!((x[0].re - 0.5).abs() < 1e-12);
/// assert!((x[1].im + 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl CMatrix {
    /// Creates a `rows x cols` matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        CMatrix {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Creates the `n x n` complex identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Adds `value` to the entry at `(r, c)`; the standard MNA "stamp" operation.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn stamp(&mut self, r: usize, c: usize, value: Complex) {
        self[(r, c)] += value;
    }

    /// Matrix–vector product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[Complex]) -> Result<Vec<Complex>, LinalgError> {
        if v.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "cmatvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|r| {
                let mut acc = Complex::ZERO;
                for c in 0..self.cols {
                    acc += self[(r, c)] * v[c];
                }
                acc
            })
            .collect())
    }

    /// LU-factorises the matrix with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidDimensions`] if the matrix is not square
    /// and [`LinalgError::Singular`] if a pivot is numerically zero.
    pub fn lu(&self) -> Result<CluDecomposition, LinalgError> {
        CluDecomposition::new(self)
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex;

    fn index(&self, (r, c): (usize, usize)) -> &Complex {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

/// LU factorisation with partial pivoting of a complex square matrix.
///
/// The factorisation is computed once and can then solve against many
/// right-hand sides, which is exactly the pattern the AC solver uses when it
/// needs transfer functions from several sources at the same frequency.
#[derive(Debug, Clone)]
pub struct CluDecomposition {
    lu: CMatrix,
    perm: Vec<usize>,
}

impl CluDecomposition {
    /// Factorises `a`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidDimensions`] if `a` is not square, or
    /// [`LinalgError::Singular`] if the matrix is numerically singular.
    pub fn new(a: &CMatrix) -> Result<Self, LinalgError> {
        if a.rows != a.cols {
            return Err(LinalgError::InvalidDimensions {
                reason: "LU factorisation requires a square matrix",
            });
        }
        let n = a.rows;
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();

        for k in 0..n {
            // Partial pivoting on magnitude.
            let mut pivot_row = k;
            let mut pivot_mag = lu[(k, k)].abs_sq();
            for r in (k + 1)..n {
                let mag = lu[(r, k)].abs_sq();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = r;
                }
            }
            if pivot_mag < 1e-300 {
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                for c in 0..n {
                    let tmp = lu[(k, c)];
                    lu[(k, c)] = lu[(pivot_row, c)];
                    lu[(pivot_row, c)] = tmp;
                }
                perm.swap(k, pivot_row);
            }
            let pivot = lu[(k, k)];
            for r in (k + 1)..n {
                let factor = lu[(r, k)] / pivot;
                lu[(r, k)] = factor;
                for c in (k + 1)..n {
                    let sub = factor * lu[(k, c)];
                    lu[(r, c)] -= sub;
                }
            }
        }
        Ok(CluDecomposition { lu, perm })
    }

    /// Solves `A x = b` for `x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len()` does not match the
    /// factorised matrix dimension.
    pub fn solve(&self, b: &[Complex]) -> Result<Vec<Complex>, LinalgError> {
        let n = self.lu.rows;
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "clu_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward substitution with the permuted right-hand side.
        let mut y = vec![Complex::ZERO; n];
        for i in 0..n {
            let mut acc = b[self.perm[i]];
            for (j, yj) in y.iter().enumerate().take(i) {
                acc -= self.lu[(i, j)] * *yj;
            }
            y[i] = acc;
        }
        // Back substitution.
        let mut x = vec![Complex::ZERO; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for (j, xj) in x.iter().enumerate().skip(i + 1) {
                acc -= self.lu[(i, j)] * *xj;
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    #[test]
    fn identity_solve_returns_rhs() {
        let a = CMatrix::identity(3);
        let lu = a.lu().unwrap();
        let b = vec![c(1.0, 1.0), c(2.0, -1.0), c(0.0, 3.0)];
        let x = lu.solve(&b).unwrap();
        for (xi, bi) in x.iter().zip(&b) {
            assert!((xi.re - bi.re).abs() < 1e-14);
            assert!((xi.im - bi.im).abs() < 1e-14);
        }
    }

    #[test]
    fn solve_matches_matvec_round_trip() {
        // Build a well-conditioned complex matrix and verify A * solve(A, b) == b.
        let n = 5;
        let mut a = CMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = c(
                    ((i * 3 + j) % 7) as f64 * 0.3,
                    ((i + 2 * j) % 5) as f64 * 0.2,
                );
            }
            a[(i, i)] += c(5.0, 1.0); // diagonal dominance
        }
        let b: Vec<Complex> = (0..n).map(|i| c(i as f64, -(i as f64) / 2.0)).collect();
        let x = a.lu().unwrap().solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        for (bi, ri) in b.iter().zip(&back) {
            assert!((bi.re - ri.re).abs() < 1e-10, "{bi} vs {ri}");
            assert!((bi.im - ri.im).abs() < 1e-10);
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let mut a = CMatrix::zeros(2, 2);
        a[(0, 1)] = c(1.0, 0.0);
        a[(1, 0)] = c(1.0, 0.0);
        let x = a.lu().unwrap().solve(&[c(3.0, 0.0), c(4.0, 0.0)]).unwrap();
        assert!((x[0].re - 4.0).abs() < 1e-14);
        assert!((x[1].re - 3.0).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_detected() {
        let a = CMatrix::zeros(2, 2);
        assert!(matches!(a.lu(), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn non_square_rejected() {
        let a = CMatrix::zeros(2, 3);
        assert!(matches!(a.lu(), Err(LinalgError::InvalidDimensions { .. })));
    }

    #[test]
    fn stamp_accumulates() {
        let mut a = CMatrix::zeros(2, 2);
        a.stamp(0, 0, c(1.0, 0.0));
        a.stamp(0, 0, c(2.0, 1.0));
        assert_eq!(a[(0, 0)], c(3.0, 1.0));
    }
}
