use std::fmt;

/// Errors produced by linear-algebra operations in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands have incompatible shapes (e.g. multiplying a 2x3 by a 2x3).
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A factorisation encountered a (numerically) singular matrix.
    Singular {
        /// Pivot index at which the factorisation broke down.
        pivot: usize,
    },
    /// Cholesky factorisation was asked for a matrix that is not positive definite.
    NotPositiveDefinite {
        /// Diagonal index at which a non-positive pivot appeared.
        index: usize,
    },
    /// A matrix constructor was given rows of inconsistent lengths or zero size.
    InvalidDimensions {
        /// Description of what was wrong.
        reason: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            LinalgError::NotPositiveDefinite { index } => {
                write!(
                    f,
                    "matrix is not positive definite at diagonal index {index}"
                )
            }
            LinalgError::InvalidDimensions { reason } => {
                write!(f, "invalid matrix dimensions: {reason}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LinalgError::ShapeMismatch {
            op: "mul",
            lhs: (2, 3),
            rhs: (2, 3),
        };
        let s = e.to_string();
        assert!(s.contains("mul"));
        assert!(s.contains("2x3"));

        let e = LinalgError::Singular { pivot: 4 };
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
