//! Low-rank (Sherman–Morrison–Woodbury) corrections over a base [`SparseLu`].
//!
//! A rollout round perturbs a handful of stamp slots of the round's base
//! matrix: `A = A₀ + Σᵢ dᵢ·e_{rᵢ}·e_{cᵢ}ᵀ`.  Grouping the deltas by their `k`
//! distinct rows gives `A = A₀ + U·Vᵀ` with `U = [e_{r₁} … e_{r_k}]`, so
//!
//! ```text
//! A⁻¹ b = y − W·C⁻¹·(Vᵀ y),   y = A₀⁻¹ b,   W = A₀⁻¹ U,   C = I_k + Vᵀ W
//! ```
//!
//! costs `k` unit solves plus `O(n·k + k³)` per right-hand side instead of a
//! full numeric refactorisation.  The unit-solve columns `W` depend only on
//! the base factorisation and the perturbed *rows*, so callers batching many
//! candidates against one base solve each distinct row once
//! ([`SparseLu::solve_unit`]) and share the columns via
//! [`RankUpdate::plan_with_columns`].
//!
//! The capacitance matrix `C` is where near-cancellation shows up when the
//! update drives the system toward singularity; [`RankUpdate::plan`] refuses
//! (returns [`LinalgError::Singular`]) when a pivot of `C` collapses relative
//! to the magnitudes that were summed into it, and callers are expected to
//! fall back to a full refactor (see the residual gate in `gcnrl-sim`).

use super::lu::{SparseLu, PIVOT_TINY_SQ};
use super::scalar::SparseScalar;
use crate::LinalgError;

/// A pivot of `C` whose squared magnitude falls below this fraction of the
/// largest squared addend that was accumulated into `C` has lost ~12 digits
/// to cancellation: the correction would be numerically meaningless, so the
/// plan is rejected and the caller refactors instead.
const CAP_CANCELLATION_SQ: f64 = 1e-24;

/// Returns the sorted distinct rows touched by `deltas` (entries are
/// `(row, col, value)` triples in original coordinates).
pub fn distinct_rows<T>(deltas: &[(usize, usize, T)]) -> Vec<usize> {
    let mut rows: Vec<usize> = deltas.iter().map(|&(r, _, _)| r).collect();
    rows.sort_unstable();
    rows.dedup();
    rows
}

/// A planned rank-`k` correction: the factored capacitance matrix plus the
/// `W = A₀⁻¹ U` columns, ready to correct any number of base solutions.
#[derive(Debug, Clone)]
pub struct RankUpdate<T> {
    n: usize,
    /// Sorted distinct original rows carrying the update (length `k`).
    rows: Vec<usize>,
    /// Delta terms as `(row group index, column, value)`.
    terms: Vec<(usize, usize, T)>,
    /// `W` columns, column-major `n × k`.
    w: Vec<T>,
    /// Dense row-major LU of `C = I_k + Vᵀ W` (unit-diagonal `L`).
    cap: Vec<T>,
    /// Partial-pivoting row swaps applied during the `C` factorisation.
    piv: Vec<usize>,
}

impl<T: SparseScalar> RankUpdate<T> {
    /// Plans the correction for `deltas` against `base`, solving the `W`
    /// columns through the base factorisation.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] when the capacitance matrix is
    /// singular or has cancelled past recovery (the caller should refactor),
    /// and propagates base-solve errors.
    pub fn plan(base: &SparseLu<T>, deltas: &[(usize, usize, T)]) -> Result<Self, LinalgError> {
        let rows = distinct_rows(deltas);
        let n = base.symbolic().n();
        let mut w = Vec::with_capacity(n * rows.len());
        for &r in &rows {
            w.extend_from_slice(&base.solve_unit(r)?);
        }
        Self::plan_with_columns(n, deltas, rows, w)
    }

    /// Plans the correction from precomputed `W` columns.
    ///
    /// `rows` must be sorted, distinct, and cover every row appearing in
    /// `deltas` (a superset is fine: extra rows contribute identity rows to
    /// `C`, which lets a batch of candidates share the columns of their row
    /// union).  `w` holds one `A₀⁻¹ e_r` column per entry of `rows`,
    /// column-major.
    ///
    /// # Errors
    ///
    /// [`LinalgError::InvalidDimensions`] on malformed inputs,
    /// [`LinalgError::Singular`] when `C` is singular or ill-conditioned.
    pub fn plan_with_columns(
        n: usize,
        deltas: &[(usize, usize, T)],
        rows: Vec<usize>,
        w: Vec<T>,
    ) -> Result<Self, LinalgError> {
        let mut upd = RankUpdate {
            n,
            rows,
            terms: Vec::with_capacity(deltas.len()),
            w,
            cap: Vec::new(),
            piv: Vec::new(),
        };
        upd.refactor_cap(deltas)?;
        Ok(upd)
    }

    /// Re-plans this correction in place for new deltas and columns, reusing
    /// every internal allocation — the hot-loop variant of
    /// [`RankUpdate::plan_with_columns`] for callers that re-plan per
    /// frequency point (the columns `W(ω)` change, the buffers do not).
    ///
    /// On error the plan is poisoned and must not be used to correct until
    /// the next successful re-plan.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RankUpdate::plan_with_columns`].
    pub fn replan_with_columns(
        &mut self,
        n: usize,
        deltas: &[(usize, usize, T)],
        rows: &[usize],
        w: &[T],
    ) -> Result<(), LinalgError> {
        self.n = n;
        self.rows.clear();
        self.rows.extend_from_slice(rows);
        self.w.clear();
        self.w.extend_from_slice(w);
        self.refactor_cap(deltas)
    }

    /// Validates `self.rows`/`self.w`, regroups `deltas` into `self.terms`
    /// and refactors the capacitance matrix `C = I_k + Vᵀ W` into
    /// `self.cap`/`self.piv`.  Shared by the planning entry points.
    fn refactor_cap(&mut self, deltas: &[(usize, usize, T)]) -> Result<(), LinalgError> {
        let (n, rows, w) = (self.n, &self.rows, &self.w);
        let k = rows.len();
        if w.len() != n * k {
            return Err(LinalgError::InvalidDimensions {
                reason: "rank update column buffer does not match n * k",
            });
        }
        if rows.windows(2).any(|p| p[0] >= p[1]) || rows.iter().any(|&r| r >= n) {
            return Err(LinalgError::InvalidDimensions {
                reason: "rank update rows must be sorted, distinct and in range",
            });
        }
        self.terms.clear();
        for &(r, c, d) in deltas {
            let group = rows
                .binary_search(&r)
                .map_err(|_| LinalgError::InvalidDimensions {
                    reason: "delta row missing from the planned row set",
                })?;
            if c >= n {
                return Err(LinalgError::InvalidDimensions {
                    reason: "delta column out of range",
                });
            }
            self.terms.push((group, c, d));
        }

        // C = I_k + Vᵀ W, tracking the largest squared addend so the pivot
        // gate below measures cancellation, not absolute scale.
        let cap = &mut self.cap;
        cap.clear();
        cap.resize(k * k, T::ZERO);
        let mut addend_max_sq = if k > 0 { 1.0f64 } else { 0.0 };
        for j in 0..k {
            cap[j * k + j] = T::ONE;
        }
        for &(group, c, d) in &self.terms {
            for l in 0..k {
                let a = d * w[l * n + c];
                addend_max_sq = addend_max_sq.max(a.magnitude_sq());
                cap[group * k + l] += a;
            }
        }

        // Dense LU of C with partial pivoting by magnitude.
        let piv = &mut self.piv;
        piv.clear();
        for col in 0..k {
            let mut best = col;
            let mut best_sq = cap[col * k + col].magnitude_sq();
            for r in col + 1..k {
                let sq = cap[r * k + col].magnitude_sq();
                if sq > best_sq {
                    best = r;
                    best_sq = sq;
                }
            }
            piv.push(best);
            if best != col {
                for c in 0..k {
                    cap.swap(col * k + c, best * k + c);
                }
            }
            let p = cap[col * k + col];
            if best_sq < PIVOT_TINY_SQ
                || best_sq < CAP_CANCELLATION_SQ * addend_max_sq
                || !p.is_finite_scalar()
            {
                return Err(LinalgError::Singular { pivot: col });
            }
            for r in col + 1..k {
                let f = cap[r * k + col] / p;
                cap[r * k + col] = f;
                for c in col + 1..k {
                    let u = cap[col * k + c];
                    cap[r * k + c] -= f * u;
                }
            }
        }
        Ok(())
    }

    /// The correction rank `k` (number of distinct update rows planned).
    pub fn rank(&self) -> usize {
        self.rows.len()
    }

    /// The sorted distinct rows this plan covers.
    pub fn rows(&self) -> &[usize] {
        &self.rows
    }

    /// The planned `W = A₀⁻¹ U` columns, column-major `n × k`.
    pub fn w_columns(&self) -> &[T] {
        &self.w
    }

    /// Corrects a base solution in place: `y ← y − W·C⁻¹·(Vᵀ y)`, turning
    /// `A₀⁻¹ b` into `(A₀ + UVᵀ)⁻¹ b`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] when `y` has the wrong length.
    pub fn correct(&self, y: &mut [T]) -> Result<(), LinalgError> {
        self.correct_with_scratch(y, &mut Vec::new())
    }

    /// [`RankUpdate::correct`] with a caller-owned scratch buffer for the
    /// `k`-vector `Vᵀ y`, so hot loops correcting many solutions allocate
    /// nothing per call.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] when `y` has the wrong length.
    pub fn correct_with_scratch(
        &self,
        y: &mut [T],
        scratch: &mut Vec<T>,
    ) -> Result<(), LinalgError> {
        let (n, k) = (self.n, self.rows.len());
        if y.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "rank_update_correct",
                lhs: (n, 1),
                rhs: (y.len(), 1),
            });
        }
        if k == 0 {
            return Ok(());
        }
        // t = Vᵀ y.
        scratch.clear();
        scratch.resize(k, T::ZERO);
        let t = scratch;
        for &(group, c, d) in &self.terms {
            t[group] += d * y[c];
        }
        // z = C⁻¹ t via the stored pivoted LU.
        for (col, &p) in self.piv.iter().enumerate() {
            if p != col {
                t.swap(col, p);
            }
        }
        for col in 0..k {
            let tc = t[col];
            for (r, tr) in t.iter_mut().enumerate().take(k).skip(col + 1) {
                *tr -= self.cap[r * k + col] * tc;
            }
        }
        for col in (0..k).rev() {
            let mut acc = t[col];
            for (c, &tc) in t.iter().enumerate().take(k).skip(col + 1) {
                acc -= self.cap[col * k + c] * tc;
            }
            t[col] = acc / self.cap[col * k + col];
        }
        // y ← y − W z.
        for (l, &z) in t.iter().enumerate() {
            let wl = &self.w[l * n..(l + 1) * n];
            for (yi, &wi) in y.iter_mut().zip(wl) {
                *yi -= wi * z;
            }
        }
        Ok(())
    }

    /// Solves `(A₀ + UVᵀ) x = b` through the base factorisation.
    ///
    /// # Errors
    ///
    /// Propagates [`SparseLu::solve`] and [`RankUpdate::correct`] errors.
    pub fn solve(&self, base: &SparseLu<T>, b: &[T]) -> Result<Vec<T>, LinalgError> {
        let mut y = base.solve(b)?;
        self.correct(&mut y)?;
        Ok(y)
    }

    /// Accumulates `Δ·x` into `out` (`Δ` being the planned delta terms), the
    /// piece callers need to evaluate the true residual `b − (A₀ + Δ)x`
    /// without assembling the updated matrix.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] on length mismatches.
    pub fn delta_matvec_add(&self, x: &[T], out: &mut [T]) -> Result<(), LinalgError> {
        if x.len() != self.n || out.len() != self.n {
            return Err(LinalgError::ShapeMismatch {
                op: "rank_update_delta_matvec",
                lhs: (self.n, 1),
                rhs: (x.len(), out.len()),
            });
        }
        for &(group, c, d) in &self.terms {
            out[self.rows[group]] += d * x[c];
        }
        Ok(())
    }
}

/// Convenience one-shot: plan the correction for `deltas` and solve `rhs`.
///
/// # Errors
///
/// See [`RankUpdate::plan`] and [`RankUpdate::solve`]; a
/// [`LinalgError::Singular`] means the caller should fall back to a full
/// refactor of the updated matrix.
pub fn solve_updated<T: SparseScalar>(
    base: &SparseLu<T>,
    deltas: &[(usize, usize, T)],
    rhs: &[T],
) -> Result<Vec<T>, LinalgError> {
    RankUpdate::plan(base, deltas)?.solve(base, rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::{splu, CsrMatrix, TripletBuilder};
    use crate::Complex;
    use proptest::prelude::*;

    fn tridiagonal(n: usize) -> CsrMatrix<f64> {
        let mut b = TripletBuilder::new(n);
        for i in 0..n {
            b.push(i, i, 2.5);
            if i + 1 < n {
                b.push(i, i + 1, -1.0);
                b.push(i + 1, i, -1.0);
            }
        }
        b.build().unwrap()
    }

    fn apply_deltas<T: SparseScalar>(
        a: &CsrMatrix<T>,
        deltas: &[(usize, usize, T)],
    ) -> CsrMatrix<T> {
        let mut b = TripletBuilder::new(a.pattern().n());
        for ((r, c, _), &v) in a.pattern().iter().zip(a.values()) {
            b.push(r, c, v);
        }
        for &(r, c, d) in deltas {
            b.push(r, c, d);
        }
        b.build().unwrap()
    }

    #[test]
    fn rank_k_update_matches_full_refactor_real() {
        let a = tridiagonal(10);
        let base = splu(&a).unwrap();
        let deltas = [(2usize, 2usize, 0.8f64), (2, 3, -0.3), (7, 6, 0.45)];
        let rhs: Vec<f64> = (0..10).map(|i| (i as f64 * 0.9).sin()).collect();
        let x = solve_updated(&base, &deltas, &rhs).unwrap();
        let full = splu(&apply_deltas(&a, &deltas)).unwrap();
        let want = full.solve(&rhs).unwrap();
        for (xi, wi) in x.iter().zip(&want) {
            assert!((xi - wi).abs() < 1e-10, "{xi} vs {wi}");
        }
    }

    #[test]
    fn rank_k_update_matches_full_refactor_complex() {
        let mut tb = TripletBuilder::new(6);
        for i in 0..6 {
            tb.push(i, i, Complex::new(2.0, 0.7 * i as f64));
            if i + 1 < 6 {
                tb.push(i, i + 1, Complex::new(-0.5, 0.1));
                tb.push(i + 1, i, Complex::new(-0.5, -0.2));
            }
        }
        let a = tb.build().unwrap();
        let base = splu(&a).unwrap();
        let deltas = [
            (1usize, 1usize, Complex::new(0.4, -0.9)),
            (4, 3, Complex::new(-0.2, 0.35)),
        ];
        let rhs: Vec<Complex> = (0..6).map(|i| Complex::new(1.0, i as f64 * 0.3)).collect();
        let x = solve_updated(&base, &deltas, &rhs).unwrap();
        let full = splu(&apply_deltas(&a, &deltas)).unwrap();
        let want = full.solve(&rhs).unwrap();
        for (xi, wi) in x.iter().zip(&want) {
            assert!((*xi - *wi).abs() < 1e-10);
        }
    }

    #[test]
    fn empty_delta_is_a_bitwise_noop() {
        let a = tridiagonal(7);
        let base = splu(&a).unwrap();
        let rhs = vec![1.25f64; 7];
        let plain = base.solve(&rhs).unwrap();
        let updated = solve_updated(&base, &[], &rhs).unwrap();
        assert_eq!(plain, updated);
    }

    #[test]
    fn shared_row_union_superset_is_accepted() {
        let a = tridiagonal(8);
        let base = splu(&a).unwrap();
        // Union of two candidates' rows; this candidate only touches row 5.
        let rows = vec![1usize, 5, 6];
        let mut w = Vec::new();
        for &r in &rows {
            w.extend_from_slice(&base.solve_unit(r).unwrap());
        }
        let deltas = [(5usize, 5usize, 0.6f64)];
        let upd = RankUpdate::plan_with_columns(8, &deltas, rows, w).unwrap();
        assert_eq!(upd.rank(), 3);
        let rhs = vec![1.0f64; 8];
        let x = upd.solve(&base, &rhs).unwrap();
        let full = splu(&apply_deltas(&a, &deltas)).unwrap();
        let want = full.solve(&rhs).unwrap();
        for (xi, wi) in x.iter().zip(&want) {
            assert!((xi - wi).abs() < 1e-10);
        }
    }

    #[test]
    fn replanning_in_place_matches_a_fresh_plan() {
        let a = tridiagonal(9);
        let base = splu(&a).unwrap();
        let rows = vec![2usize, 6];
        let mut w = Vec::new();
        for &r in &rows {
            w.extend_from_slice(&base.solve_unit(r).unwrap());
        }
        let first = [(2usize, 2usize, 0.4f64), (6, 5, -0.25)];
        let second = [(2usize, 1usize, -0.7f64), (6, 6, 0.9)];
        let mut upd = RankUpdate::plan_with_columns(9, &first, rows.clone(), w.clone()).unwrap();
        upd.replan_with_columns(9, &second, &rows, &w).unwrap();
        let fresh = RankUpdate::plan_with_columns(9, &second, rows, w).unwrap();
        let rhs: Vec<f64> = (0..9).map(|i| 1.0 + i as f64 * 0.5).collect();
        let mut scratch = Vec::new();
        let mut x = base.solve(&rhs).unwrap();
        upd.correct_with_scratch(&mut x, &mut scratch).unwrap();
        let want = fresh.solve(&base, &rhs).unwrap();
        assert_eq!(x, want);
        // A failed re-plan poisons the plan but the next one recovers.
        assert!(upd
            .replan_with_columns(9, &[(0, 0, 1.0)], &[2, 6], &[0.0])
            .is_err());
        upd.replan_with_columns(9, &second, fresh.rows(), fresh.w_columns())
            .unwrap();
        let mut x2 = base.solve(&rhs).unwrap();
        upd.correct(&mut x2).unwrap();
        assert_eq!(x2, want);
    }

    #[test]
    fn cancelled_capacitance_matrix_is_rejected() {
        let a = tridiagonal(5);
        let base = splu(&a).unwrap();
        // d = -1/w₀[0] drives C = 1 + d·w₀[0] to exact cancellation: the
        // updated matrix is singular and the plan must refuse.
        let w0 = base.solve_unit(0).unwrap();
        let d = -1.0 / w0[0];
        assert!(matches!(
            RankUpdate::plan(&base, &[(0, 0, d)]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn residual_probe_via_delta_matvec() {
        let a = tridiagonal(6);
        let base = splu(&a).unwrap();
        let deltas = [(3usize, 2usize, 0.7f64), (3, 4, -0.4)];
        let upd = RankUpdate::plan(&base, &deltas).unwrap();
        let rhs = vec![2.0f64; 6];
        let x = upd.solve(&base, &rhs).unwrap();
        // b − A₀x − Δx ≈ 0 when the correction is exact.
        let mut ax = a.matvec(&x).unwrap();
        upd.delta_matvec_add(&x, &mut ax).unwrap();
        for (bi, axi) in rhs.iter().zip(&ax) {
            assert!((bi - axi).abs() < 1e-10);
        }
    }

    proptest! {
        #[test]
        fn random_small_updates_agree_with_refactor(
            n in 4usize..12,
            seed_vals in prop::collection::vec(0.2f64..2.0, 12),
            picks in prop::collection::vec((0usize..12, 0usize..12, -0.9f64..0.9), 1..4),
        ) {
            let mut tb = TripletBuilder::new(n);
            for i in 0..n {
                tb.push(i, i, 3.0 + seed_vals[i % seed_vals.len()]);
                if i + 1 < n {
                    tb.push(i, i + 1, -seed_vals[(i + 3) % seed_vals.len()]);
                    tb.push(i + 1, i, -seed_vals[(i + 5) % seed_vals.len()]);
                }
            }
            let a = tb.build().unwrap();
            let base = splu(&a).unwrap();
            // Keep perturbations on existing structural positions.
            let deltas: Vec<(usize, usize, f64)> = picks
                .iter()
                .map(|&(r, c, d)| {
                    let r = r % n;
                    let off = c % 3;
                    let c = match off {
                        0 => r,
                        1 => (r + 1).min(n - 1),
                        _ => r.saturating_sub(1),
                    };
                    (r, c, d)
                })
                .collect();
            let rhs: Vec<f64> = (0..n).map(|i| ((i * 7 % 5) as f64) - 2.0).collect();
            match solve_updated(&base, &deltas, &rhs) {
                Ok(x) => {
                    let full = splu(&apply_deltas(&a, &deltas)).unwrap();
                    let want = full.solve(&rhs).unwrap();
                    for (xi, wi) in x.iter().zip(&want) {
                        prop_assert!((xi - wi).abs() < 1e-8, "{xi} vs {wi}");
                    }
                }
                // An ill-conditioned C is a legal outcome: the caller
                // refactors instead.
                Err(LinalgError::Singular { .. }) => {}
                Err(e) => prop_assert!(false, "unexpected error {e:?}"),
            }
        }
    }
}
