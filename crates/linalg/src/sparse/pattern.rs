use crate::LinalgError;

/// The immutable nonzero structure of a square sparse matrix, in CSR layout.
///
/// A pattern is built once per circuit topology and shared (via `Arc`) between
/// every matrix that reuses the structure: the value arrays of those matrices
/// are indexed by the *slot* numbers this pattern assigns, so re-stamping a
/// matrix for new element values never re-derives the structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsityPattern {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
}

impl SparsityPattern {
    /// Builds the pattern from a list of `(row, col)` positions.  Duplicates
    /// collapse to a single slot; rows and columns within rows are sorted.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidDimensions`] if `n == 0` or any position
    /// is out of range.
    pub fn from_positions(n: usize, positions: &[(usize, usize)]) -> Result<Self, LinalgError> {
        if n == 0 {
            return Err(LinalgError::InvalidDimensions {
                reason: "sparsity pattern dimension must be non-zero",
            });
        }
        if positions.iter().any(|&(r, c)| r >= n || c >= n) {
            return Err(LinalgError::InvalidDimensions {
                reason: "sparsity pattern position out of range",
            });
        }
        let mut sorted: Vec<(usize, usize)> = positions.to_vec();
        sorted.sort_unstable();
        sorted.dedup();

        let mut row_ptr = vec![0usize; n + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        for &(r, c) in &sorted {
            row_ptr[r + 1] += 1;
            col_idx.push(c);
        }
        for r in 0..n {
            row_ptr[r + 1] += row_ptr[r];
        }
        Ok(SparsityPattern {
            n,
            row_ptr,
            col_idx,
        })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of structural nonzeros (slots).
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The sorted column indices of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.n()`.
    pub fn row(&self, r: usize) -> &[usize] {
        assert!(r < self.n, "row index out of bounds");
        &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// The slot range of row `r` (indices into the value array that
    /// correspond to [`SparsityPattern::row`]'s column list).
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.n()`.
    pub fn row_slots(&self, r: usize) -> std::ops::Range<usize> {
        assert!(r < self.n, "row index out of bounds");
        self.row_ptr[r]..self.row_ptr[r + 1]
    }

    /// Slot index of position `(r, c)`, or `None` if it is structurally zero.
    pub fn slot(&self, r: usize, c: usize) -> Option<usize> {
        if r >= self.n {
            return None;
        }
        let start = self.row_ptr[r];
        self.row(r)
            .binary_search(&c)
            .ok()
            .map(|offset| start + offset)
    }

    /// Iterates all `(row, col, slot)` triples in CSR order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        (0..self.n).flat_map(move |r| {
            (self.row_ptr[r]..self.row_ptr[r + 1]).map(move |s| (r, self.col_idx[s], s))
        })
    }

    /// Fraction of the dense matrix that is structurally nonzero.
    pub fn density(&self) -> f64 {
        self.nnz() as f64 / (self.n * self.n) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_and_sorts_positions() {
        let p =
            SparsityPattern::from_positions(3, &[(2, 0), (0, 1), (0, 0), (0, 1), (1, 2)]).unwrap();
        assert_eq!(p.n(), 3);
        assert_eq!(p.nnz(), 4);
        assert_eq!(p.row(0), &[0, 1]);
        assert_eq!(p.row(1), &[2]);
        assert_eq!(p.row(2), &[0]);
    }

    #[test]
    fn slot_lookup_matches_csr_order() {
        let p = SparsityPattern::from_positions(2, &[(0, 0), (0, 1), (1, 1)]).unwrap();
        assert_eq!(p.slot(0, 0), Some(0));
        assert_eq!(p.slot(0, 1), Some(1));
        assert_eq!(p.slot(1, 1), Some(2));
        assert_eq!(p.slot(1, 0), None);
        assert_eq!(p.slot(5, 0), None);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(SparsityPattern::from_positions(0, &[]).is_err());
        assert!(SparsityPattern::from_positions(2, &[(2, 0)]).is_err());
    }

    #[test]
    fn iter_and_density() {
        let p = SparsityPattern::from_positions(2, &[(0, 0), (1, 1)]).unwrap();
        let triples: Vec<_> = p.iter().collect();
        assert_eq!(triples, vec![(0, 0, 0), (1, 1, 1)]);
        assert!((p.density() - 0.5).abs() < 1e-12);
    }
}
