use crate::Complex;
use std::fmt::Debug;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Scalar types the sparse kernels are generic over.
///
/// The sparse CSR matrices and the LU factorisation work identically for the
/// real Newton Jacobians (`f64`) and the complex AC admittance systems
/// ([`Complex`]); this trait captures the handful of operations they need.
pub trait SparseScalar:
    Copy
    + Debug
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + AddAssign
    + SubAssign
    + Send
    + Sync
    + 'static
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;

    /// Magnitude used for pivot viability checks (absolute value / modulus).
    fn magnitude(self) -> f64;

    /// Squared magnitude: cheaper than [`SparseScalar::magnitude`] (no
    /// square root / hypot) and sufficient wherever only a comparison is
    /// needed — the hot-path pivot and residual checks use this.
    fn magnitude_sq(self) -> f64;

    /// Returns `true` when the value is finite in every component.
    fn is_finite_scalar(self) -> bool;
}

impl SparseScalar for f64 {
    const ZERO: f64 = 0.0;
    const ONE: f64 = 1.0;

    fn magnitude(self) -> f64 {
        self.abs()
    }

    fn magnitude_sq(self) -> f64 {
        self * self
    }

    fn is_finite_scalar(self) -> bool {
        self.is_finite()
    }
}

impl SparseScalar for Complex {
    const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    fn magnitude(self) -> f64 {
        self.abs()
    }

    fn magnitude_sq(self) -> f64 {
        self.abs_sq()
    }

    fn is_finite_scalar(self) -> bool {
        self.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: SparseScalar>(a: T, b: T) -> T {
        (a + b) * b - a / b
    }

    #[test]
    fn trait_is_usable_for_both_scalars() {
        assert_eq!(roundtrip(0.0f64, 1.0), 1.0);
        let z = roundtrip(Complex::ZERO, Complex::ONE);
        assert_eq!(z, Complex::ONE);
        assert_eq!(Complex::new(3.0, 4.0).magnitude(), 5.0);
        assert!(1.0f64.is_finite_scalar());
        assert!(!Complex::new(f64::NAN, 0.0).is_finite_scalar());
    }
}
