//! Sparse linear algebra for the MNA hot path.
//!
//! Circuit admittance and Jacobian matrices are extremely sparse (a handful
//! of nonzeros per row) and their structure is fixed per topology.  This
//! module exploits both facts:
//!
//! * [`SparsityPattern`] — the immutable CSR structure, built once per
//!   topology and shared via `Arc`; it assigns a *slot* index to every
//!   structural nonzero so value arrays can be restamped in place.
//! * [`TripletBuilder`] / [`CsrMatrix`] — accumulation-friendly construction
//!   and the CSR value container (real `f64` or [`Complex`](crate::Complex),
//!   via [`SparseScalar`]).
//! * [`SymbolicLu`] — fill-reducing Markowitz ordering (diagonal-preferring,
//!   SPICE-style) and the complete fill pattern of `L + U`, computed **once
//!   per pattern**.
//! * [`SparseLu`] — numeric factorisation state that replays the elimination
//!   over the precomputed structure on every [`SparseLu::refactor`] with no
//!   allocation, then serves any number of right-hand sides.
//! * [`RankUpdate`] / [`solve_updated`] — Sherman–Morrison–Woodbury rank-k
//!   corrections over a base factorisation, so candidates that differ from a
//!   base matrix in a handful of slots skip the refactor entirely.
//! * [`SoaLu`] — struct-of-arrays complex kernels that factor and solve up
//!   to [`SOA_LANES`] frequency points per pass over split re/im arrays,
//!   each lane bit-identical to the scalar path.
//!
//! # Examples
//!
//! ```
//! use gcnrl_linalg::sparse::{splu, TripletBuilder};
//!
//! # fn main() -> Result<(), gcnrl_linalg::LinalgError> {
//! let mut b = TripletBuilder::new(2);
//! b.push(0, 0, 4.0);
//! b.push(1, 1, 2.0);
//! b.push(0, 1, 1.0);
//! let a = b.build()?;
//! let lu = splu(&a)?;
//! let x = lu.solve(&[9.0, 4.0])?;
//! assert!((x[0] - 1.75).abs() < 1e-12);
//! assert!((x[1] - 2.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

mod cmplx_soa;
mod csr;
mod lu;
mod pattern;
mod scalar;
mod update;

pub use cmplx_soa::{SoaLu, SOA_LANES};
pub use csr::{CsrMatrix, TripletBuilder};
pub use lu::{splu, SparseLu, SymbolicLu};
pub use pattern::SparsityPattern;
pub use scalar::SparseScalar;
pub use update::{distinct_rows, solve_updated, RankUpdate};
