//! Struct-of-arrays complex LU kernels: factor and solve several frequency
//! points per pass over split re/im `f64` arrays.
//!
//! An AC sweep refactors the same `G + jωC` structure at every frequency;
//! only the scalar `ω` changes.  [`SoaLu`] assembles up to [`SOA_LANES`]
//! frequency points into lane-major split arrays (`value[slot][lane]` stored
//! as `re[slot * lanes + lane]`) and replays the symbolic elimination once
//! with the lane loop innermost, so the compiler autovectorizes the complex
//! multiply-accumulates across frequency points instead of chasing one
//! scalar dependency chain per point.
//!
//! Every lane applies *exactly* the scalar [`SparseLu`](super::SparseLu)
//! operation sequence (same elimination order, same `a·b` and `1/p`
//! formulas), so a lane's factorisation and solves are bit-identical to the
//! scalar path — callers can mix chunked and per-point solves freely.  Lanes
//! carry per-lane growth and singularity state; a singular pivot in any
//! active lane fails the whole chunk (callers fall back to scalar solves,
//! which then report the offending frequency precisely).

use super::lu::{SymbolicLu, PIVOT_TINY_SQ};
use super::pattern::SparsityPattern;
use crate::{Complex, LinalgError};
use std::sync::Arc;

/// Lane width of the struct-of-arrays kernels: 8 complex values = 16 `f64`
/// per slot, two AVX-512 registers or four AVX2 registers per component.
pub const SOA_LANES: usize = 8;

/// Numeric LU state for up to [`SOA_LANES`] simultaneous frequency points
/// over one shared symbolic analysis.
#[derive(Debug, Clone)]
pub struct SoaLu {
    symbolic: Arc<SymbolicLu>,
    scatter: Vec<usize>,
    lanes: usize,
    /// Lanes carrying real data in the current factorisation; the remainder
    /// are padded with the last active frequency so every inner loop runs
    /// the full lane width.
    active: usize,
    lu_re: Vec<f64>,
    lu_im: Vec<f64>,
    recip_re: Vec<f64>,
    recip_im: Vec<f64>,
    work_re: Vec<f64>,
    work_im: Vec<f64>,
    y_re: Vec<f64>,
    y_im: Vec<f64>,
    growth_sq: Vec<f64>,
    factored: bool,
}

impl SoaLu {
    /// Creates the lane state for `input_pattern` against `symbolic`, with
    /// `lanes` in `1..=SOA_LANES`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::InvalidDimensions`] on a bad lane count, plus the
    /// pattern-mismatch errors of the scalar constructor.
    pub fn new(
        symbolic: Arc<SymbolicLu>,
        input_pattern: &SparsityPattern,
        lanes: usize,
    ) -> Result<Self, LinalgError> {
        if lanes == 0 || lanes > SOA_LANES {
            return Err(LinalgError::InvalidDimensions {
                reason: "SoA lane count must be in 1..=SOA_LANES",
            });
        }
        let scatter = symbolic.scatter_for(input_pattern)?;
        let nnz_lu = symbolic.nnz_lu();
        let n = symbolic.n();
        Ok(SoaLu {
            symbolic,
            scatter,
            lanes,
            active: 0,
            lu_re: vec![0.0; nnz_lu * lanes],
            lu_im: vec![0.0; nnz_lu * lanes],
            recip_re: vec![0.0; n * lanes],
            recip_im: vec![0.0; n * lanes],
            work_re: vec![0.0; n * lanes],
            work_im: vec![0.0; n * lanes],
            y_re: vec![0.0; n * lanes],
            y_im: vec![0.0; n * lanes],
            growth_sq: vec![f64::INFINITY; lanes],
            factored: false,
        })
    }

    /// Configured lane width.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Lanes of the current factorisation that carry distinct frequencies.
    pub fn active(&self) -> usize {
        self.active
    }

    /// Squared element growth of lane `lane`'s current factorisation.
    pub fn lane_growth_sq(&self, lane: usize) -> f64 {
        self.growth_sq[lane]
    }

    /// Worst squared element growth across the active lanes.
    pub fn max_growth_sq(&self) -> f64 {
        self.growth_sq[..self.active]
            .iter()
            .fold(0.0f64, |a, &g| a.max(g))
    }

    /// Assembles `G + jω·C` per lane over the bound input slots (`g`/`c`
    /// aligned with the input pattern, one `ω` per lane) and factorises all
    /// lanes in one pass.
    ///
    /// # Errors
    ///
    /// [`LinalgError::InvalidDimensions`] on slot/lane count mismatches;
    /// [`LinalgError::Singular`] if any active lane hits a tiny pivot (the
    /// factorisation is then invalid for every lane).
    pub fn refactor_gc(&mut self, g: &[f64], c: &[f64], omegas: &[f64]) -> Result<(), LinalgError> {
        if g.len() != self.scatter.len() || c.len() != self.scatter.len() {
            return Err(LinalgError::InvalidDimensions {
                reason: "slot value count does not match the bound input pattern",
            });
        }
        if omegas.is_empty() || omegas.len() > self.lanes {
            return Err(LinalgError::InvalidDimensions {
                reason: "omega count must be in 1..=lanes",
            });
        }
        let lanes = self.lanes;
        self.factored = false;
        self.active = omegas.len();
        // Pad the tail lanes with the last frequency: they compute real
        // (discarded) values, keeping every inner loop at full width.
        let mut om = [0.0f64; SOA_LANES];
        for l in 0..lanes {
            om[l] = omegas[l.min(omegas.len() - 1)];
        }

        self.lu_re.fill(0.0);
        self.lu_im.fill(0.0);
        let mut input_max_sq = [0.0f64; SOA_LANES];
        for ((&gv, &cv), &slot) in g.iter().zip(c).zip(&self.scatter) {
            let base = slot * lanes;
            for l in 0..lanes {
                let re = gv;
                let im = om[l] * cv;
                self.lu_re[base + l] += re;
                self.lu_im[base + l] += im;
                let sq = re * re + im * im;
                if sq > input_max_sq[l] {
                    input_max_sq[l] = sq;
                }
            }
        }

        let sym = &*self.symbolic;
        let mut lu_max_sq = [0.0f64; SOA_LANES];
        let mut fr = [0.0f64; SOA_LANES];
        let mut fi = [0.0f64; SOA_LANES];
        for i in 0..sym.n() {
            let row_start = sym.lu_row_ptr()[i];
            let row_end = sym.lu_row_ptr()[i + 1];
            let diag = sym.diag_slot()[i];
            // Scatter row i into the dense lane workspace.
            for s in row_start..row_end {
                let col = sym.lu_col_idx()[s];
                for l in 0..lanes {
                    self.work_re[col * lanes + l] = self.lu_re[s * lanes + l];
                    self.work_im[col * lanes + l] = self.lu_im[s * lanes + l];
                }
            }
            // Eliminate with every earlier pivot row this row touches,
            // lane-wise: factor = work[m] * recip[m] (scalar formula
            // (ar·br − ai·bi, ar·bi + ai·br)).
            for s in row_start..diag {
                let m = sym.lu_col_idx()[s];
                for l in 0..lanes {
                    let ar = self.work_re[m * lanes + l];
                    let ai = self.work_im[m * lanes + l];
                    let br = self.recip_re[m * lanes + l];
                    let bi = self.recip_im[m * lanes + l];
                    fr[l] = ar * br - ai * bi;
                    fi[l] = ar * bi + ai * br;
                    self.work_re[m * lanes + l] = fr[l];
                    self.work_im[m * lanes + l] = fi[l];
                }
                let u_start = sym.diag_slot()[m] + 1;
                let u_end = sym.lu_row_ptr()[m + 1];
                for s2 in u_start..u_end {
                    let col = sym.lu_col_idx()[s2];
                    for l in 0..lanes {
                        let ur = self.lu_re[s2 * lanes + l];
                        let ui = self.lu_im[s2 * lanes + l];
                        self.work_re[col * lanes + l] -= fr[l] * ur - fi[l] * ui;
                        self.work_im[col * lanes + l] -= fr[l] * ui + fi[l] * ur;
                    }
                }
            }
            // Gather back and reset the workspace.
            for s in row_start..row_end {
                let col = sym.lu_col_idx()[s];
                for (l, max_sq) in lu_max_sq.iter_mut().enumerate().take(lanes) {
                    let re = self.work_re[col * lanes + l];
                    let im = self.work_im[col * lanes + l];
                    self.lu_re[s * lanes + l] = re;
                    self.lu_im[s * lanes + l] = im;
                    let sq = re * re + im * im;
                    if sq > *max_sq {
                        *max_sq = sq;
                    }
                    self.work_re[col * lanes + l] = 0.0;
                    self.work_im[col * lanes + l] = 0.0;
                }
            }
            // Per-lane pivot check and reciprocal (scalar `ONE / p` formula:
            // (pr/d, −pi/d) with d = pr² + pi²).
            for l in 0..self.active {
                let pr = self.lu_re[diag * lanes + l];
                let pi = self.lu_im[diag * lanes + l];
                let d = pr * pr + pi * pi;
                if d < PIVOT_TINY_SQ || !d.is_finite() {
                    return Err(LinalgError::Singular { pivot: i });
                }
            }
            for l in 0..lanes {
                let pr = self.lu_re[diag * lanes + l];
                let pi = self.lu_im[diag * lanes + l];
                let d = pr * pr + pi * pi;
                self.recip_re[i * lanes + l] = pr / d;
                self.recip_im[i * lanes + l] = -(pi / d);
            }
        }
        for l in 0..self.active {
            self.growth_sq[l] = if input_max_sq[l] > 0.0 {
                lu_max_sq[l] / input_max_sq[l]
            } else {
                f64::INFINITY
            };
        }
        self.factored = true;
        Ok(())
    }

    /// Solves the same right-hand side against every active lane, returning
    /// one solution vector per lane (in the lane's original coordinates).
    ///
    /// # Errors
    ///
    /// [`LinalgError::InvalidDimensions`] without a current factorisation,
    /// [`LinalgError::ShapeMismatch`] on a length mismatch.
    pub fn solve_broadcast(&mut self, b: &[Complex]) -> Result<Vec<Vec<Complex>>, LinalgError> {
        let sym = &*self.symbolic;
        let n = sym.n();
        let lanes = self.lanes;
        if !self.factored {
            return Err(LinalgError::InvalidDimensions {
                reason: "solve requires a successful refactor first",
            });
        }
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "soa_lu_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        let mut acc_r = [0.0f64; SOA_LANES];
        let mut acc_i = [0.0f64; SOA_LANES];
        // Forward substitution (unit-diagonal L) on the row-permuted RHS.
        for k in 0..n {
            let src = b[sym.row_perm()[k]];
            for l in 0..lanes {
                acc_r[l] = src.re;
                acc_i[l] = src.im;
            }
            let (start, diag) = (sym.lu_row_ptr()[k], sym.diag_slot()[k]);
            for s in start..diag {
                let c = sym.lu_col_idx()[s];
                for l in 0..lanes {
                    let lr = self.lu_re[s * lanes + l];
                    let li = self.lu_im[s * lanes + l];
                    let yr = self.y_re[c * lanes + l];
                    let yi = self.y_im[c * lanes + l];
                    acc_r[l] -= lr * yr - li * yi;
                    acc_i[l] -= lr * yi + li * yr;
                }
            }
            for l in 0..lanes {
                self.y_re[k * lanes + l] = acc_r[l];
                self.y_im[k * lanes + l] = acc_i[l];
            }
        }
        // Back substitution through U, finishing with the cached reciprocal
        // multiply exactly as the scalar path does.
        for k in (0..n).rev() {
            let (diag, end) = (sym.diag_slot()[k], sym.lu_row_ptr()[k + 1]);
            for l in 0..lanes {
                acc_r[l] = self.y_re[k * lanes + l];
                acc_i[l] = self.y_im[k * lanes + l];
            }
            for s in diag + 1..end {
                let c = sym.lu_col_idx()[s];
                for l in 0..lanes {
                    let ur = self.lu_re[s * lanes + l];
                    let ui = self.lu_im[s * lanes + l];
                    let yr = self.y_re[c * lanes + l];
                    let yi = self.y_im[c * lanes + l];
                    acc_r[l] -= ur * yr - ui * yi;
                    acc_i[l] -= ur * yi + ui * yr;
                }
            }
            for l in 0..lanes {
                let rr = self.recip_re[k * lanes + l];
                let ri = self.recip_im[k * lanes + l];
                self.y_re[k * lanes + l] = acc_r[l] * rr - acc_i[l] * ri;
                self.y_im[k * lanes + l] = acc_r[l] * ri + acc_i[l] * rr;
            }
        }
        // Undo the column permutation, one output vector per active lane.
        let mut out = vec![vec![Complex::ZERO; n]; self.active];
        for k in 0..n {
            let dst = sym.col_perm()[k];
            for (l, lane_out) in out.iter_mut().enumerate() {
                lane_out[dst] = Complex::new(self.y_re[k * lanes + l], self.y_im[k * lanes + l]);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::SparseLu;

    /// RC-ladder-shaped complex system: slots hold `g + jωc`.
    fn ladder_slots(n: usize) -> (SparsityPattern, Vec<f64>, Vec<f64>) {
        let mut positions = Vec::new();
        let mut g = Vec::new();
        let mut c = Vec::new();
        for i in 0..n {
            positions.push((i, i));
            g.push(2e-3 + 1e-4 * i as f64);
            c.push(1e-12);
            if i + 1 < n {
                positions.push((i, i + 1));
                g.push(-1e-3);
                c.push(0.0);
                positions.push((i + 1, i));
                g.push(-1e-3);
                c.push(0.0);
            }
        }
        let pattern = SparsityPattern::from_positions(n, &positions).unwrap();
        // `from_positions` sorts; rebuild the slot arrays in pattern order.
        let mut gs = vec![0.0; pattern.nnz()];
        let mut cs = vec![0.0; pattern.nnz()];
        for (idx, &(r, col)) in positions.iter().enumerate() {
            let slot = pattern.slot(r, col).unwrap();
            gs[slot] += g[idx];
            cs[slot] += c[idx];
        }
        (pattern, gs, cs)
    }

    #[test]
    fn lanes_are_bit_identical_to_scalar_factor_and_solve() {
        let (pattern, g, c) = ladder_slots(11);
        let symbolic = Arc::new(SymbolicLu::analyze(&pattern).unwrap());
        let omegas: Vec<f64> = (0..5).map(|i| 1e6 * 10f64.powi(i)).collect();
        let mut soa = SoaLu::new(symbolic.clone(), &pattern, SOA_LANES).unwrap();
        soa.refactor_gc(&g, &c, &omegas).unwrap();
        assert_eq!(soa.active(), omegas.len());

        let b: Vec<Complex> = (0..11)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let lanes = soa.solve_broadcast(&b).unwrap();

        let mut scalar = SparseLu::<Complex>::new(symbolic, &pattern).unwrap();
        for (l, &omega) in omegas.iter().enumerate() {
            let vals: Vec<Complex> = g
                .iter()
                .zip(&c)
                .map(|(&gv, &cv)| Complex::new(gv, omega * cv))
                .collect();
            scalar.refactor(&vals).unwrap();
            let x = scalar.solve(&b).unwrap();
            assert_eq!(lanes[l], x, "lane {l} diverged from the scalar path");
            let gsq = soa.lane_growth_sq(l);
            assert_eq!(
                gsq.to_bits(),
                scalar.growth_sq().to_bits(),
                "lane {l} growth diverged"
            );
        }
    }

    #[test]
    fn partial_chunks_pad_without_changing_active_lanes() {
        let (pattern, g, c) = ladder_slots(6);
        let symbolic = Arc::new(SymbolicLu::analyze(&pattern).unwrap());
        let mut soa = SoaLu::new(symbolic.clone(), &pattern, SOA_LANES).unwrap();
        soa.refactor_gc(&g, &c, &[1e7]).unwrap();
        assert_eq!(soa.active(), 1);
        let b = vec![Complex::ONE; 6];
        let lanes = soa.solve_broadcast(&b).unwrap();
        assert_eq!(lanes.len(), 1);

        let mut scalar = SparseLu::<Complex>::new(symbolic, &pattern).unwrap();
        let vals: Vec<Complex> = g
            .iter()
            .zip(&c)
            .map(|(&gv, &cv)| Complex::new(gv, 1e7 * cv))
            .collect();
        scalar.refactor(&vals).unwrap();
        assert_eq!(lanes[0], scalar.solve(&b).unwrap());
    }

    #[test]
    fn singular_lane_fails_the_chunk() {
        let (pattern, g, c) = ladder_slots(4);
        let symbolic = Arc::new(SymbolicLu::analyze(&pattern).unwrap());
        let mut soa = SoaLu::new(symbolic, &pattern, SOA_LANES).unwrap();
        // All-zero slot values underflow the first pivot in every lane.
        let zeros = vec![0.0; g.len()];
        assert!(matches!(
            soa.refactor_gc(&zeros, &zeros, &[1e6, 1e7]),
            Err(LinalgError::Singular { .. })
        ));
        assert!(soa.solve_broadcast(&[Complex::ONE; 4]).is_err());
        // A subsequent good refactor recovers.
        soa.refactor_gc(&g, &c, &[1e6]).unwrap();
        assert!(soa.solve_broadcast(&[Complex::ONE; 4]).is_ok());
    }
}
