//! Sparse LU factorisation with a symbolic phase that is computed once per
//! sparsity pattern and reused across numeric refactorisations.
//!
//! The split mirrors how SPICE-class simulators treat MNA systems: the
//! admittance matrix of a circuit has a fixed structure per topology, so the
//! fill-reducing pivot order and the fill pattern of `L`/`U` are derived once
//! ([`SymbolicLu::analyze`], Markowitz ordering with diagonal preference) and
//! every subsequent frequency point or Newton iteration only replays the
//! numeric elimination over that precomputed structure
//! ([`SparseLu::refactor`]).

use super::csr::CsrMatrix;
use super::pattern::SparsityPattern;
use super::scalar::SparseScalar;
use crate::LinalgError;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Squared pivot magnitudes below this are treated as numerically singular,
/// matching the dense complex factorisation in this crate (which compares
/// `abs_sq` against the same constant).
pub(crate) const PIVOT_TINY_SQ: f64 = 1e-300;

/// The reusable symbolic analysis of one sparsity pattern: pivot order chosen
/// by Markowitz cost (with a strong preference for diagonal pivots, which MNA
/// assembly guarantees to be structurally present) and the complete fill
/// pattern of the combined `L + U` factors in permuted CSR layout.
#[derive(Debug, Clone)]
pub struct SymbolicLu {
    n: usize,
    /// Permuted row `k` is original row `row_perm[k]`.
    row_perm: Vec<usize>,
    /// Permuted column `m` is original column `col_perm[m]`.
    col_perm: Vec<usize>,
    row_perm_inv: Vec<usize>,
    col_perm_inv: Vec<usize>,
    /// CSR structure of `L + U` in permuted coordinates (sorted rows).
    lu_row_ptr: Vec<usize>,
    lu_col_idx: Vec<usize>,
    /// Slot of the diagonal entry of each permuted row.
    diag_slot: Vec<usize>,
    /// The pattern this analysis was computed for.
    analyzed: SparsityPattern,
    /// Precomputed scatter map for the analysed pattern itself (the common
    /// case: numeric states are almost always bound to the same pattern).
    self_scatter: Vec<usize>,
}

impl SymbolicLu {
    /// Analyses `pattern`: chooses the pivot order and predicts all fill.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if the pattern is structurally
    /// singular (some row or column can never supply a pivot).
    pub fn analyze(pattern: &SparsityPattern) -> Result<Self, LinalgError> {
        let n = pattern.n();
        let mut rows: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        let mut cols: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        for (r, c, _) in pattern.iter() {
            rows[r].insert(c);
            cols[c].insert(r);
        }
        let mut row_active = vec![true; n];
        let mut col_active = vec![true; n];
        let mut row_perm = Vec::with_capacity(n);
        let mut col_perm = Vec::with_capacity(n);
        // Snapshots of the pivot row / pivot column structure at elimination
        // time, in original coordinates; converted to permuted CSR below.
        let mut u_cols: Vec<Vec<usize>> = Vec::with_capacity(n);
        let mut l_rows: Vec<Vec<usize>> = Vec::with_capacity(n);

        for k in 0..n {
            // Markowitz pivot selection: diagonal candidates first (numeric
            // safety: MNA diagonals carry GMIN and dominate their row), with
            // an off-diagonal fallback for general patterns.
            let mut best: Option<(usize, usize, usize)> = None; // (cost, r, c)
            for r in (0..n).filter(|&r| row_active[r]) {
                if rows[r].contains(&r) && col_active[r] {
                    let cost = (rows[r].len() - 1) * (cols[r].len() - 1);
                    if best.is_none_or(|(bc, br, _)| cost < bc || (cost == bc && r < br)) {
                        best = Some((cost, r, r));
                    }
                }
            }
            if best.is_none() {
                for r in (0..n).filter(|&r| row_active[r]) {
                    for &c in &rows[r] {
                        let cost = (rows[r].len() - 1) * (cols[c].len() - 1);
                        if best.is_none_or(|(bc, ..)| cost < bc) {
                            best = Some((cost, r, c));
                        }
                    }
                }
            }
            let Some((_, pr, pc)) = best else {
                return Err(LinalgError::Singular { pivot: k });
            };

            let u_snapshot: Vec<usize> = rows[pr].iter().copied().collect();
            let l_snapshot: Vec<usize> = cols[pc].iter().copied().filter(|&i| i != pr).collect();

            // Fill: eliminating (pr, pc) connects every remaining row with an
            // entry in column pc to every remaining column of row pr.
            for &i in &l_snapshot {
                for &j in &u_snapshot {
                    if j != pc && rows[i].insert(j) {
                        cols[j].insert(i);
                    }
                }
            }
            // Detach the pivot row and column from the remaining structure.
            for &j in &u_snapshot {
                cols[j].remove(&pr);
            }
            for &i in &l_snapshot {
                rows[i].remove(&pc);
            }
            rows[pr].clear();
            cols[pc].clear();
            row_active[pr] = false;
            col_active[pc] = false;

            row_perm.push(pr);
            col_perm.push(pc);
            u_cols.push(u_snapshot);
            l_rows.push(l_snapshot);
        }

        let mut row_perm_inv = vec![0usize; n];
        let mut col_perm_inv = vec![0usize; n];
        for k in 0..n {
            row_perm_inv[row_perm[k]] = k;
            col_perm_inv[col_perm[k]] = k;
        }

        // Assemble the permuted L+U structure: U entries come from the pivot
        // row snapshots, L entries from the pivot column snapshots.
        let mut per_row: Vec<Vec<usize>> = vec![Vec::new(); n];
        for k in 0..n {
            for &j in &u_cols[k] {
                per_row[k].push(col_perm_inv[j]);
            }
            for &i in &l_rows[k] {
                per_row[row_perm_inv[i]].push(k);
            }
        }
        let mut lu_row_ptr = Vec::with_capacity(n + 1);
        let mut lu_col_idx = Vec::new();
        let mut diag_slot = Vec::with_capacity(n);
        lu_row_ptr.push(0);
        for (k, row) in per_row.iter_mut().enumerate() {
            row.sort_unstable();
            let diag_offset = row
                .binary_search(&k)
                .expect("pivot entry is always in its own row");
            diag_slot.push(lu_col_idx.len() + diag_offset);
            lu_col_idx.extend_from_slice(row);
            lu_row_ptr.push(lu_col_idx.len());
        }

        let mut sym = SymbolicLu {
            n,
            row_perm,
            col_perm,
            row_perm_inv,
            col_perm_inv,
            lu_row_ptr,
            lu_col_idx,
            diag_slot,
            analyzed: pattern.clone(),
            self_scatter: Vec::new(),
        };
        sym.self_scatter = sym.compute_scatter(pattern)?;
        Ok(sym)
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total structural nonzeros of `L + U`.
    pub fn nnz_lu(&self) -> usize {
        self.lu_col_idx.len()
    }

    /// Row pointers of the permuted `L + U` structure (crate-internal: the
    /// struct-of-arrays kernels replay the same elimination order).
    pub(crate) fn lu_row_ptr(&self) -> &[usize] {
        &self.lu_row_ptr
    }

    /// Column indices of the permuted `L + U` structure.
    pub(crate) fn lu_col_idx(&self) -> &[usize] {
        &self.lu_col_idx
    }

    /// Diagonal slot of each permuted row.
    pub(crate) fn diag_slot(&self) -> &[usize] {
        &self.diag_slot
    }

    /// Original row of permuted row `k`.
    pub(crate) fn row_perm(&self) -> &[usize] {
        &self.row_perm
    }

    /// Original column of permuted column `k`.
    pub(crate) fn col_perm(&self) -> &[usize] {
        &self.col_perm
    }

    /// Crate-internal access to the slot map (see [`SymbolicLu::scatter_map`]).
    pub(crate) fn scatter_for(&self, pattern: &SparsityPattern) -> Result<Vec<usize>, LinalgError> {
        self.scatter_map(pattern)
    }

    /// Fill-in: nonzeros created beyond the analysed input pattern.
    pub fn fill_in(&self) -> usize {
        self.nnz_lu() - self.analyzed.nnz()
    }

    /// The slot map from an input pattern into the LU value array, reusing
    /// the precomputed map when the pattern equals the analysed one.
    fn scatter_map(&self, pattern: &SparsityPattern) -> Result<Vec<usize>, LinalgError> {
        if *pattern == self.analyzed {
            return Ok(self.self_scatter.clone());
        }
        self.compute_scatter(pattern)
    }

    fn compute_scatter(&self, pattern: &SparsityPattern) -> Result<Vec<usize>, LinalgError> {
        if pattern.n() != self.n {
            return Err(LinalgError::ShapeMismatch {
                op: "sparse_lu_scatter",
                lhs: (self.n, self.n),
                rhs: (pattern.n(), pattern.n()),
            });
        }
        let mut map = Vec::with_capacity(pattern.nnz());
        for (r, c, _) in pattern.iter() {
            let pk = self.row_perm_inv[r];
            let pm = self.col_perm_inv[c];
            let row = &self.lu_col_idx[self.lu_row_ptr[pk]..self.lu_row_ptr[pk + 1]];
            let offset = row.binary_search(&pm).map_err(|_| {
                // The analysed pattern covers every input position, so a miss
                // means this pattern is not the one that was analysed.
                LinalgError::InvalidDimensions {
                    reason: "input pattern does not match the symbolic analysis",
                }
            })?;
            map.push(self.lu_row_ptr[pk] + offset);
        }
        Ok(map)
    }
}

/// Numeric sparse LU state bound to one [`SymbolicLu`] and one input pattern.
///
/// [`SparseLu::refactor`] replays the elimination for new slot values without
/// any allocation or structural work; [`SparseLu::solve`] then serves any
/// number of right-hand sides against the current factorisation.
#[derive(Debug, Clone)]
pub struct SparseLu<T> {
    symbolic: Arc<SymbolicLu>,
    scatter: Vec<usize>,
    luval: Vec<T>,
    /// Reciprocal of each U diagonal, cached at refactor time so the
    /// elimination and the triangular solves multiply instead of divide.
    diag_recip: Vec<T>,
    work: Vec<T>,
    scratch: Vec<T>,
    factored: bool,
    refactor_count: u64,
    /// Element growth of the last factorisation: max |L+U| over max |A|,
    /// squared.  Static (pattern-chosen) pivoting is backward stable exactly
    /// when this stays modest, so callers can skip residual verification for
    /// benign factors and reserve iterative refinement for the rest.
    growth_sq: f64,
}

impl<T: SparseScalar> SparseLu<T> {
    /// Creates the numeric state for `input_pattern` against `symbolic`.
    ///
    /// # Errors
    ///
    /// Returns an error if the pattern dimension or structure does not match
    /// the analysed pattern.
    pub fn new(
        symbolic: Arc<SymbolicLu>,
        input_pattern: &SparsityPattern,
    ) -> Result<Self, LinalgError> {
        let scatter = symbolic.scatter_map(input_pattern)?;
        let nnz_lu = symbolic.nnz_lu();
        let n = symbolic.n;
        Ok(SparseLu {
            symbolic,
            scatter,
            luval: vec![T::ZERO; nnz_lu],
            diag_recip: vec![T::ZERO; n],
            work: vec![T::ZERO; n],
            scratch: vec![T::ZERO; n],
            factored: false,
            refactor_count: 0,
            growth_sq: f64::INFINITY,
        })
    }

    /// The shared symbolic analysis.
    pub fn symbolic(&self) -> &Arc<SymbolicLu> {
        &self.symbolic
    }

    /// Number of numeric refactorisations performed against the shared
    /// symbolic analysis.
    pub fn refactor_count(&self) -> u64 {
        self.refactor_count
    }

    /// Numerically factorises the matrix whose slot values (aligned with the
    /// input pattern passed to [`SparseLu::new`]) are `values`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] if a pivot underflows, and
    /// [`LinalgError::InvalidDimensions`] on a slot-count mismatch.
    pub fn refactor(&mut self, values: &[T]) -> Result<(), LinalgError> {
        if values.len() != self.scatter.len() {
            return Err(LinalgError::InvalidDimensions {
                reason: "slot value count does not match the bound input pattern",
            });
        }
        let sym = &*self.symbolic;
        self.factored = false;
        self.luval.fill(T::ZERO);
        let mut input_max_sq = 0.0f64;
        for (v, &slot) in values.iter().zip(&self.scatter) {
            input_max_sq = input_max_sq.max(v.magnitude_sq());
            self.luval[slot] += *v;
        }
        let mut lu_max_sq = 0.0f64;

        for i in 0..sym.n {
            let row_start = sym.lu_row_ptr[i];
            let row_end = sym.lu_row_ptr[i + 1];
            let diag = sym.diag_slot[i];
            // Scatter row i into the dense workspace.
            for (&c, &v) in sym.lu_col_idx[row_start..row_end]
                .iter()
                .zip(&self.luval[row_start..row_end])
            {
                self.work[c] = v;
            }
            // Eliminate with every earlier pivot row this row touches.
            for s in row_start..diag {
                let m = sym.lu_col_idx[s];
                let factor = self.work[m] * self.diag_recip[m];
                self.work[m] = factor;
                let u_start = sym.diag_slot[m] + 1;
                let u_end = sym.lu_row_ptr[m + 1];
                for (&c, &u) in sym.lu_col_idx[u_start..u_end]
                    .iter()
                    .zip(&self.luval[u_start..u_end])
                {
                    self.work[c] -= factor * u;
                }
            }
            // Gather back and reset the workspace.
            for (&c, v) in sym.lu_col_idx[row_start..row_end]
                .iter()
                .zip(&mut self.luval[row_start..row_end])
            {
                *v = self.work[c];
                lu_max_sq = lu_max_sq.max(v.magnitude_sq());
                self.work[c] = T::ZERO;
            }
            let p = self.luval[diag];
            if p.magnitude_sq() < PIVOT_TINY_SQ || !p.is_finite_scalar() {
                return Err(LinalgError::Singular { pivot: i });
            }
            self.diag_recip[i] = T::ONE / p;
        }
        self.factored = true;
        self.refactor_count += 1;
        self.growth_sq = if input_max_sq > 0.0 {
            lu_max_sq / input_max_sq
        } else {
            f64::INFINITY
        };
        Ok(())
    }

    /// Squared element growth of the current factorisation (see the field
    /// docs); `INFINITY` before the first successful refactor.
    pub fn growth_sq(&self) -> f64 {
        self.growth_sq
    }

    /// Solves `A x = b` against the current factorisation.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidDimensions`] if no factorisation is
    /// current, and [`LinalgError::ShapeMismatch`] on a length mismatch.
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>, LinalgError> {
        let mut scratch = vec![T::ZERO; self.symbolic.n];
        let mut x = b.to_vec();
        self.solve_with_scratch(&mut x, &mut scratch)?;
        Ok(x)
    }

    /// Allocation-free solve: `b` holds the right-hand side on entry and the
    /// solution on exit, using the internal scratch buffer.
    ///
    /// # Errors
    ///
    /// Same as [`SparseLu::solve`].
    pub fn solve_in_place(&mut self, b: &mut [T]) -> Result<(), LinalgError> {
        // Move the scratch out to satisfy the borrow checker (`self` is
        // otherwise only read), then put it back.
        let mut scratch = std::mem::take(&mut self.scratch);
        let result = self.solve_with_scratch(b, &mut scratch);
        self.scratch = scratch;
        result
    }

    fn solve_with_scratch(&self, b: &mut [T], y: &mut [T]) -> Result<(), LinalgError> {
        let sym = &*self.symbolic;
        if !self.factored {
            return Err(LinalgError::InvalidDimensions {
                reason: "solve requires a successful refactor first",
            });
        }
        if b.len() != sym.n || y.len() != sym.n {
            return Err(LinalgError::ShapeMismatch {
                op: "sparse_lu_solve",
                lhs: (sym.n, sym.n),
                rhs: (b.len(), 1),
            });
        }
        // Forward substitution (unit-diagonal L) on the row-permuted RHS.
        for k in 0..sym.n {
            let mut acc = b[sym.row_perm[k]];
            let (start, diag) = (sym.lu_row_ptr[k], sym.diag_slot[k]);
            for (&c, &l) in sym.lu_col_idx[start..diag]
                .iter()
                .zip(&self.luval[start..diag])
            {
                acc -= l * y[c];
            }
            y[k] = acc;
        }
        // Back substitution through U.
        for k in (0..sym.n).rev() {
            let mut acc = y[k];
            let (diag, end) = (sym.diag_slot[k], sym.lu_row_ptr[k + 1]);
            for (&c, &u) in sym.lu_col_idx[diag + 1..end]
                .iter()
                .zip(&self.luval[diag + 1..end])
            {
                acc -= u * y[c];
            }
            y[k] = acc * self.diag_recip[k];
        }
        // Undo the column permutation.
        for k in 0..sym.n {
            b[sym.col_perm[k]] = y[k];
        }
        Ok(())
    }

    /// Whether a factorisation is currently valid.
    pub fn is_factored(&self) -> bool {
        self.factored
    }

    /// Solves `A eᵣ = w` for the unit right-hand side at original row `row`.
    ///
    /// These columns of `A⁻¹` are the building blocks of Sherman–Morrison–
    /// Woodbury corrections (see [`super::RankUpdate`]); they depend only on
    /// the base factorisation, so callers batching many low-rank updates can
    /// solve each distinct row once and share the column.
    ///
    /// # Errors
    ///
    /// Same as [`SparseLu::solve`], plus [`LinalgError::InvalidDimensions`]
    /// when `row` is out of range.
    pub fn solve_unit(&self, row: usize) -> Result<Vec<T>, LinalgError> {
        if row >= self.symbolic.n {
            return Err(LinalgError::InvalidDimensions {
                reason: "unit solve row out of range",
            });
        }
        let mut e = vec![T::ZERO; self.symbolic.n];
        e[row] = T::ONE;
        let mut scratch = vec![T::ZERO; self.symbolic.n];
        self.solve_with_scratch(&mut e, &mut scratch)?;
        Ok(e)
    }

    /// Solves `A x = b` and applies one step of iterative refinement using the
    /// assembled matrix `a`, recovering the accuracy lost to static (pattern-
    /// chosen) pivoting on poorly scaled systems.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`SparseLu::solve`] and of the matrix-vector
    /// product.
    pub fn solve_refined(&self, a: &CsrMatrix<T>, b: &[T]) -> Result<Vec<T>, LinalgError> {
        let mut x = self.solve(b)?;
        let ax = a.matvec(&x)?;
        let residual: Vec<T> = b.iter().zip(&ax).map(|(&bi, &axi)| bi - axi).collect();
        let correction = self.solve(&residual)?;
        for (xi, ci) in x.iter_mut().zip(&correction) {
            *xi += *ci;
        }
        Ok(x)
    }
}

/// Convenience: analyse + factor a CSR matrix in one call.
///
/// # Errors
///
/// Propagates [`SymbolicLu::analyze`] and [`SparseLu::refactor`] errors.
pub fn splu<T: SparseScalar>(a: &CsrMatrix<T>) -> Result<SparseLu<T>, LinalgError> {
    let symbolic = Arc::new(SymbolicLu::analyze(a.pattern())?);
    let mut numeric = SparseLu::new(symbolic, a.pattern())?;
    numeric.refactor(a.values())?;
    Ok(numeric)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::TripletBuilder;
    use crate::Complex;

    fn tridiagonal(n: usize) -> CsrMatrix<f64> {
        let mut b = TripletBuilder::new(n);
        for i in 0..n {
            b.push(i, i, 2.5);
            if i + 1 < n {
                b.push(i, i + 1, -1.0);
                b.push(i + 1, i, -1.0);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn solves_tridiagonal_system_exactly() {
        let a = tridiagonal(12);
        let lu = splu(&a).unwrap();
        let b: Vec<f64> = (0..12).map(|i| (i as f64 * 0.7).sin()).collect();
        let x = lu.solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        for (bi, ri) in b.iter().zip(&back) {
            assert!((bi - ri).abs() < 1e-12, "{bi} vs {ri}");
        }
    }

    #[test]
    fn tridiagonal_has_no_fill_under_markowitz() {
        let a = tridiagonal(50);
        let sym = SymbolicLu::analyze(a.pattern()).unwrap();
        // A tridiagonal matrix factorises with zero fill when eliminated in
        // a fill-minimising order.
        assert_eq!(sym.fill_in(), 0, "fill {}", sym.fill_in());
    }

    #[test]
    fn symbolic_reuse_across_refactors() {
        let a = tridiagonal(8);
        let sym = Arc::new(SymbolicLu::analyze(a.pattern()).unwrap());
        let mut lu = SparseLu::new(sym.clone(), a.pattern()).unwrap();
        for scale in [1.0f64, 2.0, 0.5] {
            let values: Vec<f64> = a.values().iter().map(|v| v * scale).collect();
            lu.refactor(&values).unwrap();
            let b = vec![1.0; 8];
            let x = lu.solve(&b).unwrap();
            let scaled = CsrMatrix::from_values(a.pattern().clone(), values).unwrap();
            let back = scaled.matvec(&x).unwrap();
            for (bi, ri) in b.iter().zip(&back) {
                assert!((bi - ri).abs() < 1e-12);
            }
        }
        assert_eq!(lu.refactor_count(), 3);
        assert!(Arc::ptr_eq(lu.symbolic(), &sym));
    }

    #[test]
    fn solve_in_place_matches_allocating_solve() {
        let a = tridiagonal(9);
        let mut lu = splu(&a).unwrap();
        let b: Vec<f64> = (0..9).map(|i| (i as f64).cos()).collect();
        let x = lu.solve(&b).unwrap();
        let mut inplace = b.clone();
        lu.solve_in_place(&mut inplace).unwrap();
        assert_eq!(x, inplace);
    }

    #[test]
    fn complex_system_round_trips() {
        let mut b = TripletBuilder::new(4);
        for i in 0..4 {
            b.push(i, i, Complex::new(3.0, 1.0));
        }
        b.push(0, 2, Complex::new(0.5, -0.5));
        b.push(3, 1, Complex::new(-0.25, 0.75));
        let a = b.build().unwrap();
        let lu = splu(&a).unwrap();
        let rhs: Vec<Complex> = (0..4).map(|i| Complex::new(i as f64, -1.0)).collect();
        let x = lu.solve(&rhs).unwrap();
        let back = a.matvec(&x).unwrap();
        for (bi, ri) in rhs.iter().zip(&back) {
            assert!((*bi - *ri).abs() < 1e-12);
        }
    }

    #[test]
    fn structurally_singular_pattern_is_rejected() {
        // Row 1 is entirely empty: no pivot can ever be found for it.
        let pattern = SparsityPattern::from_positions(3, &[(0, 0), (2, 2), (0, 2)]).unwrap();
        assert!(matches!(
            SymbolicLu::analyze(&pattern),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn numerically_singular_values_are_rejected() {
        let a = tridiagonal(3);
        let sym = Arc::new(SymbolicLu::analyze(a.pattern()).unwrap());
        let mut lu = SparseLu::new(sym, a.pattern()).unwrap();
        // All-zero values: first pivot underflows.
        assert!(matches!(
            lu.refactor(&vec![0.0; a.nnz()]),
            Err(LinalgError::Singular { .. })
        ));
        // And solving without a current factorisation is an error.
        assert!(lu.solve(&[1.0, 1.0, 1.0]).is_err());
    }

    #[test]
    fn off_diagonal_pivot_fallback_works() {
        // Anti-diagonal pattern: no structural diagonal at all.
        let mut b = TripletBuilder::new(3);
        b.push(0, 2, 2.0);
        b.push(1, 1, 3.0);
        b.push(2, 0, 4.0);
        let a = b.build().unwrap();
        let lu = splu(&a).unwrap();
        let x = lu.solve(&[2.0, 3.0, 4.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
        assert!((x[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mismatched_pattern_is_rejected() {
        let a = tridiagonal(4);
        let sym = Arc::new(SymbolicLu::analyze(a.pattern()).unwrap());
        let dense_pattern = SparsityPattern::from_positions(
            4,
            &(0..4)
                .flat_map(|r| (0..4).map(move |c| (r, c)))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        // The denser pattern has positions the symbolic analysis never saw.
        assert!(SparseLu::<f64>::new(sym, &dense_pattern).is_err());
    }

    #[test]
    fn refinement_tightens_residuals() {
        let a = tridiagonal(20);
        let lu = splu(&a).unwrap();
        let b: Vec<f64> = (0..20).map(|i| 1e6 * ((i * 13 % 7) as f64 - 3.0)).collect();
        let x = lu.solve_refined(&a, &b).unwrap();
        let back = a.matvec(&x).unwrap();
        for (bi, ri) in b.iter().zip(&back) {
            assert!((bi - ri).abs() < 1e-6);
        }
    }
}
