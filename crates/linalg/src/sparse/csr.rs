use super::pattern::SparsityPattern;
use super::scalar::SparseScalar;
use crate::LinalgError;
use std::sync::Arc;

/// A square sparse matrix in CSR form: an immutable, shareable
/// [`SparsityPattern`] plus one value per structural nonzero slot.
///
/// The pattern is behind an `Arc` so repeated assemblies over the same
/// structure (every frequency point of an AC sweep, every Newton iteration)
/// share it instead of rebuilding it.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix<T> {
    pattern: Arc<SparsityPattern>,
    values: Vec<T>,
}

impl<T: SparseScalar> CsrMatrix<T> {
    /// Creates a zero-valued matrix over `pattern`.
    pub fn zeros(pattern: Arc<SparsityPattern>) -> Self {
        let nnz = pattern.nnz();
        CsrMatrix {
            pattern,
            values: vec![T::ZERO; nnz],
        }
    }

    /// Wraps explicit slot values over `pattern`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidDimensions`] if `values.len()` differs
    /// from the pattern's slot count.
    pub fn from_values(pattern: Arc<SparsityPattern>, values: Vec<T>) -> Result<Self, LinalgError> {
        if values.len() != pattern.nnz() {
            return Err(LinalgError::InvalidDimensions {
                reason: "value array length must equal pattern nnz",
            });
        }
        Ok(CsrMatrix { pattern, values })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.pattern.n()
    }

    /// Number of structural nonzeros.
    pub fn nnz(&self) -> usize {
        self.pattern.nnz()
    }

    /// The shared structure.
    pub fn pattern(&self) -> &Arc<SparsityPattern> {
        &self.pattern
    }

    /// Slot values in CSR order.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Mutable slot values (the restamping hook: structure cannot change).
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.values
    }

    /// Value at `(r, c)`; structural zeros read as `T::ZERO`.
    pub fn get(&self, r: usize, c: usize) -> T {
        self.pattern.slot(r, c).map_or(T::ZERO, |s| self.values[s])
    }

    /// Adds `v` to the slot at `(r, c)` (the MNA stamp operation).
    ///
    /// # Panics
    ///
    /// Panics if `(r, c)` is structurally zero: stamps may only touch slots
    /// that were declared when the pattern was built.
    pub fn stamp(&mut self, r: usize, c: usize, v: T) {
        let slot = self
            .pattern
            .slot(r, c)
            .unwrap_or_else(|| panic!("stamp at structurally-zero position ({r}, {c})"));
        self.values[slot] += v;
    }

    /// Resets every slot to zero, keeping the structure.
    pub fn clear(&mut self) {
        self.values.fill(T::ZERO);
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `x.len() != self.n()`.
    pub fn matvec(&self, x: &[T]) -> Result<Vec<T>, LinalgError> {
        let mut y = vec![T::ZERO; self.n()];
        self.matvec_into(x, &mut y)?;
        Ok(y)
    }

    /// Allocation-free matrix–vector product `y = self * x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] on a length mismatch.
    pub fn matvec_into(&self, x: &[T], y: &mut [T]) -> Result<(), LinalgError> {
        let n = self.n();
        if x.len() != n || y.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "sparse_matvec",
                lhs: (n, n),
                rhs: (x.len(), 1),
            });
        }
        y.fill(T::ZERO);
        for (r, c, s) in self.pattern.iter() {
            y[r] += self.values[s] * x[c];
        }
        Ok(())
    }
}

/// Accumulating triplet (COO) builder for [`CsrMatrix`].
///
/// Entries may be pushed in any order; duplicates are summed when the matrix
/// is built.  This is the convenient one-shot construction path — code that
/// re-assembles over a fixed structure should instead build a
/// [`SparsityPattern`] once and write slots directly.
#[derive(Debug, Clone)]
pub struct TripletBuilder<T> {
    n: usize,
    entries: Vec<(usize, usize, T)>,
}

impl<T: SparseScalar> TripletBuilder<T> {
    /// Creates a builder for an `n x n` matrix.
    pub fn new(n: usize) -> Self {
        TripletBuilder {
            n,
            entries: Vec::new(),
        }
    }

    /// Records `a[(r, c)] += v`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of range.
    pub fn push(&mut self, r: usize, c: usize, v: T) {
        assert!(r < self.n && c < self.n, "triplet index out of bounds");
        self.entries.push((r, c, v));
    }

    /// Number of raw (pre-dedup) triplets recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no triplets have been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Builds the CSR matrix, summing duplicate positions.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidDimensions`] if `n == 0`.
    pub fn build(&self) -> Result<CsrMatrix<T>, LinalgError> {
        let positions: Vec<(usize, usize)> = self.entries.iter().map(|&(r, c, _)| (r, c)).collect();
        let pattern = Arc::new(SparsityPattern::from_positions(self.n, &positions)?);
        let mut m = CsrMatrix::zeros(pattern);
        for &(r, c, v) in &self.entries {
            m.stamp(r, c, v);
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_accumulate_duplicates() {
        let mut b = TripletBuilder::new(3);
        b.push(0, 0, 1.0);
        b.push(0, 0, 2.0);
        b.push(2, 1, -1.0);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        let m = b.build().unwrap();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.get(2, 1), -1.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn matvec_matches_dense_computation() {
        let mut b = TripletBuilder::new(3);
        b.push(0, 0, 2.0);
        b.push(0, 2, 1.0);
        b.push(1, 1, -3.0);
        b.push(2, 0, 4.0);
        let m = b.build().unwrap();
        let y = m.matvec(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(y, vec![5.0, -6.0, 4.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn restamping_keeps_structure() {
        let mut b = TripletBuilder::new(2);
        b.push(0, 0, 1.0);
        b.push(1, 1, 1.0);
        let mut m = b.build().unwrap();
        let pattern = m.pattern().clone();
        m.clear();
        m.stamp(0, 0, 5.0);
        assert_eq!(m.get(0, 0), 5.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert!(Arc::ptr_eq(&pattern, m.pattern()));
    }

    #[test]
    #[should_panic(expected = "structurally-zero")]
    fn stamping_outside_pattern_panics() {
        let mut b = TripletBuilder::new(2);
        b.push(0, 0, 1.0);
        let mut m = b.build().unwrap();
        m.stamp(0, 1, 1.0);
    }

    #[test]
    fn from_values_validates_length() {
        let pattern = Arc::new(SparsityPattern::from_positions(2, &[(0, 0), (1, 1)]).unwrap());
        assert!(CsrMatrix::from_values(pattern.clone(), vec![1.0]).is_err());
        let m = CsrMatrix::from_values(pattern, vec![1.0, 2.0]).unwrap();
        assert_eq!(m.get(1, 1), 2.0);
    }
}
