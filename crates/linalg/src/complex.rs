use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// Used by the AC small-signal solver, where every admittance stamp is of the
/// form `g + j*omega*c`.
///
/// # Examples
///
/// ```
/// use gcnrl_linalg::Complex;
///
/// let z = Complex::new(3.0, 4.0);
/// assert_eq!(z.abs(), 5.0);
/// assert_eq!((z * z.conj()).re, 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `j`.
    pub const J: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    pub fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Magnitude (modulus).
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude; cheaper than [`Complex::abs`] when only ordering matters.
    pub fn abs_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in radians, in `(-pi, pi]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse.
    ///
    /// Returns an infinite value when `self` is zero, mirroring `1.0 / 0.0`.
    pub fn recip(self) -> Self {
        let d = self.abs_sq();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Returns `true` if both components are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    // Division via the reciprocal is the numerically standard form here.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert_eq!(a + b, Complex::new(-2.0, 2.5));
        assert_eq!(a - a, Complex::ZERO);
        assert_eq!(a * Complex::ONE, a);
        assert_eq!(Complex::J * Complex::J, Complex::new(-1.0, 0.0));
    }

    #[test]
    fn division_and_reciprocal() {
        let a = Complex::new(1.0, 2.0);
        let r = a / a;
        assert!((r.re - 1.0).abs() < 1e-14);
        assert!(r.im.abs() < 1e-14);
        let inv = a.recip();
        let prod = a * inv;
        assert!((prod.re - 1.0).abs() < 1e-14);
    }

    #[test]
    fn magnitude_and_phase() {
        let z = Complex::new(0.0, 2.0);
        assert_eq!(z.abs(), 2.0);
        assert!((z.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-14);
        assert_eq!(Complex::new(3.0, 4.0).abs_sq(), 25.0);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, -1.0).to_string(), "1-1j");
        assert_eq!(Complex::new(1.0, 1.0).to_string(), "1+1j");
    }

    #[test]
    fn from_f64() {
        let z: Complex = 2.5.into();
        assert_eq!(z, Complex::new(2.5, 0.0));
    }
}
