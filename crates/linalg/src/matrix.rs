use crate::LinalgError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is the workhorse behind the neural-network tensors and the
/// Gaussian-process covariance matrices. It intentionally keeps a small API
/// surface: construction, element access, and the handful of algebraic
/// operations the rest of the workspace needs.
///
/// # Examples
///
/// ```
/// use gcnrl_linalg::Matrix;
///
/// # fn main() -> Result<(), gcnrl_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c[(1, 0)], 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        m.data.fill(value);
        m
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidDimensions`] if `rows` is empty, a row is
    /// empty, or the rows have different lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::InvalidDimensions {
                reason: "matrix must have at least one row and one column",
            });
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(LinalgError::InvalidDimensions {
                reason: "all rows must have the same length",
            });
        }
        let mut m = Matrix::zeros(rows.len(), cols);
        for (i, row) in rows.iter().enumerate() {
            m.data[i * cols..(i + 1) * cols].copy_from_slice(row);
        }
        Ok(m)
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidDimensions`] if `data.len() != rows * cols`
    /// or either dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::InvalidDimensions {
                reason: "matrix dimensions must be non-zero",
            });
        }
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidDimensions {
                reason: "data length must equal rows * cols",
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a column vector (an `n x 1` matrix) from a slice.
    pub fn column(values: &[f64]) -> Self {
        let mut m = Matrix::zeros(values.len().max(1), 1);
        for (i, v) in values.iter().enumerate() {
            m[(i, 0)] = *v;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow one row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow one row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy one column into a new `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column index out of bounds");
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, b) in out_row.iter_mut().zip(rhs_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix product `self^T * rhs` without materialising the transpose.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.rows() != rhs.rows()`.
    pub fn matmul_transa(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.rows != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul_transa",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for i in 0..self.rows {
            let lhs_row = self.row(i);
            let rhs_row = rhs.row(i);
            for (k, &a) in lhs_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                for (o, &b) in out.row_mut(k).iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix product `self * rhs^T` without materialising the transpose.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `self.cols() != rhs.cols()`.
    pub fn matmul_transb(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul_transb",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let lhs_row = self.row(i);
            for j in 0..rhs.rows {
                out[(i, j)] = lhs_row.iter().zip(rhs.row(j)).map(|(a, b)| a * b).sum();
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if v.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the shapes differ.
    pub fn add_elem(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the shapes differ.
    pub fn sub_elem(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if the shapes differ.
    pub fn hadamard(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        self.zip_with(rhs, "hadamard", |a, b| a * b)
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix, LinalgError> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| f(*a, *b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Multiply every element by `s`.
    pub fn scaled(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// Apply `f` element-wise, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| f(*v)).collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute value of any element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// Returns `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        self.add_elem(rhs).expect("matrix addition shape mismatch")
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        self.sub_elem(rhs)
            .expect("matrix subtraction shape mismatch")
    }
}

impl Mul for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
            .expect("matrix multiplication shape mismatch")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:10.4e}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert_eq!(z.sum(), 0.0);

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.sum(), 3.0);
    }

    #[test]
    fn from_rows_validates() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]).is_err());
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    fn from_vec_validates() {
        assert!(Matrix::from_vec(0, 1, vec![]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn transposed_products_match_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |r, c| ((r * 5 + c * 3) % 7) as f64 - 2.0);
        let b = Matrix::from_fn(4, 2, |r, c| ((r + 2 * c) % 5) as f64 * 0.5);
        assert_eq!(
            a.matmul_transa(&b).unwrap(),
            a.transpose().matmul(&b).unwrap()
        );
        let c = Matrix::from_fn(5, 3, |r, c| (r as f64 - c as f64) * 0.25);
        assert_eq!(
            a.matmul_transb(&c).unwrap(),
            a.matmul(&c.transpose()).unwrap()
        );
        assert!(a.matmul_transa(&c).is_err());
        assert!(a.matmul_transb(&b).is_err());
    }

    #[test]
    fn matvec_works() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let y = a.matvec(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 2, |r, c| (r * 10 + c) as f64);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(1, 2)], a[(2, 1)]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::filled(2, 2, 3.0);
        let b = Matrix::filled(2, 2, 2.0);
        assert_eq!(a.add_elem(&b).unwrap()[(0, 0)], 5.0);
        assert_eq!(a.sub_elem(&b).unwrap()[(0, 0)], 1.0);
        assert_eq!(a.hadamard(&b).unwrap()[(0, 0)], 6.0);
        assert_eq!(a.scaled(2.0)[(1, 1)], 6.0);
        assert_eq!(a.map(|v| v * v)[(0, 1)], 9.0);
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
        assert!(!a.has_non_finite());
        let b = Matrix::from_rows(&[&[f64::NAN]]).unwrap();
        assert!(b.has_non_finite());
    }

    #[test]
    fn operator_overloads() {
        let a = Matrix::identity(2);
        let b = Matrix::identity(2);
        assert_eq!((&a + &b)[(0, 0)], 2.0);
        assert_eq!((&a - &b)[(0, 0)], 0.0);
        assert_eq!((&a * &b), a);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let a = Matrix::zeros(2, 2);
        let _ = a[(2, 0)];
    }

    #[test]
    fn implements_serde_traits() {
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<Matrix>();
    }
}
