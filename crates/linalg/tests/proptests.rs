//! Property-based tests for the linear-algebra kernel.

use gcnrl_linalg::{Cholesky, Complex, LuDecomposition, Matrix};
use proptest::prelude::*;

fn small_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0f64..10.0, n * n)
        .prop_map(move |data| Matrix::from_vec(n, n, data).expect("sized"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (A^T)^T == A for arbitrary matrices.
    #[test]
    fn transpose_is_involution(data in prop::collection::vec(-100.0f64..100.0, 12)) {
        let m = Matrix::from_vec(3, 4, data).unwrap();
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    /// LU solve reproduces the right-hand side: A * solve(A, b) ~= b
    /// for diagonally dominant (hence non-singular) matrices.
    #[test]
    fn lu_solve_round_trip(m in small_matrix(4), b in prop::collection::vec(-5.0f64..5.0, 4)) {
        let mut a = m;
        for i in 0..4 {
            let row_sum: f64 = (0..4).map(|j| a[(i, j)].abs()).sum();
            a[(i, i)] += row_sum + 1.0;
        }
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        for (bi, ri) in b.iter().zip(&back) {
            prop_assert!((bi - ri).abs() < 1e-6);
        }
    }

    /// Cholesky of A^T A + eps I always succeeds and reconstructs the matrix.
    #[test]
    fn cholesky_reconstruction(m in small_matrix(3)) {
        let spd = m.transpose().matmul(&m).unwrap();
        let spd = spd.add_elem(&Matrix::identity(3).scaled(1e-3)).unwrap();
        let chol = Cholesky::new(&spd).unwrap();
        let l = chol.lower();
        let back = l.matmul(&l.transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((back[(i, j)] - spd[(i, j)]).abs() < 1e-8);
            }
        }
    }

    /// Matrix multiplication is associative (within numerical tolerance).
    #[test]
    fn matmul_associative(a in small_matrix(3), b in small_matrix(3), c in small_matrix(3)) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((left[(i, j)] - right[(i, j)]).abs() < 1e-6);
            }
        }
    }

    /// Complex multiplication magnitude is multiplicative: |ab| == |a||b|.
    #[test]
    fn complex_abs_multiplicative(ar in -10.0f64..10.0, ai in -10.0f64..10.0,
                                  br in -10.0f64..10.0, bi in -10.0f64..10.0) {
        let a = Complex::new(ar, ai);
        let b = Complex::new(br, bi);
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-9);
    }
}
