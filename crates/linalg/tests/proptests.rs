//! Property-based tests for the linear-algebra kernel.

use gcnrl_linalg::sparse::{splu, TripletBuilder};
use gcnrl_linalg::{Cholesky, Complex, LuDecomposition, Matrix};
use proptest::prelude::*;

fn small_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0f64..10.0, n * n)
        .prop_map(move |data| Matrix::from_vec(n, n, data).expect("sized"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (A^T)^T == A for arbitrary matrices.
    #[test]
    fn transpose_is_involution(data in prop::collection::vec(-100.0f64..100.0, 12)) {
        let m = Matrix::from_vec(3, 4, data).unwrap();
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    /// LU solve reproduces the right-hand side: A * solve(A, b) ~= b
    /// for diagonally dominant (hence non-singular) matrices.
    #[test]
    fn lu_solve_round_trip(m in small_matrix(4), b in prop::collection::vec(-5.0f64..5.0, 4)) {
        let mut a = m;
        for i in 0..4 {
            let row_sum: f64 = (0..4).map(|j| a[(i, j)].abs()).sum();
            a[(i, i)] += row_sum + 1.0;
        }
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        for (bi, ri) in b.iter().zip(&back) {
            prop_assert!((bi - ri).abs() < 1e-6);
        }
    }

    /// Cholesky of A^T A + eps I always succeeds and reconstructs the matrix.
    #[test]
    fn cholesky_reconstruction(m in small_matrix(3)) {
        let spd = m.transpose().matmul(&m).unwrap();
        let spd = spd.add_elem(&Matrix::identity(3).scaled(1e-3)).unwrap();
        let chol = Cholesky::new(&spd).unwrap();
        let l = chol.lower();
        let back = l.matmul(&l.transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((back[(i, j)] - spd[(i, j)]).abs() < 1e-8);
            }
        }
    }

    /// Matrix multiplication is associative (within numerical tolerance).
    #[test]
    fn matmul_associative(a in small_matrix(3), b in small_matrix(3), c in small_matrix(3)) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((left[(i, j)] - right[(i, j)]).abs() < 1e-6);
            }
        }
    }

    /// The sparse symbolic-once LU agrees with the dense LU on random sparse
    /// diagonally dominant systems.
    #[test]
    fn sparse_lu_matches_dense_lu(
        offdiag in prop::collection::vec(-5.0f64..5.0, 12),
        rows in prop::collection::vec(0usize..6, 12),
        cols in prop::collection::vec(0usize..6, 12),
        b in prop::collection::vec(-5.0f64..5.0, 6),
    ) {
        let n = 6;
        let mut dense = Matrix::zeros(n, n);
        let mut triplets = TripletBuilder::new(n);
        for ((&v, &r), &c) in offdiag.iter().zip(&rows).zip(&cols) {
            dense[(r, c)] += v;
            triplets.push(r, c, v);
        }
        // Diagonal dominance keeps both factorisations comfortably stable.
        for i in 0..n {
            let row_sum: f64 = (0..n).map(|j| dense[(i, j)].abs()).sum();
            dense[(i, i)] += row_sum + 1.0;
            triplets.push(i, i, row_sum + 1.0);
        }
        let sparse = triplets.build().unwrap();
        let x_dense = LuDecomposition::new(&dense).unwrap().solve(&b).unwrap();
        let x_sparse = splu(&sparse).unwrap().solve(&b).unwrap();
        for (d, s) in x_dense.iter().zip(&x_sparse) {
            prop_assert!((d - s).abs() < 1e-9 * (1.0 + d.abs()), "{} vs {}", d, s);
        }
    }

    /// Transpose-free matrix products equal their explicit-transpose forms.
    #[test]
    fn transposed_products_agree(a in small_matrix(4), b in small_matrix(4)) {
        let ta = a.matmul_transa(&b).unwrap();
        let ta_ref = a.transpose().matmul(&b).unwrap();
        let tb = a.matmul_transb(&b).unwrap();
        let tb_ref = a.matmul(&b.transpose()).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                prop_assert!((ta[(i, j)] - ta_ref[(i, j)]).abs() < 1e-12);
                prop_assert!((tb[(i, j)] - tb_ref[(i, j)]).abs() < 1e-12);
            }
        }
    }

    /// Complex multiplication magnitude is multiplicative: |ab| == |a||b|.
    #[test]
    fn complex_abs_multiplicative(ar in -10.0f64..10.0, ai in -10.0f64..10.0,
                                  br in -10.0f64..10.0, bi in -10.0f64..10.0) {
        let a = Complex::new(ar, ai);
        let b = Complex::new(br, bi);
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-9);
    }
}
