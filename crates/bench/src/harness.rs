//! Shared experiment-running machinery.

use gcnrl::{
    AgentKind, EngineConfig, EvalService, ExecStats, FomConfig, GcnRlDesigner, RunHistory,
    ServiceConfig, SessionHandle, SizingEnv, StateEncoding,
};
use gcnrl_baselines::{
    bayesian_optimization, evolution_strategy, human_expert, mace, random_search,
};
use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};
use gcnrl_rl::DdpgConfig;
use serde::Serialize;

/// All methods compared in the paper's Table I, in table order.
pub const METHODS: [&str; 7] = ["Human", "Random", "ES", "BO", "MACE", "NG-RL", "GCN-RL"];

/// Budget / seed configuration of one experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ExperimentConfig {
    /// Simulation budget per optimisation run (the paper uses 10 000).
    pub budget: usize,
    /// Warm-up episodes for the RL methods.
    pub warmup: usize,
    /// Number of independent repetitions (the paper uses 3).
    pub seeds: usize,
    /// Random-sampling budget used to calibrate the FoM normalisation
    /// (the paper uses 5000).
    pub calibration: usize,
    /// Speculative rollout width `k` for the RL methods (candidates proposed
    /// and batch-evaluated per policy step; 1 = classic serial exploration).
    pub rollout_k: usize,
}

impl ExperimentConfig {
    /// A configuration small enough for CI-style smoke runs.
    pub fn smoke() -> Self {
        ExperimentConfig {
            budget: 40,
            warmup: 15,
            seeds: 1,
            calibration: 20,
            rollout_k: 1,
        }
    }
}

/// Reads the experiment scale from environment variables, falling back to the
/// given defaults: `GCNRL_BUDGET`, `GCNRL_WARMUP`, `GCNRL_SEEDS`,
/// `GCNRL_CALIBRATION`, `GCNRL_ROLLOUT_K`.
///
/// # Panics
///
/// Panics when a variable is set but unparseable (see
/// [`gcnrl_exec::env_usize`]) — a typo in a launch script must not silently
/// run the default experiment scale.
pub fn budget_from_env(default: ExperimentConfig) -> ExperimentConfig {
    let read = |name: &str, fallback: usize| gcnrl_exec::env_usize(name).unwrap_or(fallback);
    ExperimentConfig {
        budget: read("GCNRL_BUDGET", default.budget),
        warmup: read("GCNRL_WARMUP", default.warmup),
        seeds: read("GCNRL_SEEDS", default.seeds),
        calibration: read("GCNRL_CALIBRATION", default.calibration),
        rollout_k: read("GCNRL_ROLLOUT_K", default.rollout_k).max(1),
    }
}

/// Mean and standard deviation of one method's best FoM over repeated runs,
/// plus the per-run learning curves (for the figures).
#[derive(Debug, Clone, Serialize)]
pub struct MethodResult {
    /// Method name as used in the paper's tables.
    pub method: String,
    /// Best FoM per seed.
    pub best_foms: Vec<f64>,
    /// Best-so-far learning curve of the best-performing seed.
    pub best_curve: Vec<f64>,
    /// Metric values of the overall best design.
    pub best_metrics: Vec<(String, f64)>,
    /// Evaluation-engine statistics summed over the seeds (throughput, cache
    /// hit rate, wall time inside the engine).
    pub exec: Option<ExecStats>,
}

impl MethodResult {
    fn from_histories(method: &str, histories: Vec<RunHistory>) -> Self {
        let best_foms: Vec<f64> = histories.iter().map(|h| h.best_fom()).collect();
        let best_idx = best_foms
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let best_metrics = histories[best_idx]
            .best_report
            .as_ref()
            .map(|r| r.iter().map(|(k, v)| (k.to_owned(), v)).collect())
            .unwrap_or_default();
        MethodResult {
            method: method.to_owned(),
            best_curve: histories[best_idx].best_curve(),
            best_foms,
            best_metrics,
            exec: None,
        }
    }

    /// Mean best FoM across seeds.
    pub fn mean(&self) -> f64 {
        self.best_foms.iter().sum::<f64>() / self.best_foms.len().max(1) as f64
    }

    /// Standard deviation of the best FoM across seeds.
    pub fn std(&self) -> f64 {
        let m = self.mean();
        let n = self.best_foms.len().max(1) as f64;
        (self.best_foms.iter().map(|f| (f - m).powi(2)).sum::<f64>() / n).sqrt()
    }

    /// `mean ± std` formatted like the paper's tables.
    pub fn formatted(&self) -> String {
        if self.best_foms.len() > 1 {
            format!("{:.2} ± {:.2}", self.mean(), self.std())
        } else {
            format!("{:.2}", self.mean())
        }
    }
}

/// A named learning-curve series (for figure binaries).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SeriesSummary {
    /// Series label (method or condition).
    pub label: String,
    /// Best-so-far FoM per episode.
    pub curve: Vec<f64>,
}

/// Builds a calibrated environment for a benchmark at a node.
pub fn make_env(benchmark: Benchmark, node: &TechnologyNode, cfg: &ExperimentConfig) -> SizingEnv {
    make_env_with_engine(benchmark, node, cfg, EngineConfig::from_env())
}

/// The evaluation-server address the benches should ride, when set
/// (`GCNRL_SERVE_ADDR=host:port`). With the variable unset every bench run
/// owns its local engine/service as before.
pub fn serve_addr() -> Option<String> {
    std::env::var("GCNRL_SERVE_ADDR")
        .ok()
        .filter(|addr| !addr.is_empty())
}

/// The remote pipeline window (`GCNRL_SERVE_PIPELINE`): how many batches a
/// remote backend keeps in flight concurrently. Defaults to the client
/// default when unset; `1` reproduces the strictly blocking v2 behaviour.
pub fn serve_pipeline() -> Option<usize> {
    gcnrl_exec::env_usize("GCNRL_SERVE_PIPELINE")
}

/// The evaluation backend a bench run should use for `(benchmark, node)`:
/// a [`ShardedBackend`](gcnrl_serve::ShardedBackend) over the ring named by
/// `GCNRL_SERVE_ADDRS` when that knob is set, else a
/// [`RemoteBackend`](gcnrl_serve::RemoteBackend) session on the single
/// shared server named by `GCNRL_SERVE_ADDR`, else a session of a fresh
/// local [`EvalService`] over `engine`. Results are bit-identical in all
/// three modes; the knobs only move where the engines and their caches
/// live.
///
/// # Panics
///
/// Panics when `GCNRL_SERVE_ADDRS` is set but every shard is unreachable,
/// or when `GCNRL_SERVE_ADDR` is set but that server is unreachable or
/// rejects the handshake — a bench pointed at a dead tier must fail
/// loudly, not silently fall back to a private engine.
pub fn backend_for(
    benchmark: Benchmark,
    node: &TechnologyNode,
    engine: EngineConfig,
) -> Box<dyn gcnrl_exec::EvalBackend> {
    if let Some(addrs) = gcnrl_serve::addrs_from_env() {
        let sharded = gcnrl_serve::ShardedBackend::connect(
            &addrs,
            benchmark,
            node,
            gcnrl_serve::ShardedConfig {
                remote: gcnrl_serve::RemoteConfig {
                    session: Some(format!("bench:{benchmark}@{}", node.name)),
                    pipeline: serve_pipeline()
                        .unwrap_or(gcnrl_serve::RemoteConfig::default().pipeline),
                    ..gcnrl_serve::RemoteConfig::default()
                },
                ..gcnrl_serve::ShardedConfig::default()
            },
        )
        .unwrap_or_else(|error| {
            panic!(
                "GCNRL_SERVE_ADDRS={} is set but unusable: {error}",
                addrs.join(",")
            )
        });
        return Box::new(sharded);
    }
    match serve_addr() {
        Some(addr) => {
            let remote = gcnrl_serve::RemoteBackend::connect_with(
                &addr,
                benchmark,
                node,
                gcnrl_serve::RemoteConfig {
                    session: Some(format!("bench:{benchmark}@{}", node.name)),
                    pipeline: serve_pipeline()
                        .unwrap_or(gcnrl_serve::RemoteConfig::default().pipeline),
                    ..gcnrl_serve::RemoteConfig::default()
                },
            )
            .unwrap_or_else(|error| panic!("GCNRL_SERVE_ADDR={addr} is set but unusable: {error}"));
            Box::new(remote)
        }
        None => Box::new(service_session(benchmark, node, engine)),
    }
}

/// Builds a calibrated environment over an arbitrary evaluation backend —
/// the common core of [`env_for_session`] (local service session) and the
/// `GCNRL_SERVE_ADDR` remote path. The calibration sweep runs through the
/// backend too, so it lands in whatever cache the backend shares.
pub fn env_for_backend(
    backend: Box<dyn gcnrl_exec::EvalBackend>,
    cfg: &ExperimentConfig,
) -> SizingEnv {
    let benchmark = backend.benchmark();
    let node = backend.technology().clone();
    let fom =
        FomConfig::calibrated_with_backend(benchmark, &node, cfg.calibration, 7, backend.as_ref());
    SizingEnv::with_backend(benchmark, &node, fom, StateEncoding::ScalarIndex, backend)
}

/// Opens a fresh single-engine [`EvalService`] for `benchmark` at `node` and
/// returns one session on it. All harness-built environments route their
/// evaluation traffic (calibration sweep included) through such a session,
/// so every benchmark binary reaches the solver via the same queue-fed path
/// a multi-session client would.
pub fn service_session(
    benchmark: Benchmark,
    node: &TechnologyNode,
    engine: EngineConfig,
) -> SessionHandle {
    EvalService::for_benchmark(benchmark, node, engine, ServiceConfig::default())
        .session_named(format!("{benchmark}@{}", node.name))
}

/// Builds a calibrated environment over an existing service session. The
/// calibration sweep runs through the session too, so its results land in
/// the shared engine cache: sessions calibrating the same benchmark serve
/// each other's sweeps as cache hits. Keep a clone of the handle to read
/// engine statistics after the environment is consumed by a designer.
pub fn env_for_session(session: &SessionHandle, cfg: &ExperimentConfig) -> SizingEnv {
    env_for_backend(Box::new(session.clone()), cfg)
}

/// Builds a calibrated environment with an explicit evaluation-engine
/// configuration (the sharded coordinator's per-cell path: the calibration
/// sweep and the optimisation run both stay on the cell's engine budget,
/// multiplexed through one service session). When `GCNRL_SERVE_ADDRS` or
/// `GCNRL_SERVE_ADDR` is set, the environment instead rides the sharded
/// tier / shared evaluation server (see [`backend_for`]) and `engine` is
/// unused — the servers own the engine configuration.
pub fn make_env_with_engine(
    benchmark: Benchmark,
    node: &TechnologyNode,
    cfg: &ExperimentConfig,
    engine: EngineConfig,
) -> SizingEnv {
    env_for_backend(backend_for(benchmark, node, engine), cfg)
}

/// Runs one named method on an environment with the given seed.
pub fn run_method(
    method: &str,
    benchmark: Benchmark,
    node: &TechnologyNode,
    cfg: &ExperimentConfig,
    seed: u64,
) -> RunHistory {
    run_method_instrumented(method, benchmark, node, cfg, seed).0
}

/// Runs one named method and also returns its environment's evaluation-engine
/// statistics (simulator calls, cache hit rate, engine wall time).
pub fn run_method_instrumented(
    method: &str,
    benchmark: Benchmark,
    node: &TechnologyNode,
    cfg: &ExperimentConfig,
    seed: u64,
) -> (RunHistory, ExecStats) {
    run_method_with_engine(method, benchmark, node, cfg, seed, EngineConfig::from_env())
}

/// Runs one named method against an explicitly configured evaluation engine
/// (the unit of work one coordinator shard executes).
pub fn run_method_with_engine(
    method: &str,
    benchmark: Benchmark,
    node: &TechnologyNode,
    cfg: &ExperimentConfig,
    seed: u64,
    engine: EngineConfig,
) -> (RunHistory, ExecStats) {
    run_method_with_engine_base(
        method,
        benchmark,
        node,
        cfg,
        seed,
        engine,
        DdpgConfig::default(),
    )
}

/// Like [`run_method_with_engine`], with an explicit DDPG hyper-parameter
/// base for the RL methods (seed, budget and rollout width from `cfg` are
/// applied on top; ignored by the black-box baselines).
#[allow(clippy::too_many_arguments)]
pub fn run_method_with_engine_base(
    method: &str,
    benchmark: Benchmark,
    node: &TechnologyNode,
    cfg: &ExperimentConfig,
    seed: u64,
    engine: EngineConfig,
    ddpg_base: DdpgConfig,
) -> (RunHistory, ExecStats) {
    let env = make_env_with_engine(benchmark, node, cfg, engine);
    let ddpg = ddpg_base
        .with_seed(seed)
        .with_budget(cfg.budget, cfg.warmup.min(cfg.budget / 2))
        .with_rollout_k(cfg.rollout_k);
    fn run_rl(env: SizingEnv, ddpg: DdpgConfig, kind: AgentKind) -> (RunHistory, ExecStats) {
        let mut designer = GcnRlDesigner::with_kind(env, ddpg, kind);
        let history = designer.run();
        let stats = designer.env().exec_stats();
        (history, stats)
    }
    match method {
        "Human" => {
            let history = human_expert(&env);
            (history, env.exec_stats())
        }
        "Random" => {
            let history = random_search(&env, cfg.budget, seed);
            (history, env.exec_stats())
        }
        "ES" => {
            let history = evolution_strategy(&env, cfg.budget, seed);
            (history, env.exec_stats())
        }
        "BO" => {
            let history = bayesian_optimization(&env, cfg.budget, seed);
            (history, env.exec_stats())
        }
        "MACE" => {
            let history = mace(&env, cfg.budget, seed);
            (history, env.exec_stats())
        }
        "NG-RL" => run_rl(env, ddpg, AgentKind::NonGcn),
        "GCN-RL" => run_rl(env, ddpg, AgentKind::Gcn),
        other => panic!("unknown method `{other}`"),
    }
}

/// Sums engine statistics across runs (cache length keeps the maximum, since
/// caches are per-environment).
pub fn merge_exec_stats(stats: impl IntoIterator<Item = ExecStats>) -> ExecStats {
    stats.into_iter().fold(ExecStats::default(), |mut acc, s| {
        acc.requests += s.requests;
        acc.simulated += s.simulated;
        acc.cache_hits += s.cache_hits;
        acc.evictions += s.evictions;
        acc.batches += s.batches;
        acc.cache_len = acc.cache_len.max(s.cache_len);
        acc.wall_seconds += s.wall_seconds;
        acc
    })
}

/// Runs every method of Table I on one benchmark, repeating `cfg.seeds`
/// times.  The cells are drained by the sharded coordinator (see
/// [`crate::coordinator`]), so on multi-core hosts the methods and seeds run
/// concurrently under a shared cache budget; results are identical for any
/// worker count.
pub fn run_all_methods(
    benchmark: Benchmark,
    node: &TechnologyNode,
    cfg: &ExperimentConfig,
) -> Vec<MethodResult> {
    let cells = crate::coordinator::table_cells(&[benchmark], node, cfg);
    let results = crate::coordinator::run_cells(
        &cells,
        cfg,
        &crate::coordinator::CoordinatorConfig::from_env(),
    );
    crate::coordinator::method_results(&results, benchmark)
}

/// Groups per-seed histories into one [`MethodResult`] (used by the sharded
/// coordinator's aggregation step).
pub fn method_result_from_histories(method: &str, histories: Vec<RunHistory>) -> MethodResult {
    MethodResult::from_histories(method, histories)
}

/// Prints one engine-statistics line per method (used by the table binaries
/// after their result tables).
pub fn print_exec_stats(title: &str, results: &[MethodResult]) {
    println!("\n{title}");
    for r in results {
        if let Some(exec) = &r.exec {
            println!("  {:<10} {}", r.method, exec.summary());
        }
    }
    // Cumulative linear-solver counters: how much symbolic reuse the sparse
    // MNA path achieved across every evaluation above.
    println!(
        "  solver     {}",
        gcnrl_sim::solver_stats::snapshot().summary()
    );
    print_latency_table();
}

/// Prints the coordinator's merged engine statistics plus the cumulative
/// linear-solver counters (used by the cell-queue binaries after their
/// tables).
pub fn print_merged_exec(title: &str, merged: &ExecStats) {
    println!("\n{title}");
    println!("  engine     {}", merged.summary());
    println!(
        "  solver     {}",
        gcnrl_sim::solver_stats::snapshot().summary()
    );
    print_latency_table();
}

/// Formats nanoseconds human-readably (histogram quantiles are bucket upper
/// bounds, so sub-microsecond precision would be false precision anyway).
fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Prints every latency histogram of the process-wide telemetry registry as
/// a count/mean/p50/p90/p99 table — the per-layer breakdown (solver, engine,
/// service, serve, trainer) behind the engine summaries above. Quantiles are
/// log-bucket upper bounds (~2x resolution), good for spotting orders of
/// magnitude, not microbenchmarking.
pub fn print_latency_table() {
    let snapshot = gcnrl_telemetry::global().snapshot();
    let timings: Vec<_> = snapshot
        .histograms
        .iter()
        .filter(|(name, h)| name.ends_with(".ns") && h.count > 0)
        .collect();
    if timings.is_empty() {
        return;
    }
    println!("\ntelemetry — per-layer latency (log-bucket quantiles)");
    println!(
        "  {:<28} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "span", "count", "mean", "p50", "p90", "p99"
    );
    for (name, h) in timings {
        println!(
            "  {:<28} {:>10} {:>10} {:>10} {:>10} {:>10}",
            name,
            h.count,
            fmt_ns(h.mean() as u64),
            fmt_ns(h.quantile(0.5)),
            fmt_ns(h.quantile(0.9)),
            fmt_ns(h.quantile(0.99)),
        );
    }
}

/// Writes an experiment result as JSON under `target/experiments/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("target/experiments");
    if std::fs::create_dir_all(dir).is_ok() {
        if let Ok(json) = serde_json::to_string_pretty(value) {
            let _ = std::fs::write(dir.join(format!("{name}.json")), json);
        }
    }
}

/// Prints a learning-curve series as a compact text sparkline table.
pub fn print_series(title: &str, series: &[SeriesSummary]) {
    println!("\n{title}");
    for s in series {
        let last = s.curve.last().copied().unwrap_or(f64::NAN);
        let step = (s.curve.len() / 8).max(1);
        let samples: Vec<String> = s
            .curve
            .iter()
            .step_by(step)
            .map(|v| format!("{v:.2}"))
            .collect();
        println!(
            "  {:<22} final={last:6.3}  curve=[{}]",
            s.label,
            samples.join(", ")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_config_and_env_override() {
        let cfg = ExperimentConfig::smoke();
        assert!(cfg.budget > cfg.warmup);
        let same = budget_from_env(cfg);
        assert_eq!(same.budget, cfg.budget);
    }

    #[test]
    fn method_result_statistics() {
        let mut h1 = RunHistory::new("X");
        let mut h2 = RunHistory::new("X");
        let pv =
            gcnrl_circuit::ParamVector::new(vec![gcnrl_circuit::ComponentParams::Resistance(1.0)]);
        let rep = gcnrl_sim::PerformanceReport::new();
        h1.record(1.0, &pv, &rep);
        h2.record(3.0, &pv, &rep);
        let r = MethodResult::from_histories("X", vec![h1, h2]);
        assert_eq!(r.mean(), 2.0);
        assert_eq!(r.std(), 1.0);
        assert!(r.formatted().contains("±"));
    }

    #[test]
    fn every_table1_method_runs_one_tiny_experiment() {
        let cfg = ExperimentConfig {
            budget: 12,
            warmup: 4,
            seeds: 1,
            calibration: 6,
            rollout_k: 1,
        };
        let node = TechnologyNode::tsmc180();
        for method in METHODS {
            let h = run_method(method, Benchmark::TwoStageTia, &node, &cfg, 0);
            assert!(!h.is_empty(), "{method} produced no records");
        }
    }
}
