//! Cell types for every table/figure binary beyond the Table I method grid.
//!
//! Each binary's bespoke nested loop is reduced to (a) an enumeration
//! function producing a flat `Vec` of cells in presentation order and (b) a
//! [`Cell`] implementation describing how one cell runs against its
//! carved-out engine. The binaries then just [`drain_cells`] the queue and
//! format the outputs — so every experiment in the suite is sharded,
//! cache-budgeted and queue-fed the same way, and the `coordinator`
//! integration test can pin each binary's cell set to identical results at
//! any worker count.
//!
//! [`drain_cells`]: crate::coordinator::drain_cells

use crate::coordinator::{Cell, CellContext};
use crate::harness::{
    env_for_session, merge_exec_stats, run_method_with_engine_base, service_session,
    ExperimentConfig, SeriesSummary, METHODS,
};
use gcnrl::transfer::pretrain_and_transfer;
use gcnrl::{AgentKind, ExecStats, FomConfig, GcnRlDesigner, SizingEnv, StateEncoding};
use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};
use gcnrl_rl::DdpgConfig;
use serde::Serialize;

/// The fine-tuning budget the transfer experiments derive from the overall
/// budget (the paper uses 300 steps against a 10 000-step pretrain).
pub fn finetune_budget(cfg: &ExperimentConfig) -> (usize, usize) {
    let budget = (cfg.budget / 2).max(10);
    (budget, (budget / 3).max(3))
}

fn pretrain_config(base: DdpgConfig, cfg: &ExperimentConfig, seed: u64) -> DdpgConfig {
    base.with_seed(seed)
        .with_budget(cfg.budget, cfg.warmup.min(cfg.budget / 2))
        .with_rollout_k(cfg.rollout_k)
}

fn finetune_config(base: DdpgConfig, cfg: &ExperimentConfig, seed: u64) -> DdpgConfig {
    let (budget, warmup) = finetune_budget(cfg);
    base.with_seed(seed)
        .with_budget(budget, warmup)
        .with_rollout_k(cfg.rollout_k)
}

/// Splits a cell's engine configuration across the `ways` engines the cell
/// creates (a transfer cell runs a source and a target engine), so the
/// cell's total cache footprint stays within the share the coordinator
/// carved out of `GCNRL_CACHE_CAP`.
fn split_share(engine: &gcnrl::EngineConfig, ways: usize) -> gcnrl::EngineConfig {
    engine
        .clone()
        .with_cache_capacity((engine.cache_capacity / ways.max(1)).max(1))
}

/// The scratch run every transfer-style cell shares: train `kind` from
/// scratch on `(benchmark, node)` with the fine-tuning budget, on a service
/// session over the cell's engine share.
fn scratch_run(
    benchmark: Benchmark,
    node: &TechnologyNode,
    cfg: &ExperimentConfig,
    ddpg: DdpgConfig,
    seed: u64,
    kind: AgentKind,
    ctx: &CellContext,
) -> (gcnrl::RunHistory, ExecStats) {
    let fine = finetune_config(ddpg, cfg, seed);
    let session = service_session(benchmark, node, ctx.engine.clone());
    let history = GcnRlDesigner::with_kind(env_for_session(&session, cfg), fine, kind).run();
    let exec = session.service().engine_stats();
    (history, exec)
}

/// The transfer run every transfer-style cell shares: pretrain `kind` on
/// `(source_benchmark, source_node)`, fine-tune on
/// `(target_benchmark, target_node)`, the two engines splitting the cell's
/// cache share. Returns the fine-tuning history and the merged statistics
/// of both engines.
#[allow(clippy::too_many_arguments)]
fn transfer_run(
    source_pair: (Benchmark, &TechnologyNode),
    target_pair: (Benchmark, &TechnologyNode),
    cfg: &ExperimentConfig,
    ddpg: DdpgConfig,
    seed: u64,
    kind: AgentKind,
    ctx: &CellContext,
) -> (gcnrl::RunHistory, ExecStats) {
    let pre = pretrain_config(ddpg, cfg, seed);
    let fine = finetune_config(ddpg, cfg, seed);
    let share = split_share(&ctx.engine, 2);
    let source = service_session(source_pair.0, source_pair.1, share.clone());
    let target = service_session(target_pair.0, target_pair.1, share);
    let (_, history, _) = pretrain_and_transfer(
        env_for_session(&source, cfg),
        env_for_session(&target, cfg),
        kind,
        pre,
        fine,
    );
    let exec = merge_exec_stats([
        source.service().engine_stats(),
        target.service().engine_stats(),
    ]);
    (history, exec)
}

// ---------------------------------------------------------------------------
// Tables II / III: per-metric breakdown rows.
// ---------------------------------------------------------------------------

/// One row of a per-metric table: a label and the best design's metrics.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsRow {
    /// Row label (method name or `GCN-RL-i`).
    pub label: String,
    /// Metric values of the best design found.
    pub metrics: Vec<(String, f64)>,
}

/// What a [`MetricsCell`] runs.
#[derive(Debug, Clone)]
pub enum MetricsCellKind {
    /// One Table I method at seed 0 (the tables' top halves).
    Method(String),
    /// The paper's GCN-RL-`i` ablation: a 10x weight emphasis on one metric
    /// (Table II's bottom half), trained at seed `100 + index`.
    Emphasis {
        /// The emphasised metric key.
        metric: String,
        /// Zero-based ablation index (labels the row `GCN-RL-{index+1}`).
        index: usize,
    },
}

/// One row cell of Table II or III.
#[derive(Debug, Clone)]
pub struct MetricsCell {
    /// Benchmark the row optimises.
    pub benchmark: Benchmark,
    /// Technology node of the run.
    pub node: TechnologyNode,
    /// Budget/seed configuration.
    pub cfg: ExperimentConfig,
    /// DDPG hyper-parameter base (seed/budget applied per run). The
    /// binaries use [`DdpgConfig::default`]; tests shrink the network.
    pub ddpg: DdpgConfig,
    /// Row flavour.
    pub kind: MetricsCellKind,
}

fn best_metrics(history: &gcnrl::RunHistory) -> Vec<(String, f64)> {
    history
        .best_report
        .as_ref()
        .map(|r| r.iter().map(|(k, v)| (k.to_owned(), v)).collect())
        .unwrap_or_default()
}

impl Cell for MetricsCell {
    type Output = MetricsRow;

    fn id(&self) -> String {
        match &self.kind {
            MetricsCellKind::Method(method) => format!("{method} metrics on {}", self.benchmark),
            MetricsCellKind::Emphasis { metric, index } => {
                format!("GCN-RL-{} (10x {metric}) on {}", index + 1, self.benchmark)
            }
        }
    }

    fn run(&self, ctx: &CellContext) -> (MetricsRow, ExecStats) {
        match &self.kind {
            MetricsCellKind::Method(method) => {
                let (history, exec) = run_method_with_engine_base(
                    method,
                    self.benchmark,
                    &self.node,
                    &self.cfg,
                    0,
                    ctx.engine.clone(),
                    self.ddpg,
                );
                (
                    MetricsRow {
                        label: method.clone(),
                        metrics: best_metrics(&history),
                    },
                    exec,
                )
            }
            MetricsCellKind::Emphasis { metric, index } => {
                // Calibrate through the cell's session, then re-weight one
                // metric 10x — the same engine serves the emphasis run.
                let session = service_session(self.benchmark, &self.node, ctx.engine.clone());
                let fom = FomConfig::calibrated_with_backend(
                    self.benchmark,
                    &self.node,
                    self.cfg.calibration,
                    7,
                    &session,
                )
                .with_weight_emphasis(metric, 10.0);
                let env = SizingEnv::with_backend(
                    self.benchmark,
                    &self.node,
                    fom,
                    StateEncoding::ScalarIndex,
                    Box::new(session.clone()),
                );
                let ddpg = self
                    .ddpg
                    .with_seed(100 + *index as u64)
                    .with_budget(self.cfg.budget, self.cfg.warmup.min(self.cfg.budget / 2))
                    .with_rollout_k(self.cfg.rollout_k);
                let history = GcnRlDesigner::with_kind(env, ddpg, AgentKind::Gcn).run();
                (
                    MetricsRow {
                        label: format!("GCN-RL-{}", index + 1),
                        metrics: best_metrics(&history),
                    },
                    session.service().engine_stats(),
                )
            }
        }
    }
}

/// Table II's rows: every Table I method on the Two-TIA, then the five
/// weighted-FoM ablations, in presentation order.
pub fn table2_cells(node: &TechnologyNode, cfg: &ExperimentConfig) -> Vec<MetricsCell> {
    let emphasised = [
        "bw_ghz",
        "gain_ohm",
        "power_mw",
        "noise_pa_rthz",
        "peaking_db",
    ];
    metrics_cells(Benchmark::TwoStageTia, node, cfg)
        .into_iter()
        .chain(
            emphasised
                .iter()
                .enumerate()
                .map(|(index, metric)| MetricsCell {
                    benchmark: Benchmark::TwoStageTia,
                    node: node.clone(),
                    cfg: *cfg,
                    ddpg: DdpgConfig::default(),
                    kind: MetricsCellKind::Emphasis {
                        metric: (*metric).to_owned(),
                        index,
                    },
                }),
        )
        .collect()
}

/// Table III's rows: every Table I method on the Two-Volt amplifier.
pub fn table3_cells(node: &TechnologyNode, cfg: &ExperimentConfig) -> Vec<MetricsCell> {
    metrics_cells(Benchmark::TwoStageVoltageAmp, node, cfg)
}

fn metrics_cells(
    benchmark: Benchmark,
    node: &TechnologyNode,
    cfg: &ExperimentConfig,
) -> Vec<MetricsCell> {
    METHODS
        .iter()
        .map(|method| MetricsCell {
            benchmark,
            node: node.clone(),
            cfg: *cfg,
            ddpg: DdpgConfig::default(),
            kind: MetricsCellKind::Method((*method).to_owned()),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Table IV: technology-node transfer.
// ---------------------------------------------------------------------------

/// One Table IV cell: GCN-RL fine-tuned on `target`, either from scratch or
/// from a policy pre-trained at `source`, for one seed.
#[derive(Debug, Clone)]
pub struct NodeTransferCell {
    /// Benchmark circuit (Two-TIA or Three-TIA in the paper).
    pub benchmark: Benchmark,
    /// Pretraining node (180 nm in the paper).
    pub source: TechnologyNode,
    /// Fine-tuning node.
    pub target: TechnologyNode,
    /// `true` = pretrain at `source` then fine-tune; `false` = train from
    /// scratch on `target` with the fine-tuning budget.
    pub transfer: bool,
    /// Seed of the repetition.
    pub seed: u64,
    /// Budget/seed configuration.
    pub cfg: ExperimentConfig,
    /// DDPG hyper-parameter base (seed/budget applied per run).
    pub ddpg: DdpgConfig,
}

impl Cell for NodeTransferCell {
    type Output = f64;

    fn id(&self) -> String {
        format!(
            "{} {} -> {} seed {}",
            self.benchmark.paper_name(),
            if self.transfer {
                self.source.name.as_str()
            } else {
                "scratch"
            },
            self.target.name,
            self.seed
        )
    }

    fn weight(&self) -> usize {
        // Transfer cells run a full pretrain plus the fine-tune, so they
        // claim a double share of the coordinator's cache budget.
        if self.transfer {
            2
        } else {
            1
        }
    }

    fn run(&self, ctx: &CellContext) -> (f64, ExecStats) {
        let (history, exec) = if self.transfer {
            transfer_run(
                (self.benchmark, &self.source),
                (self.benchmark, &self.target),
                &self.cfg,
                self.ddpg,
                self.seed,
                AgentKind::Gcn,
                ctx,
            )
        } else {
            scratch_run(
                self.benchmark,
                &self.target,
                &self.cfg,
                self.ddpg,
                self.seed,
                AgentKind::Gcn,
                ctx,
            )
        };
        (history.best_fom(), exec)
    }
}

/// Table IV's cell grid in presentation order: for each benchmark, all
/// targets without transfer (one row), then all targets with transfer (the
/// next row), seeds innermost.
pub fn table4_cells(
    benchmarks: &[Benchmark],
    source: &TechnologyNode,
    targets: &[TechnologyNode],
    cfg: &ExperimentConfig,
) -> Vec<NodeTransferCell> {
    let mut cells = Vec::new();
    for &benchmark in benchmarks {
        for transfer in [false, true] {
            for target in targets {
                for seed in 0..cfg.seeds.max(1) as u64 {
                    cells.push(NodeTransferCell {
                        benchmark,
                        source: source.clone(),
                        target: target.clone(),
                        transfer,
                        seed,
                        cfg: *cfg,
                        ddpg: DdpgConfig::default(),
                    });
                }
            }
        }
    }
    cells
}

// ---------------------------------------------------------------------------
// Table V: topology transfer.
// ---------------------------------------------------------------------------

/// How a Table V run is warm-started.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyTransferMode {
    /// Train from scratch on the target with the fine-tuning budget.
    Scratch,
    /// Pretrain the given agent variant on the source topology, then
    /// fine-tune on the target.
    Transfer(AgentKind),
}

/// One Table V cell: a topology-transfer run for one seed.
#[derive(Debug, Clone)]
pub struct TopologyTransferCell {
    /// Pretraining topology (ignored for [`TopologyTransferMode::Scratch`]).
    pub source: Benchmark,
    /// Fine-tuning topology.
    pub target: Benchmark,
    /// Technology node of both runs.
    pub node: TechnologyNode,
    /// Warm-start mode.
    pub mode: TopologyTransferMode,
    /// Seed of the repetition.
    pub seed: u64,
    /// Budget/seed configuration.
    pub cfg: ExperimentConfig,
    /// DDPG hyper-parameter base (seed/budget applied per run).
    pub ddpg: DdpgConfig,
}

impl Cell for TopologyTransferCell {
    type Output = f64;

    fn id(&self) -> String {
        let mode = match self.mode {
            TopologyTransferMode::Scratch => "scratch".to_owned(),
            TopologyTransferMode::Transfer(kind) => format!("{kind:?} transfer"),
        };
        format!(
            "{} -> {} ({mode}) seed {}",
            self.source.paper_name(),
            self.target.paper_name(),
            self.seed
        )
    }

    fn weight(&self) -> usize {
        match self.mode {
            TopologyTransferMode::Scratch => 1,
            TopologyTransferMode::Transfer(_) => 2,
        }
    }

    fn run(&self, ctx: &CellContext) -> (f64, ExecStats) {
        let (history, exec) = match self.mode {
            TopologyTransferMode::Scratch => scratch_run(
                self.target,
                &self.node,
                &self.cfg,
                self.ddpg,
                self.seed,
                AgentKind::Gcn,
                ctx,
            ),
            TopologyTransferMode::Transfer(kind) => transfer_run(
                (self.source, &self.node),
                (self.target, &self.node),
                &self.cfg,
                self.ddpg,
                self.seed,
                kind,
                ctx,
            ),
        };
        (history.best_fom(), exec)
    }
}

/// Table V's cell grid in presentation order: for each mode row (scratch,
/// NG-RL transfer, GCN-RL transfer), both transfer directions, seeds
/// innermost.
pub fn table5_cells(
    directions: &[(Benchmark, Benchmark)],
    node: &TechnologyNode,
    cfg: &ExperimentConfig,
) -> Vec<TopologyTransferCell> {
    let modes = [
        TopologyTransferMode::Scratch,
        TopologyTransferMode::Transfer(AgentKind::NonGcn),
        TopologyTransferMode::Transfer(AgentKind::Gcn),
    ];
    let mut cells = Vec::new();
    for mode in modes {
        for &(source, target) in directions {
            for seed in 0..cfg.seeds.max(1) as u64 {
                cells.push(TopologyTransferCell {
                    source,
                    target,
                    node: node.clone(),
                    mode,
                    seed,
                    cfg: *cfg,
                    ddpg: DdpgConfig::default(),
                });
            }
        }
    }
    cells
}

// ---------------------------------------------------------------------------
// Figures 7 / 8: transfer learning curves.
// ---------------------------------------------------------------------------

/// One Figure 7 cell: a Three-TIA node-transfer learning curve (scratch or
/// transferred) at a fixed seed.
#[derive(Debug, Clone)]
pub struct NodeCurveCell {
    /// Benchmark circuit of the figure (Three-TIA in the paper).
    pub benchmark: Benchmark,
    /// Pretraining node.
    pub source: TechnologyNode,
    /// Fine-tuning node.
    pub target: TechnologyNode,
    /// `true` = transfer from `source`, `false` = from scratch.
    pub transfer: bool,
    /// Seed of the run (the figure uses one fixed seed).
    pub seed: u64,
    /// Budget/seed configuration.
    pub cfg: ExperimentConfig,
    /// DDPG hyper-parameter base (seed/budget applied per run).
    pub ddpg: DdpgConfig,
}

impl Cell for NodeCurveCell {
    type Output = SeriesSummary;

    fn id(&self) -> String {
        format!(
            "fig7 {} at {} ({})",
            self.benchmark.paper_name(),
            self.target.name,
            if self.transfer { "transfer" } else { "scratch" }
        )
    }

    fn weight(&self) -> usize {
        if self.transfer {
            2
        } else {
            1
        }
    }

    fn run(&self, ctx: &CellContext) -> (SeriesSummary, ExecStats) {
        let (label, (history, exec)) = if self.transfer {
            (
                format!("Transfer from {}", self.source.name),
                transfer_run(
                    (self.benchmark, &self.source),
                    (self.benchmark, &self.target),
                    &self.cfg,
                    self.ddpg,
                    self.seed,
                    AgentKind::Gcn,
                    ctx,
                ),
            )
        } else {
            (
                "No Transfer".to_owned(),
                scratch_run(
                    self.benchmark,
                    &self.target,
                    &self.cfg,
                    self.ddpg,
                    self.seed,
                    AgentKind::Gcn,
                    ctx,
                ),
            )
        };
        (
            SeriesSummary {
                label,
                curve: history.best_curve(),
            },
            exec,
        )
    }
}

/// Figure 7's cell grid: per target node, the scratch curve then the
/// transferred curve (the paper's fixed seed 1).
pub fn fig7_cells(
    benchmark: Benchmark,
    source: &TechnologyNode,
    targets: &[TechnologyNode],
    cfg: &ExperimentConfig,
) -> Vec<NodeCurveCell> {
    let mut cells = Vec::new();
    for target in targets {
        for transfer in [false, true] {
            cells.push(NodeCurveCell {
                benchmark,
                source: source.clone(),
                target: target.clone(),
                transfer,
                seed: 1,
                cfg: *cfg,
                ddpg: DdpgConfig::default(),
            });
        }
    }
    cells
}

/// One Figure 8 cell: a topology-transfer learning curve at a fixed seed.
#[derive(Debug, Clone)]
pub struct TopologyCurveCell {
    /// Pretraining topology (ignored for scratch).
    pub source: Benchmark,
    /// Fine-tuning topology.
    pub target: Benchmark,
    /// Technology node of both runs.
    pub node: TechnologyNode,
    /// Warm-start mode.
    pub mode: TopologyTransferMode,
    /// Seed of the run (the figure uses one fixed seed).
    pub seed: u64,
    /// Budget/seed configuration.
    pub cfg: ExperimentConfig,
    /// DDPG hyper-parameter base (seed/budget applied per run).
    pub ddpg: DdpgConfig,
}

impl Cell for TopologyCurveCell {
    type Output = SeriesSummary;

    fn id(&self) -> String {
        format!(
            "fig8 {} -> {} ({:?})",
            self.source.paper_name(),
            self.target.paper_name(),
            self.mode
        )
    }

    fn weight(&self) -> usize {
        match self.mode {
            TopologyTransferMode::Scratch => 1,
            TopologyTransferMode::Transfer(_) => 2,
        }
    }

    fn run(&self, ctx: &CellContext) -> (SeriesSummary, ExecStats) {
        let (label, (history, exec)) = match self.mode {
            TopologyTransferMode::Scratch => (
                "No Transfer".to_owned(),
                scratch_run(
                    self.target,
                    &self.node,
                    &self.cfg,
                    self.ddpg,
                    self.seed,
                    AgentKind::Gcn,
                    ctx,
                ),
            ),
            TopologyTransferMode::Transfer(kind) => (
                match kind {
                    AgentKind::Gcn => "GCN-RL Transfer".to_owned(),
                    AgentKind::NonGcn => "NG-RL Transfer".to_owned(),
                },
                transfer_run(
                    (self.source, &self.node),
                    (self.target, &self.node),
                    &self.cfg,
                    self.ddpg,
                    self.seed,
                    kind,
                    ctx,
                ),
            ),
        };
        (
            SeriesSummary {
                label,
                curve: history.best_curve(),
            },
            exec,
        )
    }
}

/// Figure 8's cell grid: per transfer direction, the scratch, NG-RL and
/// GCN-RL curves (the paper's fixed seed 2).
pub fn fig8_cells(
    directions: &[(Benchmark, Benchmark)],
    node: &TechnologyNode,
    cfg: &ExperimentConfig,
) -> Vec<TopologyCurveCell> {
    let modes = [
        TopologyTransferMode::Scratch,
        TopologyTransferMode::Transfer(AgentKind::NonGcn),
        TopologyTransferMode::Transfer(AgentKind::Gcn),
    ];
    let mut cells = Vec::new();
    for &(source, target) in directions {
        for mode in modes {
            cells.push(TopologyCurveCell {
                source,
                target,
                node: node.clone(),
                mode,
                seed: 2,
                cfg: *cfg,
                ddpg: DdpgConfig::default(),
            });
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExperimentConfig {
        ExperimentConfig {
            budget: 6,
            warmup: 2,
            seeds: 2,
            calibration: 4,
            rollout_k: 1,
        }
    }

    #[test]
    fn table2_cells_enumerate_methods_then_emphases() {
        let node = TechnologyNode::tsmc180();
        let cells = table2_cells(&node, &tiny_cfg());
        assert_eq!(cells.len(), METHODS.len() + 5);
        assert!(matches!(&cells[0].kind, MetricsCellKind::Method(m) if m == "Human"));
        assert!(
            matches!(&cells[METHODS.len()].kind, MetricsCellKind::Emphasis { metric, index }
                if metric == "bw_ghz" && *index == 0)
        );
        assert!(cells.iter().all(|c| c.benchmark == Benchmark::TwoStageTia));
    }

    #[test]
    fn table4_cells_order_rows_before_seeds_and_weight_transfers_double() {
        let node180 = TechnologyNode::tsmc180();
        let targets = [TechnologyNode::n250(), TechnologyNode::n130()];
        let cells = table4_cells(&[Benchmark::TwoStageTia], &node180, &targets, &tiny_cfg());
        // 1 benchmark × 2 modes × 2 targets × 2 seeds.
        assert_eq!(cells.len(), 8);
        assert!(!cells[0].transfer && cells[0].seed == 0);
        assert!(!cells[1].transfer && cells[1].seed == 1);
        assert!(cells[4].transfer);
        assert_eq!(cells[0].weight(), 1);
        assert_eq!(cells[4].weight(), 2);
    }

    #[test]
    fn table5_and_fig8_cells_cover_every_mode_per_direction() {
        let node = TechnologyNode::tsmc180();
        let directions = [
            (Benchmark::TwoStageTia, Benchmark::ThreeStageTia),
            (Benchmark::ThreeStageTia, Benchmark::TwoStageTia),
        ];
        let t5 = table5_cells(&directions, &node, &tiny_cfg());
        // 3 modes × 2 directions × 2 seeds.
        assert_eq!(t5.len(), 12);
        assert_eq!(t5[0].mode, TopologyTransferMode::Scratch);
        let f8 = fig8_cells(&directions, &node, &tiny_cfg());
        assert_eq!(f8.len(), 6);
        assert_eq!(f8[2].mode, TopologyTransferMode::Transfer(AgentKind::Gcn));
    }

    #[test]
    fn fig7_cells_pair_scratch_and_transfer_per_target() {
        let source = TechnologyNode::tsmc180();
        let targets = [TechnologyNode::n45(), TechnologyNode::n65()];
        let cells = fig7_cells(Benchmark::ThreeStageTia, &source, &targets, &tiny_cfg());
        assert_eq!(cells.len(), 4);
        assert!(!cells[0].transfer && cells[1].transfer);
        assert_eq!(cells[0].target.name, cells[1].target.name);
    }

    #[test]
    fn finetune_budget_mirrors_the_binaries_rounding() {
        let cfg = ExperimentConfig {
            budget: 40,
            ..tiny_cfg()
        };
        assert_eq!(finetune_budget(&cfg), (20, 6));
        // Tiny budgets floor at the paper's minimum useful run.
        assert_eq!(finetune_budget(&tiny_cfg()), (10, 3));
    }
}
