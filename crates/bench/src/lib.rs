//! Experiment harness for the GCN-RL paper's tables and figures.
//!
//! Each binary in `src/bin/` regenerates one table or figure; they all share
//! the routines in [`harness`], enumerate their work as [`coordinator::Cell`]
//! queues (the per-binary cell types live in [`cells`]) and drain them
//! through the sharded [`coordinator`] — `GCNRL_WORKERS` concurrent cells
//! under a shared `GCNRL_CACHE_CAP` budget, every cell's evaluation traffic
//! multiplexed through a `gcnrl-exec` service session.  Budgets are scaled
//! down from the paper's 10 000-simulation runs so the full suite executes
//! on a laptop in minutes; set the `GCNRL_BUDGET`, `GCNRL_SEEDS` and
//! `GCNRL_CALIBRATION` environment variables to run at larger scale (see
//! EXPERIMENTS.md).

pub mod cells;
pub mod coordinator;
pub mod harness;

pub use coordinator::{
    drain_cells, method_results, run_cells, table_cells, Cell, CellContext, CellResult, CellSpec,
    CoordinatorConfig, DrainReport, DrainedCell, MethodCell,
};
pub use harness::{
    backend_for, budget_from_env, env_for_backend, env_for_session, make_env, make_env_with_engine,
    merge_exec_stats, print_exec_stats, print_latency_table, print_merged_exec, print_series,
    run_all_methods, run_method, run_method_instrumented, run_method_with_engine, serve_addr,
    serve_pipeline, service_session, write_json, ExperimentConfig, MethodResult, SeriesSummary,
    METHODS,
};
