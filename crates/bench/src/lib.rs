//! Experiment harness for the GCN-RL paper's tables and figures.
//!
//! Each binary in `src/bin/` regenerates one table or figure; they all share
//! the routines in [`harness`].  Budgets are scaled down from the paper's
//! 10 000-simulation runs so the full suite executes on a laptop in minutes;
//! set the `GCNRL_BUDGET`, `GCNRL_SEEDS` and `GCNRL_CALIBRATION` environment
//! variables to run at larger scale (see EXPERIMENTS.md).

pub mod coordinator;
pub mod harness;

pub use coordinator::{
    method_results, run_cells, table_cells, CellResult, CellSpec, CoordinatorConfig,
};
pub use harness::{
    budget_from_env, make_env, make_env_with_engine, merge_exec_stats, print_exec_stats,
    print_series, run_all_methods, run_method, run_method_instrumented, run_method_with_engine,
    write_json, ExperimentConfig, MethodResult, SeriesSummary, METHODS,
};
