//! Table IV: knowledge transfer from 180 nm to 250/130/65/45 nm on the
//! Two-TIA and Three-TIA, transfer vs no transfer under a 300-step budget
//! (100 warm-up + 200 exploration in the paper).

use gcnrl::transfer::pretrain_and_transfer;
use gcnrl::{AgentKind, GcnRlDesigner};
use gcnrl_bench::{budget_from_env, make_env, write_json, ExperimentConfig};
use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};
use gcnrl_rl::DdpgConfig;

fn main() {
    let cfg = budget_from_env(ExperimentConfig::smoke());
    let source_node = TechnologyNode::tsmc180();
    let targets = [
        TechnologyNode::n250(),
        TechnologyNode::n130(),
        TechnologyNode::n65(),
        TechnologyNode::n45(),
    ];
    // The fine-tuning budget is deliberately small (the paper uses 300 steps).
    let finetune_budget = (cfg.budget / 2).max(10);
    let finetune_warmup = (finetune_budget / 3).max(3);

    println!(
        "Table IV — node transfer from 180nm (pretrain budget={}, finetune budget={}, seeds={})",
        cfg.budget, finetune_budget, cfg.seeds
    );
    println!(
        "{:<32} {:>10} {:>10} {:>10} {:>10}",
        "Setting", "250nm", "130nm", "65nm", "45nm"
    );

    let mut dump = Vec::new();
    for benchmark in [Benchmark::TwoStageTia, Benchmark::ThreeStageTia] {
        let mut no_transfer_row = Vec::new();
        let mut transfer_row = Vec::new();
        for target in &targets {
            let mut no_foms = Vec::new();
            let mut tr_foms = Vec::new();
            for seed in 0..cfg.seeds.max(1) as u64 {
                let pre_cfg = DdpgConfig::default()
                    .with_seed(seed)
                    .with_budget(cfg.budget, cfg.warmup.min(cfg.budget / 2));
                let fine_cfg = DdpgConfig::default()
                    .with_seed(seed)
                    .with_budget(finetune_budget, finetune_warmup);

                // No transfer: train from scratch on the target node.
                let no = GcnRlDesigner::with_kind(
                    make_env(benchmark, target, &cfg),
                    fine_cfg,
                    AgentKind::Gcn,
                )
                .run();
                no_foms.push(no.best_fom());

                // Transfer: pre-train at 180 nm, fine-tune on the target node.
                let (_, fine, _) = pretrain_and_transfer(
                    make_env(benchmark, &source_node, &cfg),
                    make_env(benchmark, target, &cfg),
                    AgentKind::Gcn,
                    pre_cfg,
                    fine_cfg,
                );
                tr_foms.push(fine.best_fom());
            }
            let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
            no_transfer_row.push(mean(&no_foms));
            transfer_row.push(mean(&tr_foms));
        }
        println!(
            "{:<32} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            format!("{} (no transfer)", benchmark.paper_name()),
            no_transfer_row[0],
            no_transfer_row[1],
            no_transfer_row[2],
            no_transfer_row[3]
        );
        println!(
            "{:<32} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            format!("{} (transfer from 180nm)", benchmark.paper_name()),
            transfer_row[0],
            transfer_row[1],
            transfer_row[2],
            transfer_row[3]
        );
        dump.push((
            benchmark.paper_name().to_string(),
            no_transfer_row,
            transfer_row,
        ));
    }
    write_json("table4", &dump);
}
