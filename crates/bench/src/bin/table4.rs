//! Table IV: knowledge transfer from 180 nm to 250/130/65/45 nm on the
//! Two-TIA and Three-TIA, transfer vs no transfer under a 300-step budget
//! (100 warm-up + 200 exploration in the paper).
//!
//! Every `(benchmark, target node, mode, seed)` combination is one
//! [`NodeTransferCell`](gcnrl_bench::cells::NodeTransferCell) in a single
//! work queue drained by the sharded coordinator; transfer cells claim a
//! double share of the cache budget (they run pretrain + fine-tune). The
//! assembled table is identical for any worker count.

use gcnrl_bench::cells::{finetune_budget, table4_cells};
use gcnrl_bench::{
    budget_from_env, drain_cells, print_merged_exec, write_json, CoordinatorConfig,
    ExperimentConfig,
};
use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};

fn main() {
    let cfg = budget_from_env(ExperimentConfig::smoke());
    let coord = CoordinatorConfig::from_env();
    let source_node = TechnologyNode::tsmc180();
    let targets = [
        TechnologyNode::n250(),
        TechnologyNode::n130(),
        TechnologyNode::n65(),
        TechnologyNode::n45(),
    ];
    let benchmarks = [Benchmark::TwoStageTia, Benchmark::ThreeStageTia];

    println!(
        "Table IV — node transfer from 180nm (pretrain budget={}, finetune budget={}, seeds={}, {} workers)",
        cfg.budget,
        finetune_budget(&cfg).0,
        cfg.seeds,
        coord.workers
    );
    println!(
        "{:<32} {:>10} {:>10} {:>10} {:>10}",
        "Setting", "250nm", "130nm", "65nm", "45nm"
    );

    let cells = table4_cells(&benchmarks, &source_node, &targets, &cfg);
    let report = drain_cells(cells.clone(), &coord);

    // Fold the per-seed cells back into the table's (benchmark, mode) rows.
    // The queue order is re-checked against the cell specs at every slot so
    // a reordering of `table4_cells` can never silently mis-bin a row.
    let seeds = cfg.seeds.max(1);
    let mut dump = Vec::new();
    let mut index = 0;
    for benchmark in benchmarks {
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for mode in 0..2 {
            let mut row = Vec::new();
            for target in &targets {
                for (offset, spec) in cells[index..index + seeds].iter().enumerate() {
                    assert!(
                        spec.benchmark == benchmark
                            && spec.transfer == (mode == 1)
                            && spec.target.name == target.name
                            && spec.seed == offset as u64,
                        "table4 queue order diverged from the folding layout at cell {}",
                        index + offset
                    );
                }
                let foms: Vec<f64> = report.cells[index..index + seeds]
                    .iter()
                    .map(|c| c.value)
                    .collect();
                index += seeds;
                row.push(foms.iter().sum::<f64>() / foms.len() as f64);
            }
            rows.push(row);
        }
        println!(
            "{:<32} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            format!("{} (no transfer)", benchmark.paper_name()),
            rows[0][0],
            rows[0][1],
            rows[0][2],
            rows[0][3]
        );
        println!(
            "{:<32} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            format!("{} (transfer from 180nm)", benchmark.paper_name()),
            rows[1][0],
            rows[1][1],
            rows[1][2],
            rows[1][3]
        );
        dump.push((
            benchmark.paper_name().to_string(),
            rows[0].clone(),
            rows[1].clone(),
        ));
    }
    print_merged_exec("evaluation engine — Table IV queue", &report.merged_exec);
    write_json("table4", &dump);
}
