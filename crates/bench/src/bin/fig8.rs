//! Figure 8: topology-transfer learning curves between the Two-TIA and the
//! Three-TIA, comparing GCN-RL transfer, NG-RL transfer and no transfer.
//!
//! Every (direction, mode) curve is one
//! [`TopologyCurveCell`](gcnrl_bench::cells::TopologyCurveCell) drained
//! through the sharded coordinator; the curves are identical for any worker
//! count.

use gcnrl_bench::cells::{fig8_cells, finetune_budget};
use gcnrl_bench::{
    budget_from_env, drain_cells, print_merged_exec, print_series, write_json, CoordinatorConfig,
    ExperimentConfig,
};
use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};

fn main() {
    let cfg = budget_from_env(ExperimentConfig::smoke());
    let coord = CoordinatorConfig::from_env();
    let node = TechnologyNode::tsmc180();
    let directions = [
        (Benchmark::TwoStageTia, Benchmark::ThreeStageTia),
        (Benchmark::ThreeStageTia, Benchmark::TwoStageTia),
    ];
    let (budget, warmup) = finetune_budget(&cfg);

    println!(
        "Figure 8 — topology-transfer curves (finetune budget={budget}, warm-up={warmup}, {} workers)",
        coord.workers
    );

    let cells = fig8_cells(&directions, &node, &cfg);
    let report = drain_cells(cells.clone(), &coord);
    // The queue holds three mode curves per direction, in direction order;
    // the specs are re-checked per chunk so reordering cannot mislabel one.
    use gcnrl_bench::cells::TopologyTransferMode;
    let mut dump = Vec::new();
    for (((source, target), trio), specs) in directions
        .iter()
        .zip(report.cells.chunks(3))
        .zip(cells.chunks(3))
    {
        assert!(
            specs.len() == 3
                && specs
                    .iter()
                    .all(|c| c.source == *source && c.target == *target)
                && specs[0].mode == TopologyTransferMode::Scratch,
            "fig8 queue order diverged from the panel layout for {} -> {}",
            source.paper_name(),
            target.paper_name()
        );
        let series: Vec<_> = trio.iter().map(|c| c.value.clone()).collect();
        print_series(
            &format!("{} -> {}", source.paper_name(), target.paper_name()),
            &series,
        );
        dump.push((
            format!("{}->{}", source.paper_name(), target.paper_name()),
            series,
        ));
    }
    print_merged_exec("evaluation engine — Figure 8 queue", &report.merged_exec);
    write_json("fig8", &dump);
}
