//! Figure 8: topology-transfer learning curves between the Two-TIA and the
//! Three-TIA, comparing GCN-RL transfer, NG-RL transfer and no transfer.

use gcnrl::transfer::pretrain_and_transfer;
use gcnrl::{AgentKind, GcnRlDesigner};
use gcnrl_bench::{
    budget_from_env, make_env, print_series, write_json, ExperimentConfig, SeriesSummary,
};
use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};
use gcnrl_rl::DdpgConfig;

fn main() {
    let cfg = budget_from_env(ExperimentConfig::smoke());
    let node = TechnologyNode::tsmc180();
    let finetune_budget = (cfg.budget / 2).max(10);
    let warmup = (finetune_budget / 3).max(3);
    let fine_cfg = DdpgConfig::default()
        .with_seed(2)
        .with_budget(finetune_budget, warmup);
    let pre_cfg = DdpgConfig::default()
        .with_seed(2)
        .with_budget(cfg.budget, cfg.warmup.min(cfg.budget / 2));

    println!(
        "Figure 8 — topology-transfer curves (finetune budget={}, warm-up={})",
        finetune_budget, warmup
    );

    let mut dump = Vec::new();
    for (source, target) in [
        (Benchmark::TwoStageTia, Benchmark::ThreeStageTia),
        (Benchmark::ThreeStageTia, Benchmark::TwoStageTia),
    ] {
        let scratch =
            GcnRlDesigner::with_kind(make_env(target, &node, &cfg), fine_cfg, AgentKind::Gcn).run();
        let (_, gcn, _) = pretrain_and_transfer(
            make_env(source, &node, &cfg),
            make_env(target, &node, &cfg),
            AgentKind::Gcn,
            pre_cfg,
            fine_cfg,
        );
        let (_, ng, _) = pretrain_and_transfer(
            make_env(source, &node, &cfg),
            make_env(target, &node, &cfg),
            AgentKind::NonGcn,
            pre_cfg,
            fine_cfg,
        );
        let series = vec![
            SeriesSummary {
                label: "No Transfer".into(),
                curve: scratch.best_curve(),
            },
            SeriesSummary {
                label: "NG-RL Transfer".into(),
                curve: ng.best_curve(),
            },
            SeriesSummary {
                label: "GCN-RL Transfer".into(),
                curve: gcn.best_curve(),
            },
        ];
        print_series(
            &format!("{} -> {}", source.paper_name(), target.paper_name()),
            &series,
        );
        dump.push((
            format!("{}->{}", source.paper_name(), target.paper_name()),
            series,
        ));
    }
    write_json("fig8", &dump);
}
