//! `tracecheck` — validates a `GCNRL_TRACE` JSONL trace file.
//!
//! Usage: `tracecheck <trace.jsonl>`. Every line must parse as a JSON object
//! with a string `name`, unsigned `start_ns` and `dur_ns`, and (optionally)
//! a `fields` object whose values are strings — the schema `gcnrl-telemetry`
//! writes. Any malformed line aborts with the offending line number, so CI
//! can gate on "the trace a smoke run produced is well-formed and non-empty".
//! On success it prints the event count and the distinct span names seen.

use serde::Value;
use std::collections::BTreeMap;

fn field<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn is_unsigned(value: &Value) -> bool {
    match value {
        Value::UInt(_) => true,
        Value::Int(i) => *i >= 0,
        Value::Num(n) => *n >= 0.0 && n.fract() == 0.0,
        _ => false,
    }
}

/// Validates one trace line, returning the event's span name.
fn check_line(line: &str, lineno: usize) -> String {
    let value = serde_json::parse_value(line)
        .unwrap_or_else(|error| panic!("line {lineno}: not valid JSON: {error}"));
    let Value::Map(entries) = &value else {
        panic!("line {lineno}: trace event is not a JSON object");
    };
    let name = match field(entries, "name") {
        Some(Value::Str(name)) if !name.is_empty() => name.clone(),
        _ => panic!("line {lineno}: missing or non-string `name`"),
    };
    for key in ["start_ns", "dur_ns"] {
        let v = field(entries, key).unwrap_or_else(|| panic!("line {lineno}: missing `{key}`"));
        assert!(
            is_unsigned(v),
            "line {lineno}: `{key}` is not an unsigned integer: {v:?}"
        );
    }
    if let Some(fields) = field(entries, "fields") {
        let Value::Map(fields) = fields else {
            panic!("line {lineno}: `fields` is not an object");
        };
        for (k, v) in fields {
            assert!(
                matches!(v, Value::Str(_)),
                "line {lineno}: field `{k}` is not a string: {v:?}"
            );
        }
    }
    name
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .expect("usage: tracecheck <trace.jsonl>");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|error| panic!("cannot read {path}: {error}"));
    let mut spans: BTreeMap<String, usize> = BTreeMap::new();
    let mut events = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let name = check_line(line, i + 1);
        *spans.entry(name).or_insert(0) += 1;
        events += 1;
    }
    assert!(events > 0, "{path}: trace is empty");
    println!(
        "{path}: {events} well-formed trace events across {} spans",
        spans.len()
    );
    for (name, count) in &spans {
        println!("  {name:<28} {count}");
    }
}
