//! Figure 5: learning curves (best FoM vs simulation count) of every method
//! on the four benchmark circuits.

use gcnrl_bench::{
    budget_from_env, print_series, run_all_methods, write_json, ExperimentConfig, SeriesSummary,
};
use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};

fn main() {
    let cfg = budget_from_env(ExperimentConfig::smoke());
    let node = TechnologyNode::tsmc180();
    println!(
        "Figure 5 — learning curves (budget={}, seeds={})",
        cfg.budget, cfg.seeds
    );

    let mut dump = Vec::new();
    for benchmark in Benchmark::ALL {
        let results = run_all_methods(benchmark, &node, &cfg);
        let series: Vec<SeriesSummary> = results
            .iter()
            .map(|r| SeriesSummary {
                label: r.method.clone(),
                curve: r.best_curve.clone(),
            })
            .collect();
        print_series(&format!("{benchmark}"), &series);
        dump.push((benchmark.paper_name().to_string(), series));
    }
    write_json("fig5", &dump);
}
