//! Figure 5: learning curves (best FoM vs simulation count) of every method
//! on the four benchmark circuits.
//!
//! The whole figure — all four benchmarks × seven methods × seeds — is one
//! method-cell queue drained by the sharded coordinator in a single pass, so
//! the figure's cells interleave across benchmarks on multi-core hosts
//! instead of running benchmark-by-benchmark. The curves are identical for
//! any worker count.

use gcnrl_bench::{
    budget_from_env, drain_cells, method_results, print_merged_exec, print_series, table_cells,
    write_json, CoordinatorConfig, ExperimentConfig, MethodCell, SeriesSummary,
};
use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};

fn main() {
    let cfg = budget_from_env(ExperimentConfig::smoke());
    let coord = CoordinatorConfig::from_env();
    let node = TechnologyNode::tsmc180();
    println!(
        "Figure 5 — learning curves (budget={}, seeds={}, {} workers)",
        cfg.budget, cfg.seeds, coord.workers
    );

    let queue: Vec<MethodCell> = table_cells(&Benchmark::ALL, &node, &cfg)
        .into_iter()
        .map(|spec| MethodCell { spec, cfg })
        .collect();
    let report = drain_cells(queue, &coord);
    let results: Vec<_> = report.values().cloned().collect();

    let mut dump = Vec::new();
    for benchmark in Benchmark::ALL {
        let series: Vec<SeriesSummary> = method_results(&results, benchmark)
            .iter()
            .map(|r| SeriesSummary {
                label: r.method.clone(),
                curve: r.best_curve.clone(),
            })
            .collect();
        print_series(&format!("{benchmark}"), &series);
        dump.push((benchmark.paper_name().to_string(), series));
    }
    print_merged_exec("evaluation engine — Figure 5 queue", &report.merged_exec);
    write_json("fig5", &dump);
}
