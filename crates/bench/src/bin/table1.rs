//! Table I: FoM comparison of all methods on the four benchmark circuits.
//!
//! All `benchmark × method × seed` cells go into one work queue drained by
//! the sharded coordinator (`GCNRL_WORKERS` concurrent cells, shared
//! `GCNRL_CACHE_CAP` budget) instead of the old sequential nested loops; the
//! assembled table is identical for any worker count.

use gcnrl_bench::{
    budget_from_env, method_results, run_cells, table_cells, write_json, CoordinatorConfig,
    ExperimentConfig,
};
use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};

fn main() {
    let cfg = budget_from_env(ExperimentConfig::smoke());
    let coord = CoordinatorConfig::from_env();
    let node = TechnologyNode::tsmc180();
    println!(
        "Table I — FoM comparison (budget={}, seeds={}, rollout_k={}, {} workers)",
        cfg.budget, cfg.seeds, cfg.rollout_k, coord.workers
    );
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>14}",
        "Method", "Two-TIA", "Two-Volt", "Three-TIA", "LDO"
    );

    let cells = table_cells(&Benchmark::ALL, &node, &cfg);
    let results = run_cells(&cells, &cfg, &coord);
    let per_bench: Vec<_> = Benchmark::ALL
        .iter()
        .map(|&b| method_results(&results, b))
        .collect();

    let mut rows: Vec<(String, Vec<String>)> = Vec::new();
    for (i, method) in gcnrl_bench::METHODS.iter().enumerate() {
        let cells: Vec<String> = per_bench.iter().map(|r| r[i].formatted()).collect();
        println!(
            "{:<10} {:>14} {:>14} {:>14} {:>14}",
            method, cells[0], cells[1], cells[2], cells[3]
        );
        rows.push((method.to_string(), cells));
    }
    for (results, bench) in per_bench.iter().zip(Benchmark::ALL) {
        gcnrl_bench::print_exec_stats(&format!("evaluation engine — {bench}"), results);
    }
    write_json("table1", &rows);
}
