//! Table I: FoM comparison of all methods on the four benchmark circuits.

use gcnrl_bench::{budget_from_env, run_all_methods, write_json, ExperimentConfig};
use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};

fn main() {
    let cfg = budget_from_env(ExperimentConfig::smoke());
    let node = TechnologyNode::tsmc180();
    println!(
        "Table I — FoM comparison (budget={}, seeds={})",
        cfg.budget, cfg.seeds
    );
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>14}",
        "Method", "Two-TIA", "Two-Volt", "Three-TIA", "LDO"
    );

    let mut rows: Vec<(String, Vec<String>)> = Vec::new();
    let mut per_bench = Vec::new();
    for b in Benchmark::ALL {
        per_bench.push(run_all_methods(b, &node, &cfg));
    }
    for (i, method) in gcnrl_bench::METHODS.iter().enumerate() {
        let cells: Vec<String> = per_bench.iter().map(|r| r[i].formatted()).collect();
        println!(
            "{:<10} {:>14} {:>14} {:>14} {:>14}",
            method, cells[0], cells[1], cells[2], cells[3]
        );
        rows.push((method.to_string(), cells));
    }
    for (results, bench) in per_bench.iter().zip(Benchmark::ALL) {
        gcnrl_bench::print_exec_stats(&format!("evaluation engine — {bench}"), results);
    }
    write_json("table1", &rows);
}
