//! `traceview` — reassembles distributed request trees out of one or more
//! `GCNRL_TRACE` JSONL files (client + every shard of a sharded tier, each
//! tracing to its own file) and renders a per-request timeline.
//!
//! Usage: `traceview [--expect-processes N] <trace.jsonl>...`
//!
//! Every line carrying the distributed-tracing keys (`trace_id`, `span_id`,
//! optionally `parent_id` — what v5 trace propagation appends) is grouped by
//! `trace_id` across all input files; lines in the legacy schema are
//! ignored. Each trace renders as an indented parent/child tree, spans
//! tagged with the file they came from and their wall duration. Span starts
//! are per-process epochs, so ordering within one process is faithful while
//! cross-process offsets are not comparable — the tree structure is what
//! links processes, not the clock.
//!
//! `--expect-processes N` turns the viewer into a CI gate: at least one
//! trace must contain spans from ≥ N distinct input files (i.e. a request
//! provably crossed N processes), otherwise the run aborts nonzero.

use serde::Value;
use std::collections::BTreeMap;

/// One distributed span, tagged with the input file it was read from.
struct Span {
    name: String,
    span_id: u64,
    parent_id: Option<u64>,
    start_ns: u64,
    dur_ns: u64,
    file: usize,
}

fn field<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn uint(value: &Value) -> Option<u64> {
    match value {
        Value::UInt(n) => Some(*n),
        Value::Int(n) if *n >= 0 => Some(*n as u64),
        Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
        _ => None,
    }
}

/// Parses one JSONL line into a distributed span; `None` for legacy-schema
/// events (no ids — plain `GCNRL_TRACE` spans outside any request context).
fn parse_span(line: &str, path: &str, lineno: usize, file: usize) -> Option<(u64, Span)> {
    let value = serde_json::parse_value(line)
        .unwrap_or_else(|error| panic!("{path}:{lineno}: not valid JSON: {error}"));
    let Value::Map(entries) = &value else {
        panic!("{path}:{lineno}: trace event is not a JSON object");
    };
    let trace_id = uint(field(entries, "trace_id")?)?;
    let span_id = uint(field(entries, "span_id")?)?;
    let name = match field(entries, "name") {
        Some(Value::Str(name)) => name.clone(),
        _ => panic!("{path}:{lineno}: span without a string `name`"),
    };
    let start_ns = field(entries, "start_ns").and_then(uint).unwrap_or(0);
    let dur_ns = field(entries, "dur_ns").and_then(uint).unwrap_or(0);
    let parent_id = field(entries, "parent_id").and_then(uint);
    Some((
        trace_id,
        Span {
            name,
            span_id,
            parent_id,
            start_ns,
            dur_ns,
            file,
        },
    ))
}

fn render_tree(spans: &[Span], tags: &[String]) -> String {
    // Children keyed by parent; roots are spans whose parent is absent from
    // this trace's span set (the root proper has no parent at all, but a
    // file sampled mid-request can orphan a subtree — render it as a root
    // rather than dropping it).
    let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.span_id).collect();
    let mut children: BTreeMap<u64, Vec<&Span>> = BTreeMap::new();
    let mut roots: Vec<&Span> = Vec::new();
    for span in spans {
        match span.parent_id.filter(|p| ids.contains(p)) {
            Some(parent) => children.entry(parent).or_default().push(span),
            None => roots.push(span),
        }
    }
    for list in children.values_mut() {
        list.sort_by_key(|s| (s.start_ns, s.span_id));
    }
    roots.sort_by_key(|s| (s.start_ns, s.span_id));

    fn walk(
        span: &Span,
        children: &BTreeMap<u64, Vec<&Span>>,
        tags: &[String],
        depth: usize,
        out: &mut String,
    ) {
        let ms = span.dur_ns as f64 / 1e6;
        out.push_str(&format!(
            "{:indent$}{} {:.3} ms [{}]\n",
            "",
            span.name,
            ms,
            tags[span.file],
            indent = depth * 2
        ));
        for child in children.get(&span.span_id).into_iter().flatten() {
            walk(child, children, tags, depth + 1, out);
        }
    }
    let mut out = String::new();
    for root in roots {
        walk(root, &children, tags, 0, &mut out);
    }
    out
}

fn main() {
    let mut expect_processes: Option<usize> = None;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--expect-processes" {
            let n = args
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("--expect-processes needs an integer"));
            expect_processes = Some(n);
        } else {
            paths.push(arg);
        }
    }
    assert!(
        !paths.is_empty(),
        "usage: traceview [--expect-processes N] <trace.jsonl>..."
    );

    // Short tags for the per-span source markers: the file stem.
    let tags: Vec<String> = paths
        .iter()
        .map(|p| {
            std::path::Path::new(p)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| p.clone())
        })
        .collect();

    let mut traces: BTreeMap<u64, Vec<Span>> = BTreeMap::new();
    let mut total_lines = 0usize;
    for (file, path) in paths.iter().enumerate() {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|error| panic!("cannot read {path}: {error}"));
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            total_lines += 1;
            if let Some((trace_id, span)) = parse_span(line, path, lineno + 1, file) {
                traces.entry(trace_id).or_default().push(span);
            }
        }
    }

    let mut widest = 0usize;
    for (trace_id, spans) in &traces {
        let processes: std::collections::BTreeSet<usize> = spans.iter().map(|s| s.file).collect();
        widest = widest.max(processes.len());
        println!(
            "trace {trace_id:#018x}: {} spans across {} process(es)",
            spans.len(),
            processes.len()
        );
        print!("{}", render_tree(spans, &tags));
        println!();
    }
    println!(
        "traceview: {} trace(s) out of {} event line(s) in {} file(s); widest trace spans {} process(es)",
        traces.len(),
        total_lines,
        paths.len(),
        widest
    );

    if let Some(expected) = expect_processes {
        assert!(
            widest >= expected,
            "no trace crossed {expected} processes (widest: {widest}) — \
             trace propagation is broken across the tier"
        );
        println!("traceview: cross-process gate OK (>= {expected} processes in one trace)");
    }
}
