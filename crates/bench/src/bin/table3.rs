//! Table III: Two-Volt per-metric breakdown for every method.

use gcnrl_bench::{budget_from_env, run_method, write_json, ExperimentConfig};
use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};

const METRICS: [&str; 7] = [
    "bw_mhz",
    "cpm_deg",
    "dpm_deg",
    "power_mw",
    "noise_nv_rthz",
    "gain_kvv",
    "gbw_thz",
];

fn main() {
    let cfg = budget_from_env(ExperimentConfig::smoke());
    let node = TechnologyNode::tsmc180();
    println!(
        "Table III — Two-Volt metrics (budget={}, seeds={})",
        cfg.budget, cfg.seeds
    );
    println!(
        "{:<10} {:>10} {:>8} {:>8} {:>10} {:>10} {:>10} {:>9}",
        "Method", "BW(MHz)", "CPM", "DPM", "Power(mW)", "Noise(nV)", "Gain(k)", "GBW(THz)"
    );

    let mut dump = Vec::new();
    for method in gcnrl_bench::METHODS {
        let h = run_method(method, Benchmark::TwoStageVoltageAmp, &node, &cfg, 0);
        let metrics: Vec<(String, f64)> = h
            .best_report
            .as_ref()
            .map(|r| r.iter().map(|(k, v)| (k.to_owned(), v)).collect())
            .unwrap_or_default();
        let get = |name: &str| {
            metrics
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .unwrap_or(f64::NAN)
        };
        println!(
            "{:<10} {:>10.2} {:>8.1} {:>8.1} {:>10.3} {:>10.2} {:>10.2} {:>9.3}",
            method,
            get(METRICS[0]),
            get(METRICS[1]),
            get(METRICS[2]),
            get(METRICS[3]),
            get(METRICS[4]),
            get(METRICS[5]),
            get(METRICS[6]),
        );
        dump.push((method.to_string(), metrics));
    }
    write_json("table3", &dump);
}
