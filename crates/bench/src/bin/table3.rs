//! Table III: Two-Volt per-metric breakdown for every method.
//!
//! Each method row is one [`MetricsCell`](gcnrl_bench::cells::MetricsCell)
//! drained through the sharded coordinator; the assembled table is identical
//! for any worker count.

use gcnrl_bench::cells::table3_cells;
use gcnrl_bench::{
    budget_from_env, drain_cells, print_merged_exec, write_json, CoordinatorConfig,
    ExperimentConfig,
};
use gcnrl_circuit::TechnologyNode;

const METRICS: [&str; 7] = [
    "bw_mhz",
    "cpm_deg",
    "dpm_deg",
    "power_mw",
    "noise_nv_rthz",
    "gain_kvv",
    "gbw_thz",
];

fn main() {
    let cfg = budget_from_env(ExperimentConfig::smoke());
    let coord = CoordinatorConfig::from_env();
    let node = TechnologyNode::tsmc180();
    println!(
        "Table III — Two-Volt metrics (budget={}, seeds={}, {} workers)",
        cfg.budget, cfg.seeds, coord.workers
    );
    println!(
        "{:<10} {:>10} {:>8} {:>8} {:>10} {:>10} {:>10} {:>9}",
        "Method", "BW(MHz)", "CPM", "DPM", "Power(mW)", "Noise(nV)", "Gain(k)", "GBW(THz)"
    );

    let report = drain_cells(table3_cells(&node, &cfg), &coord);
    let mut dump = Vec::new();
    for row in report.values() {
        let get = |name: &str| {
            row.metrics
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .unwrap_or(f64::NAN)
        };
        println!(
            "{:<10} {:>10.2} {:>8.1} {:>8.1} {:>10.3} {:>10.2} {:>10.2} {:>9.3}",
            row.label,
            get(METRICS[0]),
            get(METRICS[1]),
            get(METRICS[2]),
            get(METRICS[3]),
            get(METRICS[4]),
            get(METRICS[5]),
            get(METRICS[6]),
        );
        dump.push((row.label.clone(), row.metrics.clone()));
    }
    print_merged_exec("evaluation engine — Table III queue", &report.merged_exec);
    write_json("table3", &dump);
}
