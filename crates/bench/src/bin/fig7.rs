//! Figure 7: node-transfer learning curves on the Three-TIA — the agent
//! trained at 180 nm is fine-tuned at 45/65/130/250 nm and compared against
//! training from scratch with the same small budget and the same seeds.

use gcnrl::transfer::pretrain_and_transfer;
use gcnrl::{AgentKind, GcnRlDesigner};
use gcnrl_bench::{
    budget_from_env, make_env, print_series, write_json, ExperimentConfig, SeriesSummary,
};
use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};
use gcnrl_rl::DdpgConfig;

fn main() {
    let cfg = budget_from_env(ExperimentConfig::smoke());
    let source = TechnologyNode::tsmc180();
    let benchmark = Benchmark::ThreeStageTia;
    let finetune_budget = (cfg.budget / 2).max(10);
    let warmup = (finetune_budget / 3).max(3);

    println!(
        "Figure 7 — Three-TIA node-transfer curves (finetune budget={}, warm-up={})",
        finetune_budget, warmup
    );

    let mut dump = Vec::new();
    for target in [
        TechnologyNode::n45(),
        TechnologyNode::n65(),
        TechnologyNode::n130(),
        TechnologyNode::n250(),
    ] {
        let fine_cfg = DdpgConfig::default()
            .with_seed(1)
            .with_budget(finetune_budget, warmup);
        let pre_cfg = DdpgConfig::default()
            .with_seed(1)
            .with_budget(cfg.budget, cfg.warmup.min(cfg.budget / 2));

        let scratch =
            GcnRlDesigner::with_kind(make_env(benchmark, &target, &cfg), fine_cfg, AgentKind::Gcn)
                .run();
        let (_, transferred, _) = pretrain_and_transfer(
            make_env(benchmark, &source, &cfg),
            make_env(benchmark, &target, &cfg),
            AgentKind::Gcn,
            pre_cfg,
            fine_cfg,
        );
        let series = vec![
            SeriesSummary {
                label: "No Transfer".into(),
                curve: scratch.best_curve(),
            },
            SeriesSummary {
                label: "Transfer from 180nm".into(),
                curve: transferred.best_curve(),
            },
        ];
        print_series(&format!("target node {}", target.name), &series);
        dump.push((target.name.clone(), series));
    }
    write_json("fig7", &dump);
}
