//! Figure 7: node-transfer learning curves on the Three-TIA — the agent
//! trained at 180 nm is fine-tuned at 45/65/130/250 nm and compared against
//! training from scratch with the same small budget and the same seeds.
//!
//! Every (target node, mode) curve is one
//! [`NodeCurveCell`](gcnrl_bench::cells::NodeCurveCell) drained through the
//! sharded coordinator; the curves are identical for any worker count.

use gcnrl_bench::cells::{fig7_cells, finetune_budget};
use gcnrl_bench::{
    budget_from_env, drain_cells, print_merged_exec, print_series, write_json, CoordinatorConfig,
    ExperimentConfig,
};
use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};

fn main() {
    let cfg = budget_from_env(ExperimentConfig::smoke());
    let coord = CoordinatorConfig::from_env();
    let source = TechnologyNode::tsmc180();
    let benchmark = Benchmark::ThreeStageTia;
    let targets = [
        TechnologyNode::n45(),
        TechnologyNode::n65(),
        TechnologyNode::n130(),
        TechnologyNode::n250(),
    ];
    let (budget, warmup) = finetune_budget(&cfg);

    println!(
        "Figure 7 — Three-TIA node-transfer curves (finetune budget={budget}, warm-up={warmup}, {} workers)",
        coord.workers
    );

    let cells = fig7_cells(benchmark, &source, &targets, &cfg);
    let report = drain_cells(cells.clone(), &coord);
    // The queue pairs (scratch, transfer) per target, in target order; the
    // specs are re-checked per chunk so reordering cannot mislabel a panel.
    let mut dump = Vec::new();
    for ((target, pair), specs) in targets
        .iter()
        .zip(report.cells.chunks(2))
        .zip(cells.chunks(2))
    {
        assert!(
            specs.len() == 2
                && specs.iter().all(|c| c.target.name == target.name)
                && !specs[0].transfer
                && specs[1].transfer,
            "fig7 queue order diverged from the panel layout for {}",
            target.name
        );
        let series: Vec<_> = pair.iter().map(|c| c.value.clone()).collect();
        print_series(&format!("target node {}", target.name), &series);
        dump.push((target.name.clone(), series));
    }
    print_merged_exec("evaluation engine — Figure 7 queue", &report.merged_exec);
    write_json("fig7", &dump);
}
