//! Table V: knowledge transfer between topologies (Two-TIA <-> Three-TIA)
//! comparing no transfer, NG-RL transfer and GCN-RL transfer.
//!
//! Every `(mode, direction, seed)` combination is one
//! [`TopologyTransferCell`](gcnrl_bench::cells::TopologyTransferCell) in a
//! single work queue drained by the sharded coordinator; transfer cells
//! claim a double cache-budget share. The assembled table is identical for
//! any worker count.

use gcnrl_bench::cells::{finetune_budget, table5_cells};
use gcnrl_bench::{
    budget_from_env, drain_cells, print_merged_exec, write_json, CoordinatorConfig,
    ExperimentConfig,
};
use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};

fn main() {
    let cfg = budget_from_env(ExperimentConfig::smoke());
    let coord = CoordinatorConfig::from_env();
    let node = TechnologyNode::tsmc180();
    let directions = [
        (Benchmark::TwoStageTia, Benchmark::ThreeStageTia),
        (Benchmark::ThreeStageTia, Benchmark::TwoStageTia),
    ];

    println!(
        "Table V — topology transfer (pretrain budget={}, finetune budget={}, seeds={}, {} workers)",
        cfg.budget,
        finetune_budget(&cfg).0,
        cfg.seeds,
        coord.workers
    );
    println!(
        "{:<18} {:>22} {:>22}",
        "Setting", "Two-TIA -> Three-TIA", "Three-TIA -> Two-TIA"
    );

    let cells = table5_cells(&directions, &node, &cfg);
    let report = drain_cells(cells.clone(), &coord);

    // The queue is ordered modes-outer, directions-middle, seeds-inner; the
    // folding re-checks every slot against the cell specs so a reordering
    // of `table5_cells` can never silently mis-bin a row.
    use gcnrl::AgentKind;
    use gcnrl_bench::cells::TopologyTransferMode;
    let modes = [
        TopologyTransferMode::Scratch,
        TopologyTransferMode::Transfer(AgentKind::NonGcn),
        TopologyTransferMode::Transfer(AgentKind::Gcn),
    ];
    let seeds = cfg.seeds.max(1);
    let mut index = 0;
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for mode in modes {
        let mut row = Vec::new();
        for &(source, target) in &directions {
            for (offset, spec) in cells[index..index + seeds].iter().enumerate() {
                assert!(
                    spec.mode == mode
                        && spec.source == source
                        && spec.target == target
                        && spec.seed == offset as u64,
                    "table5 queue order diverged from the folding layout at cell {}",
                    index + offset
                );
            }
            let foms: Vec<f64> = report.cells[index..index + seeds]
                .iter()
                .map(|c| c.value)
                .collect();
            index += seeds;
            row.push(foms.iter().sum::<f64>() / foms.len() as f64);
        }
        rows.push(row);
    }
    for (label, row) in ["No Transfer", "NG-RL Transfer", "GCN-RL Transfer"]
        .iter()
        .zip(&rows)
    {
        println!("{:<18} {:>22.2} {:>22.2}", label, row[0], row[1]);
    }
    print_merged_exec("evaluation engine — Table V queue", &report.merged_exec);
    write_json(
        "table5",
        &(rows[0].clone(), rows[1].clone(), rows[2].clone()),
    );
}
