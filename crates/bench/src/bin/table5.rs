//! Table V: knowledge transfer between topologies (Two-TIA <-> Three-TIA)
//! comparing no transfer, NG-RL transfer and GCN-RL transfer.

use gcnrl::transfer::pretrain_and_transfer;
use gcnrl::{AgentKind, GcnRlDesigner};
use gcnrl_bench::{budget_from_env, make_env, write_json, ExperimentConfig};
use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};
use gcnrl_rl::DdpgConfig;

fn transfer_cell(
    source: Benchmark,
    target: Benchmark,
    kind: AgentKind,
    cfg: &ExperimentConfig,
    node: &TechnologyNode,
    finetune: DdpgConfig,
) -> f64 {
    let mut foms = Vec::new();
    for seed in 0..cfg.seeds.max(1) as u64 {
        let pre_cfg = DdpgConfig::default()
            .with_seed(seed)
            .with_budget(cfg.budget, cfg.warmup.min(cfg.budget / 2));
        let (_, fine, _) = pretrain_and_transfer(
            make_env(source, node, cfg),
            make_env(target, node, cfg),
            kind,
            pre_cfg,
            finetune.with_seed(seed),
        );
        foms.push(fine.best_fom());
    }
    foms.iter().sum::<f64>() / foms.len() as f64
}

fn main() {
    let cfg = budget_from_env(ExperimentConfig::smoke());
    let node = TechnologyNode::tsmc180();
    let finetune_budget = (cfg.budget / 2).max(10);
    let finetune = DdpgConfig::default().with_budget(finetune_budget, (finetune_budget / 3).max(3));

    println!(
        "Table V — topology transfer (pretrain budget={}, finetune budget={}, seeds={})",
        cfg.budget, finetune_budget, cfg.seeds
    );
    println!(
        "{:<18} {:>22} {:>22}",
        "Setting", "Two-TIA -> Three-TIA", "Three-TIA -> Two-TIA"
    );

    // No transfer: train from scratch on the target with the small budget.
    let mut no_transfer = Vec::new();
    for target in [Benchmark::ThreeStageTia, Benchmark::TwoStageTia] {
        let mut foms = Vec::new();
        for seed in 0..cfg.seeds.max(1) as u64 {
            let h = GcnRlDesigner::with_kind(
                make_env(target, &node, &cfg),
                finetune.with_seed(seed),
                AgentKind::Gcn,
            )
            .run();
            foms.push(h.best_fom());
        }
        no_transfer.push(foms.iter().sum::<f64>() / foms.len() as f64);
    }
    println!(
        "{:<18} {:>22.2} {:>22.2}",
        "No Transfer", no_transfer[0], no_transfer[1]
    );

    let ng = [
        transfer_cell(
            Benchmark::TwoStageTia,
            Benchmark::ThreeStageTia,
            AgentKind::NonGcn,
            &cfg,
            &node,
            finetune,
        ),
        transfer_cell(
            Benchmark::ThreeStageTia,
            Benchmark::TwoStageTia,
            AgentKind::NonGcn,
            &cfg,
            &node,
            finetune,
        ),
    ];
    println!("{:<18} {:>22.2} {:>22.2}", "NG-RL Transfer", ng[0], ng[1]);

    let gcn = [
        transfer_cell(
            Benchmark::TwoStageTia,
            Benchmark::ThreeStageTia,
            AgentKind::Gcn,
            &cfg,
            &node,
            finetune,
        ),
        transfer_cell(
            Benchmark::ThreeStageTia,
            Benchmark::TwoStageTia,
            AgentKind::Gcn,
            &cfg,
            &node,
            finetune,
        ),
    ];
    println!(
        "{:<18} {:>22.2} {:>22.2}",
        "GCN-RL Transfer", gcn[0], gcn[1]
    );

    write_json("table5", &(no_transfer, ng, gcn));
}
