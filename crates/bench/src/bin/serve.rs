//! `serve` — the standalone network evaluation server.
//!
//! Binds `GCNRL_SERVE_ADDR` (default `127.0.0.1:7733`) and serves the
//! multi-benchmark evaluation registry until killed: every connection maps
//! onto one session of the `EvalService` for its `(benchmark, node)` pair,
//! so remote trainers, baselines and the bench binaries (run with
//! `GCNRL_SERVE_ADDR` pointing here) share one engine + cache per pair.
//!
//! Knobs (all strict-parsed; a typo panics rather than silently defaulting):
//!
//! * `GCNRL_SERVE_ADDR` — bind address (`host:port`; port 0 = ephemeral).
//! * `GCNRL_SERVE_CACHE_CAP` — total cached reports across all services
//!   (default 65536), split evenly over the slots.
//! * `GCNRL_SERVE_SLOTS` — expected number of `(benchmark, node)` services
//!   sharing the budget (default 4).
//! * `GCNRL_SERVE_DEADLINE_MS` — dispatcher round deadline per service:
//!   wait up to this window to pack fuller rounds.
//! * `GCNRL_THREADS` / `GCNRL_CACHE_PATH` — engine template, as everywhere.
//! * `GCNRL_SERVE_SMOKE` — run the CI smoke instead of serving: bind, run
//!   this many concurrent remote random-search clients over real loopback
//!   TCP, assert their runs are bit-identical to solo local runs, assert
//!   cross-client cache hits and a clean drain, then exit.

use gcnrl_bench::{
    budget_from_env, env_for_backend, env_for_session, service_session, ExperimentConfig,
};
use gcnrl_circuit::{benchmarks::Benchmark, TechnologyNode};
use gcnrl_exec::{env_usize, EngineConfig, ServiceConfig};
use gcnrl_serve::{EvalServer, RegistryConfig, RemoteBackend, RemoteConfig, ServerConfig};

fn server_config() -> ServerConfig {
    let mut service = ServiceConfig::default();
    if let Some(ms) = env_usize("GCNRL_SERVE_DEADLINE_MS") {
        service = service.with_round_deadline(std::time::Duration::from_millis(ms as u64));
    }
    let registry = RegistryConfig {
        engine: EngineConfig::from_env(),
        service,
        ..RegistryConfig::default()
    }
    .with_cache_budget(env_usize("GCNRL_SERVE_CACHE_CAP").unwrap_or(65_536))
    .with_cache_slots(env_usize("GCNRL_SERVE_SLOTS").unwrap_or(Benchmark::ALL.len()));
    ServerConfig {
        registry,
        ..ServerConfig::default()
    }
}

fn print_stats(server: &EvalServer) {
    let stats = server.stats();
    println!(
        "connections: {} total, {} active, {} rejected",
        stats.connections_total, stats.connections_active, stats.connections_rejected
    );
    for service in &stats.services {
        println!(
            "  {:<10} @ {:<6} {}",
            service.benchmark,
            service.node,
            service.engine.summary()
        );
        for session in &service.sessions {
            println!(
                "    session {:<28} weight={} submitted={} resolved={} candidates={} shared_rounds={}",
                session.name,
                session.weight,
                session.submitted,
                session.resolved,
                session.candidates,
                session.shared_rounds
            );
        }
    }
}

/// The CI smoke: N concurrent remote random-search sessions over loopback
/// TCP against one shared server, checked bit-identical against solo local
/// runs, with cross-client cache reuse and a clean drain asserted.
fn smoke(server: &EvalServer, clients: usize) {
    let cfg = budget_from_env(ExperimentConfig {
        budget: 8,
        warmup: 3,
        seeds: 1,
        calibration: 6,
        rollout_k: 1,
    });
    let benchmark = Benchmark::TwoStageTia;
    let node = TechnologyNode::tsmc180();

    // Reference: each seed alone on a fresh local service session.
    let solo: Vec<_> = (0..clients)
        .map(|seed| {
            let session = service_session(benchmark, &node, EngineConfig::serial());
            gcnrl_baselines::random_search(
                &env_for_session(&session, &cfg),
                cfg.budget,
                seed as u64,
            )
        })
        .collect();

    let addr = server.local_addr();
    let workers: Vec<_> = (0..clients)
        .map(|seed| {
            let node = node.clone();
            std::thread::spawn(move || {
                let remote = RemoteBackend::connect_with(
                    addr,
                    benchmark,
                    &node,
                    RemoteConfig {
                        session: Some(format!("smoke-{seed}")),
                        ..RemoteConfig::default()
                    },
                )
                .expect("smoke client connect");
                gcnrl_baselines::random_search(
                    &env_for_backend(Box::new(remote), &cfg),
                    cfg.budget,
                    seed as u64,
                )
            })
        })
        .collect();
    let remote: Vec<_> = workers
        .into_iter()
        .map(|w| w.join().expect("smoke client thread"))
        .collect();

    for (seed, (remote_run, solo_run)) in remote.iter().zip(&solo).enumerate() {
        assert_eq!(
            remote_run, solo_run,
            "seed {seed}: remote run diverged from the local reference"
        );
    }

    server.shutdown();
    print_stats(server);
    let stats = server.stats();
    assert_eq!(stats.connections_active, 0, "connections not drained");
    assert_eq!(stats.connections_total as usize, clients);
    assert_eq!(stats.services.len(), 1);
    let engine = &stats.services[0].engine;
    assert!(
        engine.cache_hits >= ((clients - 1) * cfg.calibration) as u64,
        "cross-client calibration reuse missing: {engine:?}"
    );
    for session in &stats.services[0].sessions {
        assert_eq!(
            session.submitted, session.resolved,
            "{}: requests left pending after drain",
            session.name
        );
    }
    println!(
        "serve smoke OK: {clients} remote clients bit-identical to solo runs, \
         {} cross-client cache hits, clean drain",
        engine.cache_hits
    );
}

fn main() {
    let addr = std::env::var("GCNRL_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:7733".to_owned());
    let server = EvalServer::bind(&addr, server_config()).unwrap_or_else(|error| {
        panic!("failed to bind evaluation server on {addr}: {error}");
    });
    println!(
        "gcnrl evaluation server listening on {} (protocol v{})",
        server.local_addr(),
        gcnrl_serve::PROTOCOL_VERSION
    );

    if let Some(clients) = env_usize("GCNRL_SERVE_SMOKE") {
        smoke(&server, clients.max(2));
        return;
    }

    // Serve until killed, logging a stats snapshot every 30 s once traffic
    // has arrived.
    let mut last_total = 0;
    loop {
        std::thread::sleep(std::time::Duration::from_secs(30));
        let total = server.stats().connections_total;
        if total != last_total {
            last_total = total;
            print_stats(&server);
        }
    }
}
